#include "browser/js.hh"

#include <cctype>

#include "browser/css.hh"

#include "support/logging.hh"
#include "support/strings.hh"

namespace webslice {
namespace browser {

using sim::Ctx;
using sim::TracedScope;
using sim::Value;

namespace {

/** Bytecode operations. Stored as the low u32 of each 8-byte code word;
 *  the operand occupies the high u32. */
enum JsOp : uint32_t
{
    kNop = 0,
    kConst,       ///< push operand
    kLoadLocal,   ///< push locals[operand]
    kStoreLocal,  ///< locals[operand] = pop
    kLoadGlobal,  ///< push globals[operand]
    kStoreGlobal, ///< globals[operand] = pop
    kAdd,
    kSub,
    kMul,
    kAnd,
    kOr,
    kXor,
    kLt,
    kGt,
    kEq,
    kJmp,        ///< pc = operand
    kJmpIfFalse, ///< pc = operand when pop() == 0
    kCall,       ///< call function[operand], args on stack
    kRet,        ///< return pop()
    kDrop,       ///< pop()
    kDomSet,     ///< dom.set(id, prop, value)
    kDomText,    ///< dom.text(id, value)
    kDomShow,
    kDomHide,
    kDomListen,  ///< dom.listen(id, event, fnIndex)
    kDomGet,     ///< push dom.get(id, prop)
    kDomCreate,  ///< dom.create(parentId, tag)
    kTimer,      ///< timer(ms, fnIndex)
};

constexpr size_t kMaxCodeWords = 8192;
constexpr size_t kMaxInterpreterSteps = 2'000'000;
constexpr int kMaxFrameDepth = 64;

uint64_t
styleFieldForProp(uint32_t prop)
{
    switch (static_cast<CssProperty>(prop)) {
      case CssProperty::Color: return StyleFields::kColor;
      case CssProperty::Background: return StyleFields::kBackground;
      case CssProperty::Display: return StyleFields::kDisplay;
      case CssProperty::FontSize: return StyleFields::kFontSize;
      case CssProperty::Width: return StyleFields::kWidth;
      case CssProperty::Height: return StyleFields::kHeight;
      case CssProperty::Margin: return StyleFields::kMargin;
      case CssProperty::Padding: return StyleFields::kPadding;
      case CssProperty::Position: return StyleFields::kPosition;
      case CssProperty::ZIndex: return StyleFields::kZIndex;
      case CssProperty::Anim: return StyleFields::kAnimated;
      case CssProperty::Opacity: return StyleFields::kOpacity;
      default: return StyleFields::kColor;
    }
}

} // namespace

// ---- Lexer -----------------------------------------------------------------

/** Streaming tokenizer with one token of lookahead. */
class JsEngine::Lexer
{
  public:
    enum class Kind
    {
        End,
        Ident,
        Number,
        Punct,
    };

    struct Token
    {
        Kind kind = Kind::End;
        std::string text;
        uint64_t number = 0;
        Value traced; ///< Hash of an ident / value of a number / char.
    };

    Lexer(Ctx &ctx, const std::string &text, uint64_t base)
        : ctx_(ctx), text_(text), base_(base), cursor_(ctx.imm(base))
    {
        lex();
    }

    const Token &peek() const { return next_; }

    Token
    take()
    {
        Token out = std::move(next_);
        lex();
        return out;
    }

    bool atEnd() const { return next_.kind == Kind::End; }

    /** Byte offset of the start of the lookahead token. */
    size_t tokenStart() const { return tokenStart_; }

    /** Byte offset just past the last consumed token. */
    size_t consumedEnd() const { return consumedEnd_; }

    /**
     * Pre-parser fast path: skip ahead to the given byte offset with
     * chunked traced reads (roughly an eighth of full tokenization per
     * byte — the V8 preparser's cost profile), then re-lex the
     * lookahead.
     */
    void
    skipToOffset(size_t target)
    {
        // Restart the scan at the lookahead token (its bytes were
        // already lexed; the overlap is a few characters at most).
        index_ = std::min(tokenStart_, target);
        cursor_ = ctx_.imm(base_ + index_);
        while (index_ < target) {
            const size_t span = std::min<size_t>(8, target - index_);
            Value chunk = ctx_.loadVia(cursor_, 0,
                                       static_cast<unsigned>(span));
            Value probe = ctx_.andi(chunk, 0x7D7D7D7D7D7D7D7Dull);
            ctx_.branchIf(ctx_.geu(probe, ctx_.imm(0)));
            advance(span);
        }
        lex();
    }

  private:
    char peekChar(size_t ahead = 0) const
    {
        const size_t at = index_ + ahead;
        return at < text_.size() ? text_[at] : '\0';
    }

    void
    advance(size_t n = 1)
    {
        index_ += n;
        cursor_ = ctx_.addi(cursor_, static_cast<int64_t>(n));
    }

    Value loadByte() { return ctx_.loadVia(cursor_, 0, 1); }

    void
    lex()
    {
        consumedEnd_ = index_;
        while (index_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[index_]))) {
            advance();
        }
        tokenStart_ = index_;
        next_ = Token{};
        if (index_ >= text_.size()) {
            next_.kind = Kind::End;
            return;
        }

        const char c = text_[index_];
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            next_.kind = Kind::Ident;
            Value hash = ctx_.imm(2166136261u);
            while (index_ < text_.size() &&
                   (std::isalnum(static_cast<unsigned char>(
                        text_[index_])) ||
                    text_[index_] == '_')) {
                Value ch = loadByte();
                hash = ctx_.bxor(hash, ch);
                hash = ctx_.muli(hash, 16777619u);
                next_.text.push_back(text_[index_]);
                advance();
            }
            next_.traced = std::move(hash);
            return;
        }
        if (std::isdigit(static_cast<unsigned char>(c))) {
            next_.kind = Kind::Number;
            Value number = ctx_.imm(0);
            while (index_ < text_.size() &&
                   std::isdigit(static_cast<unsigned char>(
                       text_[index_]))) {
                Value ch = loadByte();
                Value digit = ctx_.addi(ch, -'0');
                number = ctx_.add(ctx_.muli(number, 10), digit);
                next_.number =
                    next_.number * 10 + (text_[index_] - '0');
                next_.text.push_back(text_[index_]);
                advance();
            }
            next_.traced = std::move(number);
            return;
        }

        // Punctuation, with the two-char "==" special case.
        next_.kind = Kind::Punct;
        Value ch = loadByte();
        next_.text.push_back(c);
        advance();
        if (c == '=' && peekChar() == '=') {
            Value ch2 = loadByte();
            ch = ctx_.add(ch, ch2);
            next_.text.push_back('=');
            advance();
        }
        next_.traced = std::move(ch);
    }

    Ctx &ctx_;
    const std::string &text_;
    uint64_t base_;
    size_t index_ = 0;
    Value cursor_;
    Token next_;
    size_t tokenStart_ = 0;
    size_t consumedEnd_ = 0;
};

// ---- Compiler --------------------------------------------------------------

/** Single-pass compiler: tokens in, bytecode (native + traced) out. */
class JsEngine::Compiler
{
  public:
    Compiler(JsEngine &engine, Ctx &ctx, Lexer &lexer, JsFunction &fn)
        : engine_(engine), ctx_(ctx), lexer_(lexer), fn_(fn)
    {
    }

    /** Compile statements until '}' (body) or end of input (top level). */
    void
    compileUntil(const char *terminator)
    {
        while (!lexer_.atEnd()) {
            if (terminator && lexer_.peek().kind == Lexer::Kind::Punct &&
                lexer_.peek().text == terminator) {
                break;
            }
            compileStatement();
        }
        // Implicit "return 0".
        emit(kConst, 0);
        emit(kRet, 0);
    }

    /** Parse "(a,b,...)" parameter list, binding locals. */
    void
    compileParams()
    {
        expectPunct("(");
        while (!lexer_.atEnd() && lexer_.peek().text != ")") {
            auto name = lexer_.take();
            localSlot(name.text); // allocate in order
            ++fn_.paramCount;
            if (lexer_.peek().text == ",")
                lexer_.take();
        }
        expectPunct(")");
    }

  private:
    void
    expectPunct(const char *p)
    {
        auto token = lexer_.take();
        panic_if(token.kind != Lexer::Kind::Punct || token.text != p,
                 "js parse error: expected '", p, "' got '", token.text,
                 "' in ", fn_.name);
    }

    int
    localSlot(const std::string &name)
    {
        auto it = locals_.find(name);
        if (it != locals_.end())
            return it->second;
        const int slot = static_cast<int>(locals_.size());
        locals_[name] = slot;
        fn_.localCount = slot + 1;
        return slot;
    }

    size_t
    emit(uint32_t op, uint32_t operand, const Value *traced = nullptr)
    {
        panic_if(fn_.code.size() >= kMaxCodeWords,
                 "js function too large: ", fn_.name);
        const size_t index = fn_.code.size();
        fn_.code.emplace_back(op, operand);
        const uint64_t word_addr = fn_.codeAddr + index * 8;
        Value opv = ctx_.imm(op);
        ctx_.store(word_addr, 4, opv);
        if (traced) {
            ctx_.store(word_addr + 4, 4, *traced);
        } else {
            Value ov = ctx_.imm(operand);
            ctx_.store(word_addr + 4, 4, ov);
        }
        return index;
    }

    void
    patch(size_t index, uint32_t target)
    {
        fn_.code[index].second = target;
        Value ov = ctx_.imm(target);
        ctx_.store(fn_.codeAddr + index * 8 + 4, 4, ov);
    }

    void
    compileBlock()
    {
        expectPunct("{");
        while (!lexer_.atEnd() && lexer_.peek().text != "}")
            compileStatement();
        expectPunct("}");
    }

    void
    compileStatement()
    {
        const auto &peeked = lexer_.peek();
        if (peeked.kind == Lexer::Kind::Ident) {
            if (peeked.text == "var") {
                lexer_.take();
                auto name = lexer_.take();
                const int slot = localSlot(name.text);
                expectPunct("=");
                compileExpr();
                emit(kStoreLocal, slot, &name.traced);
                expectPunct(";");
                return;
            }
            if (peeked.text == "if") {
                lexer_.take();
                expectPunct("(");
                compileExpr();
                expectPunct(")");
                const size_t jf = emit(kJmpIfFalse, 0);
                compileBlock();
                if (!lexer_.atEnd() && lexer_.peek().text == "else") {
                    lexer_.take();
                    const size_t jend = emit(kJmp, 0);
                    patch(jf, static_cast<uint32_t>(fn_.code.size()));
                    compileBlock();
                    patch(jend, static_cast<uint32_t>(fn_.code.size()));
                } else {
                    patch(jf, static_cast<uint32_t>(fn_.code.size()));
                }
                return;
            }
            if (peeked.text == "while") {
                lexer_.take();
                const auto loop_start =
                    static_cast<uint32_t>(fn_.code.size());
                expectPunct("(");
                compileExpr();
                expectPunct(")");
                const size_t jf = emit(kJmpIfFalse, 0);
                compileBlock();
                emit(kJmp, loop_start);
                patch(jf, static_cast<uint32_t>(fn_.code.size()));
                return;
            }
            if (peeked.text == "return") {
                lexer_.take();
                compileExpr();
                emit(kRet, 0);
                expectPunct(";");
                return;
            }
            if (peeked.text == "timer") {
                lexer_.take();
                expectPunct("(");
                compileExpr();
                expectPunct(",");
                emitHandlerConst(lexer_.take());
                expectPunct(")");
                expectPunct(";");
                emit(kTimer, 0);
                return;
            }
            if (peeked.text == "dom") {
                compileDom(/*in_expression=*/false);
                expectPunct(";");
                return;
            }

            // Assignment or expression-statement call.
            auto name = lexer_.take();
            if (lexer_.peek().text == "=") {
                lexer_.take();
                compileExpr();
                auto it = locals_.find(name.text);
                if (it != locals_.end()) {
                    emit(kStoreLocal, it->second, &name.traced);
                } else {
                    emit(kStoreGlobal,
                         engine_.globalSlotFor(name.text),
                         &name.traced);
                }
                expectPunct(";");
                return;
            }
            if (lexer_.peek().text == "(") {
                compileCall(name);
                emit(kDrop, 0);
                expectPunct(";");
                return;
            }
            panic("js parse error: unexpected statement at '", name.text,
                  "' in ", fn_.name);
        }
        panic("js parse error: unexpected token '", peeked.text, "' in ",
              fn_.name);
    }

    void
    compileCall(Lexer::Token &name)
    {
        expectPunct("(");
        int argc = 0;
        while (!lexer_.atEnd() && lexer_.peek().text != ")") {
            compileExpr();
            ++argc;
            if (lexer_.peek().text == ",")
                lexer_.take();
        }
        expectPunct(")");
        const int index = engine_.functionIndexFor(name.text);
        panic_if(index > 0xFFFF || argc > 0xFF,
                 "call encoding overflow for ", name.text);
        // Operand packs callee index (low 16) and arity (high 16).
        emit(kCall,
             static_cast<uint32_t>(index) |
                 (static_cast<uint32_t>(argc) << 16),
             &name.traced);
    }

    /**
     * Resolve a handler-name token into a function-index constant. The
     * traced constant is derived from the name's hash (the symbol-lookup
     * dependence) with the concrete index as its value.
     */
    void
    emitHandlerConst(Lexer::Token handler)
    {
        panic_if(handler.kind != Lexer::Kind::Ident,
                 "js parse error: handler name expected, got '",
                 handler.text, "'");
        const int index = engine_.functionIndexFor(handler.text);
        Value resolved =
            ctx_.alu1(handler.traced, static_cast<uint64_t>(index));
        emit(kConst, static_cast<uint32_t>(index), &resolved);
    }

    /** dom.<method>(args); pushes a value only for dom.get. */
    void
    compileDom(bool in_expression)
    {
        lexer_.take(); // "dom"
        expectPunct(".");
        auto method = lexer_.take();
        expectPunct("(");

        if (method.text == "listen") {
            // dom.listen(id, event, handlerName): the third argument is
            // a function reference, not an expression.
            compileExpr();
            expectPunct(",");
            compileExpr();
            expectPunct(",");
            emitHandlerConst(lexer_.take());
            expectPunct(")");
            panic_if(in_expression,
                     "dom.listen may not appear in an expression");
            emit(kDomListen, 3, &method.traced);
            return;
        }

        int argc = 0;
        while (!lexer_.atEnd() && lexer_.peek().text != ")") {
            compileExpr();
            ++argc;
            if (lexer_.peek().text == ",")
                lexer_.take();
        }
        expectPunct(")");

        uint32_t op = kNop;
        if (method.text == "set") op = kDomSet;
        else if (method.text == "text") op = kDomText;
        else if (method.text == "show") op = kDomShow;
        else if (method.text == "hide") op = kDomHide;
        else if (method.text == "listen") op = kDomListen;
        else if (method.text == "get") op = kDomGet;
        else if (method.text == "create") op = kDomCreate;
        else
            panic("js parse error: unknown dom method '", method.text,
                  "'");
        panic_if(in_expression && op != kDomGet,
                 "only dom.get may appear in an expression");
        emit(op, static_cast<uint32_t>(argc), &method.traced);
    }

    void
    compileExpr()
    {
        compileTerm();
        while (!lexer_.atEnd() &&
               lexer_.peek().kind == Lexer::Kind::Punct) {
            const std::string &p = lexer_.peek().text;
            uint32_t op = kNop;
            if (p == "+") op = kAdd;
            else if (p == "-") op = kSub;
            else if (p == "*") op = kMul;
            else if (p == "&") op = kAnd;
            else if (p == "|") op = kOr;
            else if (p == "^") op = kXor;
            else if (p == "<") op = kLt;
            else if (p == ">") op = kGt;
            else if (p == "==") op = kEq;
            else
                break;
            auto token = lexer_.take();
            compileTerm();
            emit(op, 0, &token.traced);
        }
    }

    void
    compileTerm()
    {
        auto &peeked = lexer_.peek();
        if (peeked.kind == Lexer::Kind::Number) {
            auto token = lexer_.take();
            emit(kConst, static_cast<uint32_t>(token.number),
                 &token.traced);
            return;
        }
        if (peeked.kind == Lexer::Kind::Punct && peeked.text == "(") {
            lexer_.take();
            compileExpr();
            expectPunct(")");
            return;
        }
        if (peeked.kind == Lexer::Kind::Ident) {
            if (peeked.text == "dom") {
                compileDom(/*in_expression=*/true);
                return;
            }
            auto name = lexer_.take();
            if (lexer_.peek().text == "(") {
                compileCall(name);
                return;
            }
            auto it = locals_.find(name.text);
            if (it != locals_.end()) {
                emit(kLoadLocal, it->second, &name.traced);
            } else {
                emit(kLoadGlobal, engine_.globalSlotFor(name.text),
                     &name.traced);
            }
            return;
        }
        panic("js parse error: unexpected term '", peeked.text, "'");
    }

    JsEngine &engine_;
    Ctx &ctx_;
    Lexer &lexer_;
    JsFunction &fn_;
    std::unordered_map<std::string, int> locals_;
};

// ---- JsEngine --------------------------------------------------------------

JsEngine::JsEngine(sim::Machine &machine, TraceLog &trace_log,
                   JsEngineConfig config)
    : machine_(machine), traceLog_(trace_log), config_(config),
      fnParseScript_(machine.registerFunction("v8::Script::parse")),
      fnParseFunction_(machine.registerFunction("v8::Parser::parseFunction")),
      fnEmitBytecode_(
          machine.registerFunction("v8::BytecodeGenerator::generate")),
      fnDispatchEvent_(
          machine.registerFunction("v8::EventDispatcher::dispatch")),
      fnOptimize_(machine.registerFunction("v8::OptimizingCompiler::run")),
      fnDeopt_(machine.registerFunction("v8::Deoptimizer::bailout")),
      fnGc_(machine.registerFunction("v8::Heap::scavenge")),
      fnRuntimeDom_(machine.registerFunction("v8::Runtime::domOperation")),
      fnTimerFire_(machine.registerFunction("v8::Runtime::fireTimer"))
{
    funcTableAddr_ = machine.alloc(kMaxFunctions * 16, "js-functable");
    globalsAddr_ = machine.alloc(kMaxGlobals * 8, "js-globals");
    gcMarksAddr_ = machine.alloc(4096, "js-gcmarks");
}

int
JsEngine::functionIndexFor(const std::string &name)
{
    auto it = functionsByName_.find(name);
    if (it != functionsByName_.end())
        return it->second;
    // Forward reference: create the slot; the declaration fills it in.
    auto fn = std::make_unique<JsFunction>();
    fn->name = name;
    fn->index = static_cast<int>(functions_.size());
    fn->machineFunc = machine_.registerFunction("v8::jsfunc::" + name);
    functionsByName_[name] = fn->index;
    functions_.push_back(std::move(fn));
    panic_if(functions_.size() > kMaxFunctions, "too many js functions");
    return functions_.back()->index;
}

int
JsEngine::globalSlotFor(const std::string &name)
{
    auto it = globalSlots_.find(name);
    if (it != globalSlots_.end())
        return it->second;
    const int slot = static_cast<int>(globalSlots_.size());
    panic_if(static_cast<size_t>(slot) >= kMaxGlobals,
             "too many js globals");
    globalSlots_[name] = slot;
    return slot;
}

void
JsEngine::runScript(Ctx &ctx, const Resource &script)
{
    panic_if(!script.loaded, "running an unloaded script");
    TracedScope scope(ctx, fnParseScript_);
    traceLog_.addEvent(ctx, /*category=*/20);
    totalBytes_ += script.size;

    Lexer lexer(ctx, script.content, script.addr);

    // Function declarations.
    while (!lexer.atEnd() && lexer.peek().text == "function") {
        TracedScope parse_scope(ctx, fnParseFunction_);
        traceLog_.addEvent(ctx, /*category=*/24, /*weight=*/3);
        const size_t decl_start = lexer.tokenStart();
        lexer.take(); // "function"
        auto name = lexer.take();

        const int index = functionIndexFor(name.text);
        JsFunction &fn = *functions_[index];
        fn.srcStart = static_cast<uint32_t>(decl_start);

        if (!config_.lazyCompile) {
            fn.codeAddr = machine_.alloc(kMaxCodeWords * 8, "js-code");
            {
                TracedScope gen_scope(ctx, fnEmitBytecode_);
                Compiler compiler(*this, ctx, lexer, fn);
                compiler.compileParams();
                auto &peeked = lexer.peek();
                panic_if(peeked.text != "{",
                         "js parse error: missing body");
                lexer.take();
                compiler.compileUntil("}");
                lexer.take(); // consume '}'
            }
            fn.srcLength =
                static_cast<uint32_t>(lexer.consumedEnd() - decl_start);
            fn.compiled = true;
            publishFunction(ctx, fn);
            continue;
        }

        // Lazy mode (the paper's defer-until-needed what-if): the
        // preparser finds the declaration's extent with cheap chunked
        // scans, then parks the real compile behind the first call.
        const size_t params_start = lexer.tokenStart();
        int depth = 0;
        bool saw_body = false;
        size_t end = params_start;
        for (; end < script.content.size(); ++end) {
            const char c = script.content[end];
            if (c == '{') {
                ++depth;
                saw_body = true;
            } else if (c == '}') {
                --depth;
                if (saw_body && depth == 0) {
                    ++end;
                    break;
                }
            }
        }
        lexer.skipToOffset(end);
        fn.srcLength = static_cast<uint32_t>(end - decl_start);

        const std::string body =
            script.content.substr(params_start, end - params_start);
        const uint64_t body_addr = script.addr + params_start;
        JsFunction *fn_ptr = &fn;
        JsEngine *self = this;
        fn.pendingCompile = [self, fn_ptr, body, body_addr](Ctx &c) {
            TracedScope gen_scope(c, self->fnEmitBytecode_);
            fn_ptr->codeAddr =
                self->machine_.alloc(kMaxCodeWords * 8, "js-code");
            Lexer body_lexer(c, body, body_addr);
            Compiler compiler(*self, c, body_lexer, *fn_ptr);
            compiler.compileParams();
            panic_if(body_lexer.peek().text != "{",
                     "js parse error: missing lazy body");
            body_lexer.take();
            compiler.compileUntil("}");
            body_lexer.take();
            fn_ptr->compiled = true;
            self->publishFunction(c, *fn_ptr);
        };
    }

    // Top-level statements become an immediately-executed function.
    const size_t top_start = lexer.tokenStart();
    const int top_index =
        functionIndexFor(format("<toplevel:%zu>", functions_.size()));
    JsFunction &top = *functions_[top_index];
    top.srcStart = static_cast<uint32_t>(top_start);
    top.codeAddr = machine_.alloc(kMaxCodeWords * 8, "js-code");
    {
        TracedScope gen_scope(ctx, fnEmitBytecode_);
        Compiler compiler(*this, ctx, lexer, top);
        compiler.compileUntil(nullptr);
    }
    top.srcLength =
        static_cast<uint32_t>(script.content.size() - top_start);
    top.compiled = true;
    topLevelBytes_ += top.srcLength;
    publishFunction(ctx, top);

    Value result = runFunction(ctx, top_index, {});
    (void)result;
}

void
JsEngine::publishFunction(Ctx &ctx, JsFunction &fn)
{
    Value entry = ctx.imm(machine_.functionEntry(fn.machineFunc));
    ctx.store(funcTableAddr_ + fn.index * 16, 8, entry);
    Value code = ctx.imm(fn.codeAddr);
    ctx.store(funcTableAddr_ + fn.index * 16 + 8, 8, code);
}

void
JsEngine::ensureCompiled(Ctx &ctx, JsFunction &fn)
{
    if (fn.compiled)
        return;
    if (fn.pendingCompile) {
        fn.pendingCompile(ctx);
        fn.pendingCompile = nullptr;
        return;
    }
    panic("call to undeclared js function '", fn.name, "'");
}

void
JsEngine::maybeOptimize(Ctx &ctx, JsFunction &fn)
{
    if (fn.optimized || fn.callCount < config_.jitThreshold ||
        fn.code.empty()) {
        return;
    }
    TracedScope scope(ctx, fnOptimize_);
    traceLog_.addEvent(ctx, /*category=*/21);
    ++optimizations_;
    fn.optimized = true;
    fn.optimizedAddr =
        machine_.alloc(fn.code.size() * 16 + 16, "js-optcode");

    // Read every bytecode word, "lower" it into two machine words.
    Value acc = ctx.imm(0x9e37);
    for (size_t i = 0; i < fn.code.size(); ++i) {
        Value word = ctx.load(fn.codeAddr + i * 8, 8);
        Value lowered = ctx.bxor(word, acc);
        acc = ctx.add(acc, word);
        ctx.store(fn.optimizedAddr + 16 + i * 16, 8, lowered);
        Value meta = ctx.muli(lowered, 3);
        ctx.store(fn.optimizedAddr + 16 + i * 16 + 8, 8, meta);
    }
    // Publish the optimized entry stub: future dispatches load a value
    // that the JIT output produced.
    ctx.store(fn.optimizedAddr, 8, acc);
    Value stub = ctx.load(fn.optimizedAddr, 8);
    Value entry =
        ctx.alu1(stub, machine_.functionEntry(fn.machineFunc));
    ctx.store(funcTableAddr_ + fn.index * 16, 8, entry);
}

void
JsEngine::maybeDeoptimize(Ctx &ctx, JsFunction &fn)
{
    // The paper's design-pitfall example: optimized code bails out when
    // the compiler's type assumptions turn out wrong. The bailout
    // re-reads the optimized buffer, invalidates it, and reverts the
    // dispatch table to the interpreter entry — the optimization work
    // becomes retroactive waste.
    if (!fn.optimized || config_.deoptAfter <= 0 ||
        fn.callCount != config_.jitThreshold + config_.deoptAfter) {
        return;
    }
    TracedScope scope(ctx, fnDeopt_);
    ++deoptimizations_;
    fn.optimized = false;

    // Scan the optimized frame-translation metadata.
    Value acc = ctx.imm(0);
    const size_t words = std::min<size_t>(fn.code.size(), 32);
    for (size_t w = 0; w < words; ++w) {
        Value meta = ctx.load(fn.optimizedAddr + 16 + w * 16 + 8, 8);
        acc = ctx.bxor(acc, meta);
    }
    Value poisoned = ctx.bor(acc, ctx.imm(1));
    ctx.store(fn.optimizedAddr, 8, poisoned);

    // Back to the interpreter entry.
    Value entry = ctx.imm(machine_.functionEntry(fn.machineFunc));
    ctx.store(funcTableAddr_ + fn.index * 16, 8, entry);
}

void
JsEngine::maybeCollectGarbage(Ctx &ctx)
{
    if (config_.gcEveryCalls <= 0 ||
        ++callsSinceGc_ < static_cast<uint64_t>(config_.gcEveryCalls)) {
        return;
    }
    callsSinceGc_ = 0;
    TracedScope scope(ctx, fnGc_);
    ++gcPasses_;

    // Scavenge: walk the roots (globals and the dispatch table), write
    // mark words nobody ever reads — allocator-pressure work that is
    // invisible to the pixels.
    Value mark = ctx.imm(gcPasses_);
    for (size_t slot = 0; slot < globalSlots_.size(); ++slot) {
        Value root = ctx.load(globalsAddr_ + slot * 8, 8);
        mark = ctx.bxor(mark, root);
        ctx.store(gcMarksAddr_ + (slot % 512) * 8, 8, mark);
    }
    const size_t functions = std::min<size_t>(functions_.size(), 128);
    for (size_t f = 0; f < functions; f += 4) {
        Value code = ctx.load(funcTableAddr_ + f * 16 + 8, 8);
        mark = ctx.add(mark, code);
    }
    ctx.store(gcMarksAddr_ + 4088, 8, mark);
}

Value
JsEngine::runFunction(Ctx &ctx, int index, std::vector<Value> args)
{
    panic_if(index < 0 || static_cast<size_t>(index) >= functions_.size(),
             "bad js function index ", index);
    JsFunction &fn = *functions_[index];
    ensureCompiled(ctx, fn);
    ++fn.callCount;
    fn.executed = true;
    maybeOptimize(ctx, fn);
    maybeDeoptimize(ctx, fn);
    maybeCollectGarbage(ctx);

    panic_if(++frameDepth_ > kMaxFrameDepth, "js stack overflow in ",
             fn.name);
    traceLog_.addEvent(ctx, /*category=*/23, /*weight=*/2);

    // Indirect dispatch through the (traced) function table.
    Value entry = ctx.load(funcTableAddr_ + index * 16, 8);
    TracedScope scope(ctx, fn.machineFunc, entry);

    // Frame memory comes from the (traced) allocator in real engines.
    const uint64_t locals_addr =
        heap_ ? heap_->alloc(ctx, config_.frameSlots * 8, "js-frame")
              : machine_.alloc(config_.frameSlots * 8, "js-frame");
    const uint64_t stack_addr =
        heap_ ? heap_->alloc(ctx, config_.frameSlots * 8, "js-stack")
              : machine_.alloc(config_.frameSlots * 8, "js-stack");

    for (size_t i = 0; i < args.size(); ++i)
        ctx.store(locals_addr + i * 8, 8, args[i]);
    args.clear();

    Value sp = ctx.imm(stack_addr);
    auto push = [&](Value v) {
        ctx.storeVia(sp, 0, 8, v);
        sp = ctx.addi(sp, 8);
    };
    auto pop = [&]() {
        sp = ctx.addi(sp, -8);
        return ctx.loadVia(sp, 0, 8);
    };

    size_t pc = 0;
    Value pc_reg = ctx.imm(fn.codeAddr);
    Value ret = ctx.imm(0);
    size_t steps = 0;

    while (pc < fn.code.size()) {
        panic_if(++steps > kMaxInterpreterSteps,
                 "runaway js function ", fn.name);
        const auto [op, operand] = fn.code[pc];
        ++opsExecuted_;

        // Traced dispatch: load the code word, decode, verify.
        Value word = ctx.loadVia(pc_reg, 0, 8);
        Value opv = ctx.andi(word, 0xFFFFFFFFull);
        Value operand_v = ctx.shri(word, 32);
        Value is_op = ctx.eqi(opv, op);
        ctx.branchIf(is_op);

        bool jumped = false;
        bool returned = false;
        switch (op) {
          case kNop:
            break;
          case kConst:
            push(std::move(operand_v));
            break;
          case kLoadLocal:
            push(ctx.load(locals_addr + operand * 8, 8));
            break;
          case kStoreLocal: {
            Value v = pop();
            ctx.store(locals_addr + operand * 8, 8, v);
            break;
          }
          case kLoadGlobal:
            push(ctx.load(globalsAddr_ + operand * 8, 8));
            break;
          case kStoreGlobal: {
            Value v = pop();
            ctx.store(globalsAddr_ + operand * 8, 8, v);
            break;
          }
          case kAdd: case kSub: case kMul: case kAnd: case kOr:
          case kXor: case kLt: case kGt: case kEq: {
            Value b = pop();
            Value a = pop();
            switch (op) {
              case kAdd: push(ctx.add(a, b)); break;
              case kSub: push(ctx.sub(a, b)); break;
              case kMul: push(ctx.mul(a, b)); break;
              case kAnd: push(ctx.band(a, b)); break;
              case kOr: push(ctx.bor(a, b)); break;
              case kXor: push(ctx.bxor(a, b)); break;
              case kLt: push(ctx.ltu(a, b)); break;
              case kGt: push(ctx.gtu(a, b)); break;
              default: push(ctx.eq(a, b)); break;
            }
            break;
          }
          case kJmp:
            pc = operand;
            pc_reg = ctx.alu1(operand_v, fn.codeAddr + operand * 8);
            jumped = true;
            break;
          case kJmpIfFalse: {
            Value cond = pop();
            Value taken = ctx.ne(cond, ctx.imm(0));
            if (ctx.branchIf(taken)) {
                // fall through
            } else {
                pc = operand;
                pc_reg =
                    ctx.alu1(operand_v, fn.codeAddr + operand * 8);
                jumped = true;
            }
            break;
          }
          case kCall: {
            const int callee = static_cast<int>(operand & 0xFFFF);
            const int argc = static_cast<int>(operand >> 16);
            std::vector<Value> call_args(argc);
            for (int a = argc - 1; a >= 0; --a)
                call_args[a] = pop();
            push(runFunction(ctx, callee, std::move(call_args)));
            break;
          }
          case kRet:
            ret = pop();
            returned = true;
            break;
          case kDrop: {
            Value v = pop();
            (void)v;
            break;
          }
          case kDomSet: {
            Value value = pop();
            Value prop = pop();
            Value id = pop();
            domSet(ctx, std::move(id), std::move(prop),
                   std::move(value));
            break;
          }
          case kDomText: {
            Value value = pop();
            Value id = pop();
            domText(ctx, std::move(id), std::move(value));
            break;
          }
          case kDomShow: {
            Value id = pop();
            domShowHide(ctx, std::move(id), true);
            break;
          }
          case kDomHide: {
            Value id = pop();
            domShowHide(ctx, std::move(id), false);
            break;
          }
          case kDomListen: {
            Value fn_index = pop();
            Value event = pop();
            Value id = pop();
            domListen(ctx, std::move(id), std::move(event),
                      std::move(fn_index));
            break;
          }
          case kDomGet: {
            Value prop = pop();
            Value id = pop();
            push(domGet(ctx, std::move(id), std::move(prop)));
            break;
          }
          case kDomCreate: {
            // dom.create(parentId, tag[, classHash])
            Value cls = operand >= 3 ? pop() : ctx.imm(0);
            Value tag = pop();
            Value parent = pop();
            domCreate(ctx, std::move(parent), std::move(tag),
                      std::move(cls));
            break;
          }
          case kTimer: {
            Value fn_index = pop();
            Value ms = pop();
            startTimer(ctx, std::move(ms), std::move(fn_index));
            break;
          }
          default:
            panic("bad js opcode ", op);
        }

        if (returned)
            break;
        if (!jumped) {
            ++pc;
            pc_reg = ctx.addi(pc_reg, 8);
        }
    }

    if (heap_) {
        heap_->free(ctx, locals_addr);
        heap_->free(ctx, stack_addr);
    } else {
        machine_.free(locals_addr);
        machine_.free(stack_addr);
    }
    --frameDepth_;
    return ret;
}

Element *
JsEngine::elementForId(Ctx &ctx, const Value &id_hash)
{
    if (!document_)
        return nullptr;
    Element *el =
        document_->byIdHash(static_cast<uint32_t>(id_hash.get()));
    if (!el)
        return nullptr;
    // Traced verification: the element's stored id hash must match.
    Value stored = ctx.load(el->addr + ElementFields::kIdHash, 4);
    Value match = ctx.eq(stored, id_hash);
    ctx.branchIf(match);
    return el;
}

void
JsEngine::writeInlineStyle(Ctx &ctx, Element *el, const Value &prop,
                           uint64_t field, const Value &value)
{
    if (!el->inlineStyleAddr) {
        el->inlineStyleAddr = machine_.alloc(
            InlineStyleFields::kRecordBytes, "inline-style");
    }
    // Inline record write + set-bit, then write-through to the computed
    // style (so browse-time mutations repaint without a full re-resolve;
    // the initial resolve overlays the inline record back on top, which
    // is what lets script-set styles survive the cascade).
    Value inline_base = ctx.imm(el->inlineStyleAddr);
    Value addr = ctx.add(inline_base, ctx.alu1(prop, field));
    ctx.storeVia(addr, 0, 4, value);
    Value mask =
        ctx.load(el->inlineStyleAddr + InlineStyleFields::kMask, 4);
    Value bit = ctx.alu1(prop, 1ull << (field / 4));
    Value new_mask = ctx.bor(mask, bit);
    ctx.store(el->inlineStyleAddr + InlineStyleFields::kMask, 4,
              new_mask);

    Value style_base = ctx.imm(el->styleAddr);
    Value style_addr = ctx.add(style_base, ctx.alu1(prop, field));
    Value through = ctx.loadVia(addr, 0, 4);
    ctx.storeVia(style_addr, 0, 4, through);
}

void
JsEngine::domSet(Ctx &ctx, Value id, Value prop, Value value)
{
    TracedScope scope(ctx, fnRuntimeDom_);
    Element *el = elementForId(ctx, id);
    if (!el)
        return;
    const uint64_t field =
        styleFieldForProp(static_cast<uint32_t>(prop.get()));
    writeInlineStyle(ctx, el, prop, field, value);
    if (hooks_.onStyleMutation)
        hooks_.onStyleMutation(ctx, el);
}

void
JsEngine::domText(Ctx &ctx, Value id, Value value)
{
    TracedScope scope(ctx, fnRuntimeDom_);
    Element *el = elementForId(ctx, id);
    if (!el)
        return;
    // Redirect the node's text content to the script-provided value: the
    // content-hash field carries it and the resource pointer is cleared.
    Value zero = ctx.imm(0);
    ctx.store(el->addr + ElementFields::kTextAddr, 8, zero);
    ctx.store(el->addr + ElementFields::kClassHash, 4, value);
    // Text children mirror the new content.
    for (Element *child : el->children) {
        if (!child->isText())
            continue;
        Value zero2 = ctx.imm(0);
        ctx.store(child->addr + ElementFields::kTextAddr, 8, zero2);
        Value copy = ctx.load(el->addr + ElementFields::kClassHash, 4);
        ctx.store(child->addr + ElementFields::kClassHash, 4, copy);
    }
    if (hooks_.onStyleMutation)
        hooks_.onStyleMutation(ctx, el);
}

void
JsEngine::domShowHide(Ctx &ctx, Value id, bool show)
{
    TracedScope scope(ctx, fnRuntimeDom_);
    Element *el = elementForId(ctx, id);
    if (!el)
        return;
    Value display =
        ctx.alu1(id, show ? kDisplayBlock : kDisplayNone);
    Value prop = ctx.imm(
        static_cast<uint64_t>(CssProperty::Display));
    writeInlineStyle(ctx, el, prop, StyleFields::kDisplay, display);
    // The hidden attribute no longer applies once script took over.
    Value cleared = ctx.imm(0);
    ctx.store(el->addr + ElementFields::kFlags, 4, cleared);
    el->hidden = false;
    // Visibility cascades into the subtree immediately.
    for (Element *child : el->children) {
        Value d = ctx.load(el->styleAddr + StyleFields::kDisplay, 4);
        ctx.store(child->styleAddr + StyleFields::kDisplay, 4, d);
        for (Element *grandchild : child->children) {
            Value d2 =
                ctx.load(child->styleAddr + StyleFields::kDisplay, 4);
            ctx.store(grandchild->styleAddr + StyleFields::kDisplay, 4,
                      d2);
        }
    }
    if (hooks_.onStyleMutation)
        hooks_.onStyleMutation(ctx, el);
}

void
JsEngine::domListen(Ctx &ctx, Value id, Value event, Value fn_index)
{
    TracedScope scope(ctx, fnRuntimeDom_);
    Listener listener;
    listener.idHash = static_cast<uint32_t>(id.get());
    listener.event = static_cast<uint32_t>(event.get());
    listener.fnIndex = static_cast<int>(fn_index.get());
    listener.addr = machine_.alloc(16, "js-listener");
    ctx.store(listener.addr + 0, 4, id);
    ctx.store(listener.addr + 4, 4, event);
    ctx.store(listener.addr + 8, 4, fn_index);
    listeners_.push_back(listener);
}

Value
JsEngine::domGet(Ctx &ctx, Value id, Value prop)
{
    TracedScope scope(ctx, fnRuntimeDom_);
    Element *el = elementForId(ctx, id);
    if (!el) {
        return ctx.imm(0);
    }
    const uint64_t field =
        styleFieldForProp(static_cast<uint32_t>(prop.get()));
    Value base = ctx.imm(el->styleAddr);
    Value addr = ctx.add(base, ctx.alu1(prop, field));
    return ctx.loadVia(addr, 0, 4);
}

void
JsEngine::domCreate(Ctx &ctx, Value parent_id, Value tag, Value cls)
{
    TracedScope scope(ctx, fnRuntimeDom_);
    Element *parent = elementForId(ctx, parent_id);
    if (!parent || !document_)
        return;

    Element *el =
        document_->createElement(static_cast<Tag>(tag.get()));
    el->addr = machine_.alloc(ElementFields::kRecordBytes, "element");
    el->styleAddr = machine_.alloc(StyleFields::kRecordBytes, "style");
    el->layoutAddr = machine_.alloc(LayoutFields::kRecordBytes, "layout");
    el->parent = parent;
    el->classHash = static_cast<uint32_t>(cls.get());
    parent->children.push_back(el);

    ctx.store(el->addr + ElementFields::kTag, 4, tag);
    ctx.store(el->addr + ElementFields::kClassHash, 4, cls);
    Value style = ctx.imm(el->styleAddr);
    ctx.store(el->addr + ElementFields::kStyle, 8, style);
    Value layout = ctx.imm(el->layoutAddr);
    ctx.store(el->addr + ElementFields::kLayout, 8, layout);

    // Grow the parent's child array (copy-on-append, traced).
    const size_t n = parent->children.size();
    const uint64_t new_array = machine_.alloc(n * 8, "children");
    if (parent->childArrayAddr) {
        for (size_t i = 0; i + 1 < n; ++i) {
            Value child = ctx.load(parent->childArrayAddr + i * 8, 8);
            ctx.store(new_array + i * 8, 8, child);
        }
        machine_.free(parent->childArrayAddr);
    }
    Value self = ctx.imm(el->addr);
    ctx.store(new_array + (n - 1) * 8, 8, self);
    parent->childArrayAddr = new_array;
    Value array = ctx.imm(new_array);
    ctx.store(parent->addr + ElementFields::kChildArray, 8, array);
    Value count = ctx.imm(n);
    ctx.store(parent->addr + ElementFields::kChildCount, 4, count);

    if (hooks_.onStructuralMutation)
        hooks_.onStructuralMutation(ctx, el);
}

void
JsEngine::startTimer(Ctx &ctx, Value ms, Value fn_index)
{
    TracedScope scope(ctx, fnRuntimeDom_);
    const uint64_t record = machine_.alloc(16, "js-timer");
    ctx.store(record, 8, ms);
    ctx.store(record + 8, 4, fn_index);

    const uint64_t delay_cycles = ms.get() * config_.cyclesPerMs;
    const int index = static_cast<int>(fn_index.get());
    const trace::ThreadId tid = ctx.tid();
    machine_.postDelayed(tid, delay_cycles, [this, record, index](Ctx &c) {
        TracedScope fire(c, fnTimerFire_);
        Value idx = c.load(record + 8, 4);
        Value check = c.eqi(idx, static_cast<uint64_t>(index));
        c.branchIf(check);
        Value r = runFunction(c, index, {});
        (void)r;
    });
}

bool
JsEngine::fireEvent(Ctx &ctx, uint32_t id_hash, JsEvent event)
{
    TracedScope scope(ctx, fnDispatchEvent_);
    traceLog_.addEvent(ctx, /*category=*/22);
    Value idv = ctx.imm(id_hash);
    Value evtv = ctx.imm(static_cast<uint64_t>(event));

    bool any = false;
    // Handlers may register new listeners; iterate today's snapshot only.
    const size_t snapshot = listeners_.size();
    for (size_t li = 0; li < snapshot; ++li) {
        const Listener listener = listeners_[li];
        Value lid = ctx.load(listener.addr + 0, 4);
        Value lev = ctx.load(listener.addr + 4, 4);
        Value match = ctx.band(ctx.eq(lid, idv), ctx.eq(lev, evtv));
        if (!ctx.branchIf(match))
            continue;
        Value findex = ctx.load(listener.addr + 8, 4);
        Value check = ctx.eqi(findex, listener.fnIndex);
        ctx.branchIf(check);
        Value r = runFunction(ctx, listener.fnIndex, {});
        (void)r;
        any = true;
    }
    return any;
}

bool
JsEngine::callByName(Ctx &ctx, const std::string &name)
{
    auto it = functionsByName_.find(name);
    if (it == functionsByName_.end())
        return false;
    Value r = runFunction(ctx, it->second, {});
    (void)r;
    return true;
}

uint64_t
JsEngine::usedBytes() const
{
    uint64_t used = 0;
    for (const auto &fn : functions_) {
        if (fn->executed)
            used += fn->srcLength;
    }
    return used;
}

size_t
JsEngine::executedFunctionCount() const
{
    size_t count = 0;
    for (const auto &fn : functions_)
        count += fn->executed ? 1 : 0;
    return count;
}

} // namespace browser
} // namespace webslice
