#include "browser/dom.hh"

namespace webslice {
namespace browser {

Tag
tagFromName(std::string_view name)
{
    if (name == "body") return Tag::Body;
    if (name == "div") return Tag::Div;
    if (name == "span") return Tag::Span;
    if (name == "p") return Tag::P;
    if (name == "h1") return Tag::H1;
    if (name == "img") return Tag::Img;
    if (name == "a") return Tag::A;
    if (name == "button") return Tag::Button;
    if (name == "input") return Tag::Input;
    if (name == "ul") return Tag::Ul;
    if (name == "li") return Tag::Li;
    if (name == "header") return Tag::Header;
    if (name == "footer") return Tag::Footer;
    if (name == "nav") return Tag::Nav;
    if (name == "section") return Tag::Section;
    if (name == "canvas") return Tag::Canvas;
    return Tag::None;
}

uint32_t
hashString(std::string_view text)
{
    uint32_t hash = 2166136261u;
    for (const char c : text) {
        hash ^= static_cast<uint8_t>(c);
        hash *= 16777619u;
    }
    return hash;
}

Element *
Document::createElement(Tag tag)
{
    auto element = std::make_unique<Element>();
    element->tag = tag;
    elements_.push_back(std::move(element));
    return elements_.back().get();
}

void
Document::indexById(Element *element)
{
    if (element->idHash != 0)
        byIdHash_[element->idHash] = element;
}

Element *
Document::byIdHash(uint32_t hash) const
{
    auto it = byIdHash_.find(hash);
    return it == byIdHash_.end() ? nullptr : it->second;
}

} // namespace browser
} // namespace webslice
