/**
 * @file
 * The HTML tokenizer/parser (html:: namespace) — the first stage of the
 * paper's Figure 1 rendering pipeline.
 *
 * Parsing walks the resource bytes with traced loads (a traced cursor
 * register provides the address dependence), mixes id/class/tag bytes
 * into hashes with traced arithmetic, and writes each element's record
 * fields into simulated memory — so everything downstream (style, layout,
 * paint, raster) is transitively data-dependent on the original HTML
 * bytes, exactly the chain the paper's slicer walks.
 *
 * Grammar (the workload generators emit exactly this dialect):
 *   <tag attr=value attr2=value2>children</tag>
 *   <img src=url w=120 h=80>            (void tags: img, input)
 *   <link href=main.css> <script src=app.js>   (subresource references)
 *   raw text between tags becomes Text nodes
 */

#ifndef WEBSLICE_BROWSER_HTML_PARSER_HH
#define WEBSLICE_BROWSER_HTML_PARSER_HH

#include <memory>

#include "browser/debugging.hh"
#include "browser/dom.hh"
#include "browser/net.hh"
#include "sim/machine.hh"

namespace webslice {
namespace browser {

/** Builds a Document from an HTML resource. */
class HtmlParser
{
  public:
    HtmlParser(sim::Machine &machine, TraceLog &trace_log);

    /**
     * Parse the (loaded) HTML resource into a Document.
     * Must run on the main thread.
     */
    std::unique_ptr<Document> parse(sim::Ctx &ctx, const Resource &html);

    /**
     * Parse a document fragment into an existing Document as the new
     * subtree of `root` (SPA partial navigation). Only the swapped-in
     * subtree — plus `root` itself, whose child array changed — is
     * re-linked; untouched parts of the tree keep their records.
     */
    void parseFragment(sim::Ctx &ctx, const Resource &fragment,
                       Document &doc, Element *root);

  private:
    struct Cursor;

    void parseTag(sim::Ctx &ctx, Cursor &cur, Document &doc,
                  std::vector<Element *> &stack);
    void parseText(sim::Ctx &ctx, Cursor &cur, Document &doc,
                   std::vector<Element *> &stack);
    void linkTree(sim::Ctx &ctx, Document &doc);
    void linkElement(sim::Ctx &ctx, Element *el);

    sim::Machine &machine_;
    TraceLog &traceLog_;
    trace::FuncId fnParse_;
    trace::FuncId fnParseTag_;
    trace::FuncId fnParseText_;
    trace::FuncId fnLinkTree_;
};

} // namespace browser
} // namespace webslice

#endif // WEBSLICE_BROWSER_HTML_PARSER_HH
