#include "browser/raster.hh"

#include <algorithm>

#include "support/logging.hh"

namespace webslice {
namespace browser {

using sim::Ctx;
using sim::TracedScope;
using sim::Value;

Rasterizer::Rasterizer(sim::Machine &machine, TraceLog &trace_log,
                       const BrowserConfig &config)
    : machine_(machine), traceLog_(trace_log), config_(config),
      fnPlayback_(machine.registerFunction(
          "gfx::RasterBufferProvider::playbackToMemory")),
      fnDrawItem_(machine.registerFunction("gfx::Rasterizer::drawItem"))
{
}

void
Rasterizer::rasterizeTile(Ctx &ctx, const Layer &layer,
                          const Value &task_record)
{
    TracedScope scope(ctx, fnPlayback_);
    ++tiles_;
    traceLog_.addEvent(ctx, /*category=*/33, /*weight=*/2);

    // Unpack the task record (traced loads through the task pointer).
    Value layer_rec = ctx.loadVia(task_record, RasterTaskFields::kLayerRecord,
                                  8);
    Value tx = ctx.loadVia(task_record, RasterTaskFields::kTileX, 4);
    Value ty = ctx.loadVia(task_record, RasterTaskFields::kTileY, 4);
    Value backing = ctx.loadVia(task_record, RasterTaskFields::kBackingTile,
                                8);
    Value phase = ctx.loadVia(task_record, RasterTaskFields::kPhase, 4);

    const int tile_px = config_.tilePx;
    const int cell_px = config_.cellPx;
    const int cells_per_tile = config_.cellsPerTile();

    // Tile origin in layer-local px (traced mirror of the native math).
    Value ox = ctx.muli(tx, tile_px);
    Value oy = ctx.muli(ty, tile_px);
    const int ox_n = static_cast<int>(tx.get()) * tile_px;
    const int oy_n = static_cast<int>(ty.get()) * tile_px;

    Value item_count = ctx.loadVia(layer_rec, LayerFields::kItemCount, 4);
    Value items_base = ctx.loadVia(layer_rec, LayerFields::kItemsAddr, 8);
    (void)item_count;

    for (size_t i = 0; i < layer.items.size(); ++i) {
        TracedScope item_scope(ctx, fnDrawItem_);
        const int64_t rec = static_cast<int64_t>(
            i * ItemFields::kRecordBytes);

        // Staged cull, the way real playback walks item bounds: test the
        // vertical extent first and only fetch the rest of the record
        // when the row band overlaps.
        Value iy = ctx.loadVia(items_base, rec + ItemFields::kY, 4);
        Value ih = ctx.loadVia(items_base, rec + ItemFields::kH, 4);
        Value iy2 = ctx.add(iy, ih);
        Value oy2 = ctx.addi(oy, tile_px);
        Value y_overlap = ctx.band(ctx.ltu(iy, oy2), ctx.ltu(oy, iy2));
        if (!ctx.branchIf(y_overlap)) {
            ++clipped_;
            continue;
        }

        Value ix = ctx.loadVia(items_base, rec + ItemFields::kX, 4);
        Value iw = ctx.loadVia(items_base, rec + ItemFields::kW, 4);
        Value ix2 = ctx.add(ix, iw);
        Value ox2 = ctx.addi(ox, tile_px);
        Value x_overlap = ctx.band(ctx.ltu(ix, ox2), ctx.ltu(ox, ix2));
        if (!ctx.branchIf(x_overlap)) {
            ++clipped_;
            continue;
        }

        Value type = ctx.loadVia(items_base, rec + ItemFields::kType, 4);
        Value color = ctx.loadVia(items_base, rec + ItemFields::kColor, 4);
        (void)type;

        const DisplayItem &item = layer.items[i];

        // Covered cell range (native mirrors of the traced coordinates).
        const int x0 = std::max(item.x, ox_n);
        const int y0 = std::max(item.y, oy_n);
        const int x1 = std::min(item.x + item.w, ox_n + tile_px);
        const int y1 = std::min(item.y + item.h, oy_n + tile_px);
        const int cx0 = x0 / cell_px;
        const int cy0 = y0 / cell_px;
        const int cx1 = (x1 + cell_px - 1) / cell_px;
        const int cy1 = (y1 + cell_px - 1) / cell_px;

        // Per-item base pixel value (traced; animated layers fold in the
        // animation phase so re-rasters produce new values).
        Value base_pixel = ctx.bxor(color, phase);

        Value payload;
        const bool has_payload = item.payloadAddr != 0;
        if (has_payload) {
            payload = ctx.loadVia(items_base,
                                  rec + ItemFields::kPayloadAddr, 8);
        }

        for (int cy = cy0; cy < cy1; ++cy) {
            for (int cx = cx0; cx < cx1; ++cx) {
                const int local_cx = cx - (ox_n / cell_px);
                const int local_cy = cy - (oy_n / cell_px);
                if (local_cx < 0 || local_cy < 0 ||
                    local_cx >= cells_per_tile ||
                    local_cy >= cells_per_tile) {
                    continue;
                }
                const int64_t cell_off =
                    (local_cy * cells_per_tile + local_cx) * 4;
                const size_t cell_index =
                    static_cast<size_t>(cy) * 131 + cx;

                switch (item.type) {
                  case DisplayItem::Rect: {
                    // Per-cell shading (gradient/rounded-corner work).
                    Value shade =
                        ctx.addi(base_pixel,
                                 static_cast<int64_t>(cell_off));
                    ctx.storeVia(backing, cell_off, 4, shade);
                    break;
                  }
                  case DisplayItem::Text: {
                    Value glyphs;
                    if (has_payload && item.payloadLen >= 8) {
                        const int64_t text_off = static_cast<int64_t>(
                            (cell_index * 7) % (item.payloadLen - 7));
                        glyphs = ctx.loadVia(payload, text_off, 8);
                    } else {
                        glyphs = ctx.imm(0x20);
                    }
                    // Glyphs alpha-blend over whatever is under them,
                    // so the underlying background store stays live.
                    Value under = ctx.loadVia(backing, cell_off, 4);
                    Value pixel = ctx.bxor(base_pixel, glyphs);
                    pixel = ctx.add(pixel, under);
                    ctx.storeVia(backing, cell_off, 4, pixel);
                    break;
                  }
                  case DisplayItem::Image: {
                    Value pixel;
                    if (has_payload) {
                        const uint32_t img_w =
                            std::max<uint32_t>(1, item.payloadLen);
                        const uint32_t img_cx =
                            static_cast<uint32_t>(cx - item.x / cell_px) %
                            img_w;
                        const uint32_t img_cy = static_cast<uint32_t>(
                            cy - item.y / cell_px);
                        const int64_t bitmap_off = static_cast<int64_t>(
                            (uint64_t{img_cy} * img_w + img_cx) * 4);
                        Value sample =
                            ctx.loadVia(payload, bitmap_off, 4);
                        pixel = ctx.bxor(sample, phase);
                    } else {
                        pixel = ctx.copy(base_pixel);
                    }
                    if (!item.opaque) {
                        // Content thumbnails blend over the backdrop
                        // (alpha edges, rounded corners), keeping the
                        // underlying paint live; opaque media (ads,
                        // carousel photos) overwrite it.
                        Value under = ctx.loadVia(backing, cell_off, 4);
                        pixel = ctx.add(pixel, under);
                    }
                    ctx.storeVia(backing, cell_off, 4, pixel);
                    break;
                  }
                  default:
                    break;
                }
                ++cells_;
            }
        }
    }

    // The paper's marker: the tile buffer now holds final pixel values;
    // record its address and size as slicing criteria.
    const uint64_t tile_bytes =
        static_cast<uint64_t>(cells_per_tile) * cells_per_tile * 4;
    const trace::MemRange ranges[] = {{backing.get(), tile_bytes}};
    ctx.marker(ranges);
}

} // namespace browser
} // namespace webslice
