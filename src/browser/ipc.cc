#include "browser/ipc.hh"

#include "sim/syscalls.hh"
#include "support/logging.hh"

namespace webslice {
namespace browser {

using sim::Ctx;
using sim::TracedScope;
using sim::Value;

IpcChannel::IpcChannel(sim::Machine &machine)
    : fnSend_(machine.registerFunction("ipc::Channel::send")),
      fnWriteHeader_(machine.registerFunction("ipc::Message::writeHeader")),
      fnChecksum_(machine.registerFunction("ipc::Message::checksum")),
      fnRoute_(machine.registerFunction("ipc::Channel::updateRouting")),
      stagingAddr_(machine.alloc(kStagingBytes, "ipc-staging")),
      statsAddr_(machine.alloc(96, "ipc-stats"))
{
}

void
IpcChannel::send(Ctx &ctx, IpcMessage type,
                 std::span<const uint64_t> payload)
{
    TracedScope scope(ctx, fnSend_);
    panic_if(16 + payload.size() * 8 > kStagingBytes,
             "ipc message exceeds the staging buffer");

    // Header: type, payload length, routing id.
    {
        TracedScope header_scope(ctx, fnWriteHeader_);
        Value msg_type = ctx.imm(static_cast<uint64_t>(type));
        ctx.store(stagingAddr_, 4, msg_type);
        Value length = ctx.imm(payload.size() * 8);
        ctx.store(stagingAddr_ + 4, 4, length);
        Value routing = ctx.imm(7);
        ctx.store(stagingAddr_ + 8, 4, routing);
    }

    // Payload words.
    for (size_t i = 0; i < payload.size(); ++i) {
        Value word = ctx.imm(payload[i]);
        ctx.store(stagingAddr_ + 16 + i * 8, 8, word);
    }

    const uint64_t total = 16 + payload.size() * 8;
    finishSend(ctx, total);
}

void
IpcChannel::sendValue(Ctx &ctx, IpcMessage type, const Value &value)
{
    TracedScope scope(ctx, fnSend_);
    {
        TracedScope header_scope(ctx, fnWriteHeader_);
        Value msg_type = ctx.imm(static_cast<uint64_t>(type));
        ctx.store(stagingAddr_, 4, msg_type);
        Value length = ctx.imm(8);
        ctx.store(stagingAddr_ + 4, 4, length);
    }
    ctx.store(stagingAddr_ + 16, 8, value);
    finishSend(ctx, 24);
}

void
IpcChannel::finishSend(Ctx &ctx, uint64_t total)
{
    // Channel bookkeeping that never reaches the wire: routing-table
    // refresh, sequence counters, send statistics. This is the part of
    // the IPC category even receiver-side analysis cannot reclaim.
    {
        TracedScope route_scope(ctx, fnRoute_);
        Value seq = ctx.load(statsAddr_, 8);
        Value next_seq = ctx.addi(seq, 1);
        ctx.store(statsAddr_, 8, next_seq);
        Value route = ctx.load(statsAddr_ + 8, 8);
        Value mixed = ctx.bxor(route, seq);
        Value bucket = ctx.andi(mixed, 7);
        Value entry = ctx.add(ctx.imm(statsAddr_ + 16),
                              ctx.muli(bucket, 8));
        Value count = ctx.loadVia(entry, 0, 8);
        Value bumped = ctx.addi(count, 1);
        ctx.storeVia(entry, 0, 8, bumped);
        Value bytes = ctx.load(statsAddr_ + 80, 8);
        Value new_bytes = ctx.add(bytes, ctx.imm(total));
        ctx.store(statsAddr_ + 80, 8, new_bytes);
    }
    // Trailing checksum over the staged bytes, then the kernel handoff.
    {
        TracedScope checksum_scope(ctx, fnChecksum_);
        Value sum = ctx.imm(0);
        for (uint64_t off = 0; off + 8 <= total; off += 8) {
            Value word = ctx.load(stagingAddr_ + off, 8);
            sum = ctx.add(sum, word);
        }
        ctx.store(stagingAddr_ + total, 8, sum);
    }
    Value rc = sim::sysSendto(ctx, stagingAddr_, total + 8);
    (void)rc;
    ++sent_;
    bytesSent_ += total + 8;
}

} // namespace browser
} // namespace webslice
