/**
 * @file
 * Traced leaf library routines (lib:: namespace).
 *
 * These are the substrate's equivalent of libc/base helpers: byte hashing,
 * copying, and filling, implemented as real traced loops so their work has
 * genuine dependence structure. Their namespace ("lib") is deliberately
 * absent from the categorizer's table — like the paper, a slice of leaf
 * helper work stays uncategorizable.
 */

#ifndef WEBSLICE_BROWSER_LIB_HH
#define WEBSLICE_BROWSER_LIB_HH

#include "sim/machine.hh"

namespace webslice {
namespace browser {

/** Per-machine handle bundle for the traced library routines. */
class Lib
{
  public:
    explicit Lib(sim::Machine &machine);

    /**
     * Hash len bytes at addr (8-byte strides). The returned value depends
     * on every chunk read, so consumers of the hash depend on the bytes.
     */
    sim::Value hashBytes(sim::Ctx &ctx, uint64_t addr, uint64_t len);

    /** Copy len bytes (8-byte strides) from src to dst, traced. */
    void copyBytes(sim::Ctx &ctx, uint64_t dst, uint64_t src, uint64_t len);

    /** Store `value` into `count` consecutive u32 cells at addr. */
    void fillCells(sim::Ctx &ctx, uint64_t addr, uint64_t count,
                   const sim::Value &value);

    /**
     * Checksum `count` u32 cells at addr; cheap reduction used by
     * consumers that need to depend on a buffer without copying it.
     */
    sim::Value sumCells(sim::Ctx &ctx, uint64_t addr, uint64_t count);

  private:
    trace::FuncId fnHash_;
    trace::FuncId fnCopy_;
    trace::FuncId fnFill_;
    trace::FuncId fnSum_;
};

/**
 * Traced heap front-end: size-class freelist bookkeeping over the host
 * allocator. Registered as plain "malloc"/"free" — allocator symbols
 * carry no namespace, so this work lands in the paper's uncategorizable
 * remainder (their namespace analysis covered only 53-74% of non-slice
 * instructions; allocator and libc time is a big part of what it missed).
 */
class TracedHeap
{
  public:
    explicit TracedHeap(sim::Machine &machine);

    /** Allocate size bytes (traced freelist walk + host allocation). */
    uint64_t alloc(sim::Ctx &ctx, uint64_t size, const char *tag = "");

    /** Release a block (traced freelist push + host free). */
    void free(sim::Ctx &ctx, uint64_t addr);

    uint64_t allocCount() const { return allocs_; }

  private:
    sim::Machine &machine_;
    trace::FuncId fnMalloc_;
    trace::FuncId fnFree_;
    uint64_t binsAddr_; ///< 16 size-class freelist heads (8 bytes each).
    uint64_t allocs_ = 0;
};

} // namespace browser
} // namespace webslice

#endif // WEBSLICE_BROWSER_LIB_HH
