#include "scenario/run.hh"

#include "support/logging.hh"
#include "support/strings.hh"

namespace webslice {
namespace scenario {

using browser::Tab;
using browser::UserAction;
using workloads::JsSpec;
using workloads::PageContent;
using workloads::RunResult;
using workloads::SiteSpec;
using workloads::generateJs;
using workloads::generatePage;

namespace {

/** Small word pool for partial-navigation fragment paragraphs. */
std::string
fragmentWords(Rng &rng, int count)
{
    static const char *const kWords[] = {
        "deal",  "offer",  "fresh",  "route",  "story",
        "panel", "result", "detail", "review", "update",
    };
    std::string text;
    for (int w = 0; w < count; ++w) {
        if (w)
            text += ' ';
        text += kWords[rng.below(10)];
    }
    return text;
}

/**
 * Build the DOM fragment a partial navigation swaps in. Ids carry the
 * per-action prefix pn<k>- so they never collide with the main page's
 * indexById entries; classes reuse the main stylesheet's sec/card rules
 * so resolveSubtree matches real selectors. No <img> tags: fragment
 * parsing does not trigger fetches.
 */
std::string
fragmentHtml(Rng &rng, size_t k, const UserAction &action,
             std::vector<std::string> &ids)
{
    std::string html;
    for (int s = 0; s < action.fragSections; ++s) {
        html += format("<section class=sec id=pn%zu-sec-%d>", k, s);
        ids.push_back(format("pn%zu-sec-%d", k, s));
        html += "<h1>";
        html += fragmentWords(rng, 3);
        html += "</h1>";
        for (int i = 0; i < action.fragItems; ++i) {
            const std::string card = format("pn%zu-c-%d-%d", k, s, i);
            html += format("<div class=card id=%s>", card.c_str());
            html += "<p>";
            html += fragmentWords(rng, 8 + static_cast<int>(rng.below(8)));
            html += "</p></div>";
            ids.push_back(card);
        }
        html += "</section>";
    }
    return html;
}

/** Generate the script bundle riding along with extra action k. */
std::string
extraScript(const SiteSpec &site, size_t k, uint64_t bytes,
            double load_fraction, const std::string &prefix,
            const std::vector<std::string> &target_ids)
{
    Rng rng(site.seed ^ (0x9A0 + k));
    JsSpec js;
    js.targetBytes = bytes;
    js.loadFraction = load_fraction;
    js.handlerFraction = 0.0;
    js.namePrefix = prefix;
    PageContent targets;
    targets.visibleTargetIds = target_ids;
    return generateJs(rng, js, targets);
}

/**
 * Fill the payload fields the DSL leaves symbolic. k is the action's
 * position in extraActions, which seeds the payload generators so every
 * fragment/script is deterministic per scenario.
 */
UserAction
resolveAction(const SiteSpec &site, size_t k, UserAction action)
{
    switch (action.kind) {
      case UserAction::Kind::PartialNav: {
        Rng rng(site.seed ^ (0x5F0 + k));
        std::vector<std::string> ids;
        action.payload = fragmentHtml(rng, k, action, ids);
        if (action.bytes > 0) {
            action.scriptPayload =
                extraScript(site, k, action.bytes, action.loadFraction,
                            format("pn%zu_", k), ids);
        }
        break;
      }
      case UserAction::Kind::ScriptFetch: {
        if (action.url.empty())
            action.url = format("extra-%zu.js", k);
        if (action.payload.empty()) {
            action.payload =
                extraScript(site, k, action.bytes, action.loadFraction,
                            format("xf%zu_", k), {});
        }
        break;
      }
      default:
        break;
    }
    return action;
}

} // namespace

Scenario
scenarioFromSpec(const SiteSpec &spec)
{
    Scenario sc;
    sc.name = spec.name;
    sc.site = spec;
    return sc;
}

RunResult
runScenario(const Scenario &sc, browser::JsEngineConfig js_config)
{
    RunResult result;
    result.spec = sc.site;

    result.machine = std::make_unique<sim::Machine>();
    if (sc.site.captureValues)
        result.machine->enableValueLog();
    result.tab = std::make_unique<Tab>(*result.machine, sc.site.browser,
                                       js_config);

    // Secondary tabs share the primary tab's browser thread set (one
    // compositor/raster pool serving several documents, like one
    // renderer process hosting several frames).
    for (const auto &tab_spec : sc.extraTabs) {
        result.extraTabs.push_back(std::make_unique<Tab>(
            *result.machine, tab_spec.browser, js_config,
            &result.tab->threads()));
    }
    for (int w = 0; w < sc.workers; ++w)
        result.tab->addWorker();

    result.tab->setSessionMs(sc.site.sessionMs);
    result.tab->navigate(workloads::buildSiteContent(sc.site));
    for (size_t t = 0; t < sc.extraTabs.size(); ++t) {
        result.extraTabs[t]->setSessionMs(sc.extraTabs[t].sessionMs);
        result.extraTabs[t]->navigate(
            workloads::buildSiteContent(sc.extraTabs[t]));
    }

    for (const auto &action : sc.site.actions)
        result.tab->scheduleAction(action);

    if (sc.site.lazyJsBytes > 0) {
        // Mid-session script download (all of it used: it is fetched on
        // demand, the paper's deferred-processing ideal).
        Rng lazy_rng(sc.site.seed ^ 0x1A2);
        const PageContent page =
            generatePage(lazy_rng, sc.site.page); // ids only; HTML unused
        JsSpec lazy_spec;
        lazy_spec.targetBytes = sc.site.lazyJsBytes;
        lazy_spec.loadFraction = sc.site.lazyJsLoadFraction;
        lazy_spec.handlerFraction = 0.0;
        lazy_spec.namePrefix = "lz_"; // separate bundle namespace
        result.tab->scheduleScriptFetch(
            sc.site.lazyJsAtMs, "lazy.js",
            generateJs(lazy_rng, lazy_spec, page));
    }

    for (size_t k = 0; k < sc.extraActions.size(); ++k) {
        const UserAction &raw = sc.extraActions[k];
        fatal_if(raw.tab < 0 ||
                     static_cast<size_t>(raw.tab) > sc.extraTabs.size(),
                 "scenario '", sc.name, "': action ", k, " targets tab ",
                 raw.tab, " but only ", sc.extraTabs.size(),
                 " extra tab(s) exist");
        fatal_if(raw.kind == UserAction::Kind::WorkerTask &&
                     raw.workerIndex >= sc.workers,
                 "scenario '", sc.name, "': action ", k,
                 " targets worker ", raw.workerIndex, " but only ",
                 sc.workers, " worker(s) exist");
        Tab &tab = raw.tab == 0 ? *result.tab
                                : *result.extraTabs[raw.tab - 1];
        tab.scheduleAction(resolveAction(sc.site, k, raw));
    }

    result.machine->run();

    fatal_if(!result.tab->loadComplete(),
             "benchmark '", sc.site.name, "' never finished loading");
    for (size_t t = 0; t < result.extraTabs.size(); ++t) {
        fatal_if(!result.extraTabs[t]->loadComplete(), "scenario '",
                 sc.name, "': tab ", t + 1, " never finished loading");
    }

    result.loadCompleteIndex = result.tab->loadCompleteIndex();
    result.jsTotalBytes = result.tab->js().totalBytes();
    result.jsUsedBytes = result.tab->js().usedBytes();
    result.cssTotalBytes = result.tab->cssTotalBytes();
    result.cssUsedBytes = result.tab->cssUsedBytes();
    return result;
}

RunResult
runSite(const SiteSpec &spec, browser::JsEngineConfig js_config)
{
    return runScenario(scenarioFromSpec(spec), js_config);
}

} // namespace scenario
} // namespace webslice
