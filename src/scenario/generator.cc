#include "scenario/generator.hh"

#include <cstdlib>

#include "support/logging.hh"
#include "support/strings.hh"

namespace webslice {
namespace scenario {

using browser::UserAction;
using workloads::SiteSpec;

namespace {

/** Pick the lo/mid/hi value for a level. */
template <typename T>
T
pick(Level level, T lo, T mid, T hi)
{
    switch (level) {
      case Level::Lo:
        return lo;
      case Level::Mid:
        return mid;
      case Level::Hi:
        return hi;
    }
    return mid; // unreachable
}

} // namespace

Level
parseLevel(const std::string &text)
{
    if (text == "lo")
        return Level::Lo;
    if (text == "mid")
        return Level::Mid;
    if (text == "hi")
        return Level::Hi;
    fatal("knob level must be lo, mid, or hi; got '", text, "'");
}

const char *
levelName(Level level)
{
    switch (level) {
      case Level::Lo:
        return "lo";
      case Level::Mid:
        return "mid";
      case Level::Hi:
        return "hi";
    }
    return "mid"; // unreachable
}

const std::vector<std::string> &
knobKeys()
{
    static const std::vector<std::string> keys = {
        "dom_depth", "css_volume", "js_hotness", "images", "workers",
    };
    return keys;
}

void
applyKnob(Knobs &knobs, const std::string &key, const std::string &value)
{
    if (key == "dom_depth") {
        knobs.domDepth = parseLevel(value);
    } else if (key == "css_volume") {
        knobs.cssVolume = parseLevel(value);
    } else if (key == "js_hotness") {
        knobs.jsHotness = parseLevel(value);
    } else if (key == "images") {
        knobs.images = parseLevel(value);
    } else if (key == "workers") {
        char *end = nullptr;
        const long n = std::strtol(value.c_str(), &end, 10);
        fatal_if(end == value.c_str() || *end != '\0' || n < 0 || n > 8,
                 "workers knob takes 0..8, got '", value, "'");
        knobs.workers = static_cast<int>(n);
    } else {
        std::string valid;
        for (const auto &k : knobKeys())
            valid += (valid.empty() ? "" : ", ") + k;
        fatal("unknown knob '", key, "' (valid: ", valid, ")");
    }
}

std::string
knobsLabel(const Knobs &knobs)
{
    std::string label =
        format("dom-%s_css-%s_js-%s_img-%s", levelName(knobs.domDepth),
               levelName(knobs.cssVolume), levelName(knobs.jsHotness),
               levelName(knobs.images));
    if (knobs.workers)
        label += format("_w%d", knobs.workers);
    return label;
}

std::string
describeKnobs()
{
    return "dom_depth   lo|mid|hi  sections 2/4/6, cards 2/3/4, "
           "nesting 0/1/2\n"
           "css_volume  lo|mid|hi  stylesheet 4k/12k/28k bytes\n"
           "js_hotness  lo|mid|hi  script 8k/16k/28k bytes, load "
           "0.55/0.45/0.35, handlers +0/2/5, timers 0/1/3\n"
           "images      lo|mid|hi  512/2048/6144 bytes per image\n"
           "workers     0..8       dedicated workers fed traced "
           "bursts\n";
}

Scenario
generateScenario(uint64_t seed, const Knobs &knobs)
{
    // One generator stream, decorrelated from the content stream that
    // buildSiteContent derives from site.seed.
    Rng rng(seed ^ 0xC0FFEE);

    Scenario sc;
    sc.workers = knobs.workers;

    SiteSpec &site = sc.site;
    site.seed = seed;
    site.url = format("https://synth-%llu.example/",
                      static_cast<unsigned long long>(seed));
    site.sessionMs = 6000;

    site.page.sections = pick(knobs.domDepth, 2, 4, 6);
    site.page.itemsPerSection = pick(knobs.domDepth, 2, 3, 4);
    site.page.nestingDepth = pick(knobs.domDepth, 0, 1, 2);
    site.page.hiddenMenus = 1 + static_cast<int>(rng.below(2));
    site.page.menuEntries = 4 + static_cast<int>(rng.below(4));
    site.page.fixedHeader = true;
    site.page.carousel = rng.chance(0.5);
    site.page.newsPane = !site.page.carousel && rng.chance(0.5);
    site.page.searchBox = rng.chance(0.5);
    site.page.adBanner = rng.chance(0.4);
    site.page.wordsPerParagraph = 10 + static_cast<int>(rng.below(8));

    site.css.targetBytes =
        pick<uint64_t>(knobs.cssVolume, 4000, 12000, 28000);
    site.css.usedFraction = 0.5;

    site.js.targetBytes =
        pick<uint64_t>(knobs.jsHotness, 8000, 16000, 28000);
    site.js.loadFraction = pick(knobs.jsHotness, 0.55, 0.45, 0.35);
    site.js.handlerFraction = pick(knobs.jsHotness, 0.08, 0.15, 0.22);
    site.js.timerCount = pick(knobs.jsHotness, 0, 1, 3);
    site.js.timerMs = pick<uint64_t>(knobs.jsHotness, 400, 500, 300);
    site.js.extraHandlers = pick(knobs.jsHotness, 0, 2, 5);

    site.imageBytes = pick<size_t>(knobs.images, 512, 2048, 6144);

    sc.name = format("synth seed=0x%llx %s",
                     static_cast<unsigned long long>(seed),
                     knobsLabel(knobs).c_str());
    site.name = sc.name;

    // ---- interaction script ------------------------------------------------
    // Legacy verbs land in site.actions (scheduled like the paper
    // benchmarks); new verbs ride in extraActions. Every action is
    // expressible in the DSL, so serialize -> parse -> run reproduces
    // the exact recording.
    auto legacy = [&](UserAction::Kind kind, uint64_t at, int dy,
                      const std::string &id) {
        UserAction a;
        a.kind = kind;
        a.atMs = at;
        a.scrollDy = dy;
        a.targetId = id;
        site.actions.push_back(std::move(a));
    };

    legacy(UserAction::Kind::Click, 1200 + rng.below(400), 0,
           "btn-menu");
    legacy(UserAction::Kind::Scroll, 1800 + rng.below(300),
           200 + static_cast<int>(rng.below(300)), "");
    if (site.page.carousel || site.page.newsPane)
        legacy(UserAction::Kind::Click, 2600 + rng.below(400), 0,
               "btn-roll");
    if (rng.chance(0.6))
        legacy(UserAction::Kind::Scroll, 3400 + rng.below(300),
               -static_cast<int>(100 + rng.below(200)), "");

    if (site.page.searchBox) {
        UserAction burst;
        burst.kind = UserAction::Kind::Type;
        burst.atMs = 2000 + rng.below(300);
        burst.targetId = "searchbox";
        burst.count = 3 + static_cast<int>(rng.below(3));
        burst.intervalMs = 120 + rng.below(80);
        sc.extraActions.push_back(std::move(burst));
    }

    {
        // One SPA partial navigation into the first section; half the
        // time it also pulls a fragment script bundle.
        UserAction nav;
        nav.kind = UserAction::Kind::PartialNav;
        nav.atMs = 3800 + rng.below(600);
        nav.targetId = "sec-0";
        nav.fragSections = 1 + static_cast<int>(rng.below(2));
        nav.fragItems = 2 + static_cast<int>(rng.below(2));
        if (rng.chance(0.5)) {
            nav.bytes = 1200 + rng.below(1600);
            nav.loadFraction = 0.8;
        }
        sc.extraActions.push_back(std::move(nav));
    }

    if (rng.chance(0.5)) {
        UserAction raf;
        raf.kind = UserAction::Kind::RafLoop;
        raf.atMs = 2000 + rng.below(500);
        raf.durationMs = 1000 + rng.below(1000);
        raf.fnName = "util0"; // always emitted by generateJs
        sc.extraActions.push_back(std::move(raf));
    }

    for (int w = 0; w < sc.workers; ++w) {
        UserAction task;
        task.kind = UserAction::Kind::WorkerTask;
        task.atMs = 2200 + 400 * static_cast<uint64_t>(w);
        task.workerIndex = w;
        task.units = 32 + rng.below(32);
        sc.extraActions.push_back(std::move(task));
    }

    if (rng.chance(0.5)) {
        site.lazyJsAtMs = 3000 + rng.below(500);
        site.lazyJsBytes = 1500 + rng.below(1500);
        site.lazyJsLoadFraction = 0.9;
    }

    return sc;
}

} // namespace scenario
} // namespace webslice
