#include "scenario/scenario.hh"

#include <charconv>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "support/logging.hh"
#include "support/strings.hh"

namespace webslice {
namespace scenario {

using browser::UserAction;
using workloads::SiteSpec;

namespace {

/** Shortest round-trip decimal rendering of a double. */
std::string
doubleText(double v)
{
    char buf[64];
    const auto res = std::to_chars(buf, buf + sizeof(buf), v);
    return std::string(buf, res.ptr);
}

std::string
boolText(bool v)
{
    return v ? "1" : "0";
}

/** Split one line into whitespace tokens, dropping #-comments. */
std::vector<std::string>
tokenize(const std::string &line)
{
    std::vector<std::string> tokens;
    std::istringstream in(line);
    std::string token;
    while (in >> token) {
        if (token[0] == '#')
            break;
        tokens.push_back(token);
    }
    return tokens;
}

} // namespace

Scenario
parseScenarioText(const std::string &text, const std::string &path)
{
    Scenario sc;
    bool have_fetch = false;
    uint64_t cursor = 0;
    int lineno = 0;

    auto fail = [&](const std::string &msg) {
        fatal(path, ":", lineno, ": ", msg);
    };

    auto parseU64 = [&](const std::string &t) -> uint64_t {
        char *end = nullptr;
        const unsigned long long v = std::strtoull(t.c_str(), &end, 0);
        if (end == t.c_str() || *end != '\0' || t[0] == '-')
            fail("expected an unsigned number, got '" + t + "'");
        return v;
    };
    auto parseInt = [&](const std::string &t) -> int {
        char *end = nullptr;
        const long v = std::strtol(t.c_str(), &end, 0);
        if (end == t.c_str() || *end != '\0')
            fail("expected an integer, got '" + t + "'");
        return static_cast<int>(v);
    };
    auto parseDouble = [&](const std::string &t) -> double {
        char *end = nullptr;
        const double v = std::strtod(t.c_str(), &end);
        if (end == t.c_str() || *end != '\0')
            fail("expected a number, got '" + t + "'");
        return v;
    };
    auto parseBool = [&](const std::string &t) -> bool {
        if (t == "1" || t == "true")
            return true;
        if (t == "0" || t == "false")
            return false;
        fail("expected a boolean (0/1/true/false), got '" + t + "'");
        return false; // unreachable
    };
    auto parseAt = [&](const std::string &t) -> uint64_t {
        if (!t.empty() && t[0] == '+')
            return cursor + parseU64(t.substr(1));
        return parseU64(t);
    };

    // Block state: non-null while inside a `site {` / `tab {` block.
    SiteSpec *block = nullptr;

    auto applySiteKey = [&](SiteSpec &spec,
                            const std::vector<std::string> &tok) {
        const std::string &key = tok[0];
        auto args = [&](size_t n) {
            if (tok.size() != n + 1)
                fail(format("'%s' takes %zu value(s), got %zu",
                            key.c_str(), n, tok.size() - 1));
        };
        if (key == "url") {
            args(1);
            spec.url = tok[1];
        } else if (key == "seed") {
            args(1);
            spec.seed = parseU64(tok[1]);
        } else if (key == "session") {
            args(1);
            spec.sessionMs = parseU64(tok[1]);
        } else if (key == "viewport") {
            args(2);
            spec.browser.viewportWidth = parseInt(tok[1]);
            spec.browser.viewportHeight = parseInt(tok[2]);
        } else if (key == "raster_threads") {
            args(1);
            spec.browser.rasterThreads = parseInt(tok[1]);
        } else if (key == "mobile") {
            args(1);
            spec.browser.mobile = parseBool(tok[1]);
        } else if (key == "cell_px") {
            args(1);
            spec.browser.cellPx = parseInt(tok[1]);
        } else if (key == "sections") {
            args(1);
            spec.page.sections = parseInt(tok[1]);
        } else if (key == "items_per_section") {
            args(1);
            spec.page.itemsPerSection = parseInt(tok[1]);
        } else if (key == "hidden_menus") {
            args(1);
            spec.page.hiddenMenus = parseInt(tok[1]);
        } else if (key == "menu_entries") {
            args(1);
            spec.page.menuEntries = parseInt(tok[1]);
        } else if (key == "fixed_header") {
            args(1);
            spec.page.fixedHeader = parseBool(tok[1]);
        } else if (key == "carousel") {
            args(1);
            spec.page.carousel = parseBool(tok[1]);
        } else if (key == "carousel_photos") {
            args(1);
            spec.page.carouselPhotos = parseInt(tok[1]);
        } else if (key == "spinner") {
            args(1);
            spec.page.spinner = parseBool(tok[1]);
        } else if (key == "ad_banner") {
            args(1);
            spec.page.adBanner = parseBool(tok[1]);
        } else if (key == "big_map_image") {
            args(1);
            spec.page.bigMapImage = parseBool(tok[1]);
        } else if (key == "news_pane") {
            args(1);
            spec.page.newsPane = parseBool(tok[1]);
        } else if (key == "search_box") {
            args(1);
            spec.page.searchBox = parseBool(tok[1]);
        } else if (key == "map_canvas") {
            args(1);
            spec.page.mapCanvas = parseBool(tok[1]);
        } else if (key == "map_tiles") {
            args(1);
            spec.page.mapTiles = parseInt(tok[1]);
        } else if (key == "words_per_paragraph") {
            args(1);
            spec.page.wordsPerParagraph = parseInt(tok[1]);
        } else if (key == "nesting_depth") {
            args(1);
            spec.page.nestingDepth = parseInt(tok[1]);
        } else if (key == "js_bytes") {
            args(1);
            spec.js.targetBytes = parseU64(tok[1]);
        } else if (key == "js_load_fraction") {
            args(1);
            spec.js.loadFraction = parseDouble(tok[1]);
        } else if (key == "js_handler_fraction") {
            args(1);
            spec.js.handlerFraction = parseDouble(tok[1]);
        } else if (key == "js_timers") {
            args(1);
            spec.js.timerCount = parseInt(tok[1]);
        } else if (key == "js_timer_ms") {
            args(1);
            spec.js.timerMs = parseU64(tok[1]);
        } else if (key == "js_extra_handlers") {
            args(1);
            spec.js.extraHandlers = parseInt(tok[1]);
        } else if (key == "css_bytes") {
            args(1);
            spec.css.targetBytes = parseU64(tok[1]);
        } else if (key == "css_used_fraction") {
            args(1);
            spec.css.usedFraction = parseDouble(tok[1]);
        } else if (key == "image_bytes") {
            args(1);
            spec.imageBytes = parseU64(tok[1]);
        } else if (key == "capture_values") {
            args(1);
            spec.captureValues = parseBool(tok[1]);
        } else {
            fail("unknown site key '" + key + "'");
        }
    };

    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
        ++lineno;
        std::vector<std::string> tok = tokenize(line);
        if (tok.empty())
            continue;

        if (block) {
            if (tok[0] == "}") {
                if (tok.size() != 1)
                    fail("'}' must stand alone");
                block = nullptr;
                continue;
            }
            applySiteKey(*block, tok);
            continue;
        }

        const std::string &verb = tok[0];

        if (verb == "scenario") {
            // The rest of the line, quotes stripped, is the name.
            const size_t open = line.find('"');
            const size_t close = line.rfind('"');
            if (open == std::string::npos || close <= open)
                fail("scenario name must be quoted: scenario \"Name\"");
            sc.name = line.substr(open + 1, close - open - 1);
            sc.site.name = sc.name;
            continue;
        }
        if (verb == "site" || verb == "tab") {
            if (tok.size() != 2 || tok[1] != "{")
                fail("expected '" + verb + " {'");
            if (verb == "site") {
                block = &sc.site;
            } else {
                sc.extraTabs.emplace_back();
                sc.extraTabs.back().name =
                    format("%s [tab %zu]", sc.name.c_str(),
                           sc.extraTabs.size());
                block = &sc.extraTabs.back();
            }
            continue;
        }
        if (verb == "session") {
            if (tok.size() != 2)
                fail("'session' takes one value");
            sc.site.sessionMs = parseU64(tok[1]);
            continue;
        }
        if (verb == "workers") {
            if (tok.size() != 2)
                fail("'workers' takes one value");
            sc.workers = parseInt(tok[1]);
            continue;
        }
        if (verb == "wait") {
            if (tok.size() != 2)
                fail("'wait' takes one value");
            cursor += parseU64(tok[1]);
            continue;
        }

        // ---- action verbs --------------------------------------------------
        int tab_index = 0;
        if (tok.size() > 1 && tok.back().rfind("tab=", 0) == 0) {
            tab_index = parseInt(tok.back().substr(4));
            if (tab_index < 0 ||
                static_cast<size_t>(tab_index) > sc.extraTabs.size())
                fail(format("tab=%d does not name a declared tab "
                            "(%zu declared; tab blocks must precede "
                            "their actions)",
                            tab_index, sc.extraTabs.size()));
            tok.pop_back();
        }
        auto argc = [&](size_t lo, size_t hi = 0) {
            const size_t n = tok.size() - 1;
            if (n < lo || n > (hi ? hi : lo))
                fail(format("'%s' takes %zu%s operand(s), got %zu",
                            verb.c_str(), lo, hi ? "+" : "", n));
        };
        auto addAction = [&](UserAction action, bool legacy) {
            cursor = action.atMs;
            if (legacy && tab_index == 0) {
                sc.site.actions.push_back(std::move(action));
            } else {
                action.tab = tab_index;
                sc.extraActions.push_back(std::move(action));
            }
        };

        if (verb == "scroll") {
            argc(2);
            UserAction a;
            a.kind = UserAction::Kind::Scroll;
            a.atMs = parseAt(tok[1]);
            a.scrollDy = parseInt(tok[2]);
            addAction(std::move(a), /*legacy=*/true);
        } else if (verb == "click" || verb == "key") {
            argc(2);
            UserAction a;
            a.kind = verb == "click" ? UserAction::Kind::Click
                                     : UserAction::Kind::Key;
            a.atMs = parseAt(tok[1]);
            a.targetId = tok[2];
            addAction(std::move(a), /*legacy=*/true);
        } else if (verb == "type") {
            argc(4);
            UserAction a;
            a.kind = UserAction::Kind::Type;
            a.atMs = parseAt(tok[1]);
            a.targetId = tok[2];
            a.count = parseInt(tok[3]);
            a.intervalMs = parseU64(tok[4]);
            if (a.count <= 0)
                fail("'type' needs a positive keystroke count");
            addAction(std::move(a), /*legacy=*/false);
        } else if (verb == "fetch") {
            argc(3);
            if (tab_index != 0)
                fail("'fetch' applies to the primary tab only");
            if (have_fetch)
                fail("only one 'fetch' per scenario (it is the "
                     "mid-session lazy script)");
            have_fetch = true;
            sc.site.lazyJsAtMs = parseAt(tok[1]);
            sc.site.lazyJsBytes = parseU64(tok[2]);
            sc.site.lazyJsLoadFraction = parseDouble(tok[3]);
            cursor = sc.site.lazyJsAtMs;
        } else if (verb == "partialnav") {
            argc(4, 6);
            UserAction a;
            a.kind = UserAction::Kind::PartialNav;
            a.atMs = parseAt(tok[1]);
            a.targetId = tok[2];
            a.fragSections = parseInt(tok[3]);
            a.fragItems = parseInt(tok[4]);
            if (tok.size() >= 6)
                a.bytes = parseU64(tok[5]);
            if (tok.size() == 7)
                a.loadFraction = parseDouble(tok[6]);
            if (a.fragSections <= 0 || a.fragItems <= 0)
                fail("'partialnav' needs positive section/item counts");
            addAction(std::move(a), /*legacy=*/false);
        } else if (verb == "raf") {
            argc(3);
            UserAction a;
            a.kind = UserAction::Kind::RafLoop;
            a.atMs = parseAt(tok[1]);
            a.durationMs = parseU64(tok[2]);
            a.fnName = tok[3];
            addAction(std::move(a), /*legacy=*/false);
        } else if (verb == "worker") {
            argc(3);
            UserAction a;
            a.kind = UserAction::Kind::WorkerTask;
            a.atMs = parseAt(tok[1]);
            a.workerIndex = parseInt(tok[2]);
            a.units = parseU64(tok[3]);
            if (tab_index != 0)
                fail("'worker' applies to the primary tab only");
            if (a.workerIndex < 0 || a.workerIndex >= sc.workers)
                fail(format("worker %d not declared (workers %d; the "
                            "'workers' line must precede worker "
                            "actions)",
                            a.workerIndex, sc.workers));
            addAction(std::move(a), /*legacy=*/false);
        } else {
            fail("unknown directive '" + verb + "'");
        }
    }

    if (block)
        fail("unterminated '{' block at end of file");
    if (sc.name.empty()) {
        sc.name = "unnamed scenario";
        if (sc.site.name.empty())
            sc.site.name = sc.name;
    }
    return sc;
}

Scenario
parseScenarioFile(const std::string &path)
{
    std::ifstream in(path);
    fatal_if(!in, "cannot open scenario file '", path, "'");
    std::ostringstream text;
    text << in.rdbuf();
    return parseScenarioText(text.str(), path);
}

namespace {

void
serializeSiteBlock(std::string &out, const char *head, const SiteSpec &s)
{
    out += head;
    out += " {\n";
    out += "  url " + s.url + "\n";
    out += format("  seed 0x%llx\n",
                  static_cast<unsigned long long>(s.seed));
    out += format("  session %llu\n",
                  static_cast<unsigned long long>(s.sessionMs));
    out += format("  viewport %d %d\n", s.browser.viewportWidth,
                  s.browser.viewportHeight);
    out += format("  raster_threads %d\n", s.browser.rasterThreads);
    out += "  mobile " + boolText(s.browser.mobile) + "\n";
    out += format("  cell_px %d\n", s.browser.cellPx);
    out += format("  sections %d\n", s.page.sections);
    out += format("  items_per_section %d\n", s.page.itemsPerSection);
    out += format("  hidden_menus %d\n", s.page.hiddenMenus);
    out += format("  menu_entries %d\n", s.page.menuEntries);
    out += "  fixed_header " + boolText(s.page.fixedHeader) + "\n";
    out += "  carousel " + boolText(s.page.carousel) + "\n";
    out += format("  carousel_photos %d\n", s.page.carouselPhotos);
    out += "  spinner " + boolText(s.page.spinner) + "\n";
    out += "  ad_banner " + boolText(s.page.adBanner) + "\n";
    out += "  big_map_image " + boolText(s.page.bigMapImage) + "\n";
    out += "  news_pane " + boolText(s.page.newsPane) + "\n";
    out += "  search_box " + boolText(s.page.searchBox) + "\n";
    out += "  map_canvas " + boolText(s.page.mapCanvas) + "\n";
    out += format("  map_tiles %d\n", s.page.mapTiles);
    out += format("  words_per_paragraph %d\n",
                  s.page.wordsPerParagraph);
    out += format("  nesting_depth %d\n", s.page.nestingDepth);
    out += format("  js_bytes %llu\n",
                  static_cast<unsigned long long>(s.js.targetBytes));
    out += "  js_load_fraction " + doubleText(s.js.loadFraction) + "\n";
    out += "  js_handler_fraction " + doubleText(s.js.handlerFraction) +
           "\n";
    out += format("  js_timers %d\n", s.js.timerCount);
    out += format("  js_timer_ms %llu\n",
                  static_cast<unsigned long long>(s.js.timerMs));
    out += format("  js_extra_handlers %d\n", s.js.extraHandlers);
    out += format("  css_bytes %llu\n",
                  static_cast<unsigned long long>(s.css.targetBytes));
    out += "  css_used_fraction " + doubleText(s.css.usedFraction) +
           "\n";
    out += format("  image_bytes %zu\n", s.imageBytes);
    out += "  capture_values " + boolText(s.captureValues) + "\n";
    out += "}\n";
}

void
serializeAction(std::string &out, const UserAction &a)
{
    const unsigned long long at = a.atMs;
    switch (a.kind) {
      case UserAction::Kind::Scroll:
        out += format("scroll %llu %d", at, a.scrollDy);
        break;
      case UserAction::Kind::Click:
        out += format("click %llu %s", at, a.targetId.c_str());
        break;
      case UserAction::Kind::Key:
        out += format("key %llu %s", at, a.targetId.c_str());
        break;
      case UserAction::Kind::Type:
        out += format("type %llu %s %d %llu", at, a.targetId.c_str(),
                      a.count,
                      static_cast<unsigned long long>(a.intervalMs));
        break;
      case UserAction::Kind::PartialNav:
        out += format("partialnav %llu %s %d %d", at,
                      a.targetId.c_str(), a.fragSections, a.fragItems);
        if (a.bytes) {
            out += format(" %llu ",
                          static_cast<unsigned long long>(a.bytes));
            out += doubleText(a.loadFraction);
        }
        break;
      case UserAction::Kind::RafLoop:
        out += format("raf %llu %llu %s", at,
                      static_cast<unsigned long long>(a.durationMs),
                      a.fnName.c_str());
        break;
      case UserAction::Kind::WorkerTask:
        out += format("worker %llu %d %llu", at, a.workerIndex,
                      static_cast<unsigned long long>(a.units));
        break;
      case UserAction::Kind::ScriptFetch:
        // The DSL's one lazy fetch is serialized from the site spec;
        // a resolved ScriptFetch action has no surface syntax.
        out += format("# scriptfetch %llu %s", at, a.url.c_str());
        break;
    }
    if (a.tab)
        out += format(" tab=%d", a.tab);
    out += "\n";
}

} // namespace

std::string
serializeScenario(const Scenario &sc)
{
    std::string out;
    out += "scenario \"" + sc.name + "\"\n";
    serializeSiteBlock(out, "site", sc.site);
    for (const auto &tab : sc.extraTabs)
        serializeSiteBlock(out, "tab", tab);
    if (sc.workers)
        out += format("workers %d\n", sc.workers);
    for (const auto &action : sc.site.actions)
        serializeAction(out, action);
    if (sc.site.lazyJsBytes) {
        out += format("fetch %llu %llu ",
                      static_cast<unsigned long long>(sc.site.lazyJsAtMs),
                      static_cast<unsigned long long>(
                          sc.site.lazyJsBytes));
        out += doubleText(sc.site.lazyJsLoadFraction) + "\n";
    }
    for (const auto &action : sc.extraActions)
        serializeAction(out, action);
    return out;
}

bool
isLoadOnly(const Scenario &sc)
{
    return sc.site.actions.empty() && sc.extraActions.empty() &&
           sc.site.lazyJsBytes == 0 && sc.workers == 0 &&
           sc.extraTabs.empty();
}

} // namespace scenario
} // namespace webslice
