/**
 * @file
 * The scenario model and its deterministic text format (.scn).
 *
 * A Scenario is everything needed to reproduce one recorded browsing
 * session: the primary tab's synthesized site (workloads::SiteSpec),
 * optional secondary tabs sharing the same browser thread set, a count
 * of dedicated workers, and the scripted interaction sequence. The
 * legacy verbs (scroll/click/key plus the single mid-session lazy
 * fetch) live inside the SiteSpec exactly where the hard-coded paper
 * benchmarks kept them, so a spec-factory benchmark and its .scn port
 * schedule the identical task sequence and therefore record the
 * identical trace. New verbs (typing bursts, SPA partial navigation,
 * raf loops, worker bursts, secondary-tab input) ride in extraActions,
 * scheduled after the legacy block in file order.
 *
 * The text format is line oriented:
 *
 *   # comment                       blank lines and #-comments ignored
 *   scenario "Name"                 display name (quoted, optional)
 *   site { <key> <value> ... }      primary tab site block (every key
 *                                   incl. a per-tab `session <ms>`)
 *   tab { ... }                     secondary tab (repeatable)
 *   session <ms>                    primary session length (sugar for
 *                                   the site block's `session` key)
 *   workers <n>                     dedicated workers on the primary tab
 *   wait <ms>                       advance the time cursor
 *   scroll <at> <dy>                compositor scroll
 *   click <at> <id>                 click on element id
 *   key <at> <id>                   one keystroke into element id
 *   type <at> <id> <count> <gap>    keystroke burst, <gap> ms apart
 *   fetch <at> <bytes> <fraction>   the mid-session lazy script (once)
 *   partialnav <at> <id> <sections> <items> [<jsbytes> [<fraction>]]
 *   raf <at> <duration> <fn>        requestAnimationFrame loop
 *   worker <at> <index> <units>     traced burst on worker <index>
 *
 * <at> is an absolute session ms, or +N relative to the running time
 * cursor (which `wait` advances and every action updates). Action
 * lines accept a trailing `tab=N` to address a secondary tab. Parse
 * errors are fatal with "<path>:<line>: ..." context, like every other
 * loader in this codebase.
 */

#ifndef WEBSLICE_SCENARIO_SCENARIO_HH
#define WEBSLICE_SCENARIO_SCENARIO_HH

#include <string>
#include <vector>

#include "browser/user_action.hh"
#include "workloads/sites.hh"

namespace webslice {
namespace scenario {

/** One reproducible browsing session: site(s) + interaction script. */
struct Scenario
{
    std::string name;

    /** Primary tab: site knobs, legacy actions, lazy fetch, session. */
    workloads::SiteSpec site;

    /** Secondary tabs sharing the primary tab's browser threads. */
    std::vector<workloads::SiteSpec> extraTabs;

    /** Dedicated workers created on the primary tab before the run. */
    int workers = 0;

    /**
     * Post-legacy actions (new verbs, secondary-tab input) in file
     * order; payload fields are resolved by the engine at run time.
     */
    std::vector<browser::UserAction> extraActions;
};

/** Parse a .scn file; fatal with path:line context on any error. */
Scenario parseScenarioFile(const std::string &path);

/** Parse .scn text; `path` is used for error context only. */
Scenario parseScenarioText(const std::string &text,
                           const std::string &path);

/**
 * Render a Scenario back into canonical .scn text. Deterministic and
 * parseable: parse(serialize(s)) reproduces s (times absolute, every
 * site knob explicit), which the round-trip tests assert per verb.
 */
std::string serializeScenario(const Scenario &scenario);

/**
 * True when the scenario schedules no interaction at all — no legacy
 * actions, no extra-verb actions, no lazy fetch, no workers, and no
 * secondary tabs — so analysis tools may window the recording at the
 * primary tab's loadCompleteIndex without dropping scripted post-load
 * work (the .meta `loadOnly` flag).
 */
bool isLoadOnly(const Scenario &scenario);

} // namespace scenario
} // namespace webslice

#endif // WEBSLICE_SCENARIO_SCENARIO_HH
