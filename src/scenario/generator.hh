/**
 * @file
 * Seeded synthetic-site scenario generator.
 *
 * Builds whole browsing sessions — site content knobs plus an
 * interaction script — from a (seed, knobs) pair. The same pair always
 * yields the same Scenario (and therefore, through the deterministic
 * engine, the same trace bytes), which is what makes sweep families
 * reproducible: `webslice-scenario sweep --seeds 1..16 --knob
 * js_hotness=lo,hi` re-emits identical recordings on every machine.
 *
 * Knobs (each lo/mid/hi unless noted):
 *   dom_depth   sections, cards per section, nested container depth
 *   css_volume  stylesheet bytes (selector complexity rides along)
 *   js_hotness  script bytes, load/dead-code split, listener count,
 *               one-shot timer frequency
 *   images      image count rides dom_depth; this sets bytes per image
 *   workers     numeric: dedicated workers fed traced bursts (0 = none)
 */

#ifndef WEBSLICE_SCENARIO_GENERATOR_HH
#define WEBSLICE_SCENARIO_GENERATOR_HH

#include <string>
#include <vector>

#include "scenario/scenario.hh"

namespace webslice {
namespace scenario {

/** Three-point setting for one generator dimension. */
enum class Level { Lo, Mid, Hi };

/** Level from its CLI spelling; fatal on anything but lo/mid/hi. */
Level parseLevel(const std::string &text);
const char *levelName(Level level);

/** The generator's tuning surface. */
struct Knobs
{
    Level domDepth = Level::Mid;
    Level cssVolume = Level::Mid;
    Level jsHotness = Level::Mid;
    Level images = Level::Mid;
    int workers = 0;
};

/**
 * Apply one `--knob key=value` setting; fatal (listing the valid keys)
 * on an unknown key or a malformed value.
 */
void applyKnob(Knobs &knobs, const std::string &key,
               const std::string &value);

/** Filename-safe family label, e.g. "dom-mid_css-mid_js-hi_img-mid". */
std::string knobsLabel(const Knobs &knobs);

/** The valid knob keys in CLI order (for describe / error messages). */
const std::vector<std::string> &knobKeys();

/** One line per knob: key, levels, and what it controls. */
std::string describeKnobs();

/** Deterministically synthesize one scenario from (seed, knobs). */
Scenario generateScenario(uint64_t seed, const Knobs &knobs);

} // namespace scenario
} // namespace webslice

#endif // WEBSLICE_SCENARIO_GENERATOR_HH
