/**
 * @file
 * The one scenario execution engine.
 *
 * Every recorded session — hard-coded paper benchmark, checked-in .scn
 * file, or generated sweep member — runs through runScenario, which
 * compiles the scenario into browser::Tab scheduling calls on a fresh
 * sim::Machine. Because the machine assigns trace PCs in first-use
 * execution order, a spec-factory benchmark and its .scn port produce
 * bit-identical traces (asserted by tests/test_scenario.cc and cmp'd in
 * CI).
 */

#ifndef WEBSLICE_SCENARIO_RUN_HH
#define WEBSLICE_SCENARIO_RUN_HH

#include "scenario/scenario.hh"
#include "workloads/sites.hh"

namespace webslice {
namespace scenario {

/** Wrap a bare site spec into a single-tab, no-worker scenario. */
Scenario scenarioFromSpec(const workloads::SiteSpec &spec);

/** Record one scenario end to end; fatal if any tab never loads. */
workloads::RunResult runScenario(const Scenario &scenario,
                                 browser::JsEngineConfig js_config = {});

/**
 * Record one bare spec (= runScenario(scenarioFromSpec(spec))). This is
 * the drop-in replacement for the old workloads::runSite and schedules
 * the identical task sequence.
 */
workloads::RunResult runSite(const workloads::SiteSpec &spec,
                             browser::JsEngineConfig js_config = {});

} // namespace scenario
} // namespace webslice

#endif // WEBSLICE_SCENARIO_RUN_HH
