/**
 * @file
 * Concrete-value sidecar for a recorded trace.
 *
 * The trace records carry dependence structure (registers, addresses,
 * sizes) but not the concrete values that flowed through them. The value
 * log is the optional companion the verification layer compares against:
 * one 64-bit value per record (the value produced, stored, or observed by
 * that instruction) plus raw byte blobs for records whose effect is a
 * memory range — syscall read/write pseudo-records and the
 * criterion-range snapshot taken at each Marker.
 *
 * webslice-record writes it as <prefix>.val next to the trace;
 * webslice-check loads it to verify that replaying only the in-slice
 * instructions reproduces the criterion bytes bit-identically.
 */

#ifndef WEBSLICE_TRACE_VALUE_LOG_HH
#define WEBSLICE_TRACE_VALUE_LOG_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace webslice {
namespace trace {

/** Per-record concrete values plus per-record effect-range byte blobs. */
struct ValueLog
{
    /** Parallel to the record array; 0 for records with no value. */
    std::vector<uint64_t> values;

    /** Record index -> raw bytes (effect ranges, criterion snapshots). */
    std::unordered_map<uint64_t, std::vector<uint8_t>> blobs;

    uint64_t
    valueAt(size_t index) const
    {
        return index < values.size() ? values[index] : 0;
    }

    /** Blob attached to a record, or nullptr. */
    const std::vector<uint8_t> *
    blobAt(size_t index) const
    {
        auto it = blobs.find(index);
        return it == blobs.end() ? nullptr : &it->second;
    }

    /** Write the binary sidecar; fatal on I/O failure. */
    void save(const std::string &path) const;

    /**
     * Load a sidecar written by save(); replaces contents. Truncation,
     * a bad header, or trailing garbage fail loudly — a partial value
     * log would make the soundness checker's byte-compares vacuous.
     */
    void load(const std::string &path);
};

} // namespace trace
} // namespace webslice

#endif // WEBSLICE_TRACE_VALUE_LOG_HH
