/**
 * @file
 * Concrete-value sidecar for a recorded trace.
 *
 * The trace records carry dependence structure (registers, addresses,
 * sizes) but not the concrete values that flowed through them. The value
 * log is the optional companion the verification layer compares against:
 * one 64-bit value per record (the value produced, stored, or observed by
 * that instruction) plus raw byte blobs for records whose effect is a
 * memory range — syscall read/write pseudo-records and the
 * criterion-range snapshot taken at each Marker.
 *
 * Two on-disk formats exist. v1 ("WEBVAL1") stores everything verbatim:
 * the full value array and every blob's raw bytes. v2 ("WEBVAL2") is the
 * columnar companion of the v2 trace: values are delta+varint coded and
 * LZ-compressed, syscall blobs are pooled and compressed, and Marker
 * snapshot blobs are not stored at all — the file instead carries each
 * marker's criterion ranges plus per-trace-block checkpoints of the
 * union-criterion memory image, and load() reconstructs every snapshot
 * by bounded re-execution (replaying Store values and SyscallWrite
 * blobs) from the nearest checkpoint. Reconstruction is verified at
 * save time against the live blobs; a marker whose replay does not
 * match falls back to raw storage, so loads are bit-identical to v1 by
 * construction.
 *
 * webslice-record writes it as <prefix>.val next to the trace;
 * webslice-check loads it to verify that replaying only the in-slice
 * instructions reproduces the criterion bytes bit-identically.
 */

#ifndef WEBSLICE_TRACE_VALUE_LOG_HH
#define WEBSLICE_TRACE_VALUE_LOG_HH

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "trace/record.hh"

namespace webslice {
namespace trace {

class CriteriaSet;

/** The two on-disk value-log formats. */
enum class ValueLogFormat : uint8_t
{
    V1 = 1, ///< Raw value array + raw blobs.
    V2 = 2, ///< Columnar values, pooled blobs, checkpointed snapshots.
};

/**
 * Identify a value-log file's format from its magic; fatal (with the
 * path) when the file is unreadable or carries neither magic.
 */
ValueLogFormat sniffValueLogFormat(const std::string &path);

/** Per-record concrete values plus per-record effect-range byte blobs. */
struct ValueLog
{
    /** Parallel to the record array; 0 for records with no value. */
    std::vector<uint64_t> values;

    /** Record index -> raw bytes (effect ranges, criterion snapshots). */
    std::unordered_map<uint64_t, std::vector<uint8_t>> blobs;

    uint64_t
    valueAt(size_t index) const
    {
        return index < values.size() ? values[index] : 0;
    }

    /** Blob attached to a record, or nullptr. */
    const std::vector<uint8_t> *
    blobAt(size_t index) const
    {
        auto it = blobs.find(index);
        return it == blobs.end() ? nullptr : &it->second;
    }

    /** Write the v1 binary sidecar; fatal on I/O failure. */
    void save(const std::string &path) const;

    /**
     * Write the sidecar in `format`. v2 needs the record array (to
     * place checkpoints and classify blob-carrying records) and the
     * criteria set (each Marker's merged ranges define its snapshot
     * layout); both may be empty for v1.
     */
    void save(const std::string &path, ValueLogFormat format,
              std::span<const Record> records,
              const CriteriaSet &criteria) const;

    /**
     * Load a v1 sidecar; replaces contents. Truncation, a bad header,
     * or trailing garbage fail loudly — a partial value log would make
     * the soundness checker's byte-compares vacuous. Fatal on a v2
     * file: snapshot reconstruction needs the record array, so callers
     * with records at hand must use the overload below.
     */
    void load(const std::string &path);

    /**
     * Load a sidecar of either format, sniffing the magic. For v2 the
     * Marker snapshot blobs are reconstructed by replaying `records`
     * (Store values, SyscallWrite blobs) from the nearest per-block
     * checkpoint; the result is bit-identical to what save() was given.
     */
    void load(const std::string &path, std::span<const Record> records);
};

} // namespace trace
} // namespace webslice

#endif // WEBSLICE_TRACE_VALUE_LOG_HH
