/**
 * @file
 * Columnar compressed trace format (v2).
 *
 * The v1 trace is a flat array of fixed 32-byte Records: trivially
 * seekable, but at production retention scale the dominant storage and
 * I/O cost — and highly redundant (`cfg.transitions_filtered` shows
 * ~40% of records are repetitive transitions). v2 stores the same
 * records in WEBTIDX1-aligned blocks of kTraceIndexBlockRecords, each
 * block split into per-field columns:
 *
 *   - pc / addr / aux / tid: delta + zigzag varint. Deltas run across
 *     block boundaries; each block-index entry carries the encoder's
 *     live state (the previous value of every delta column) as a
 *     checkpoint, so a reader can seek to any block and decode only it
 *     — no scanning from the ends.
 *   - kind + flags: packed into one byte per record.
 *   - rr0/rr1/rr2/rw: varint of (reg + 1), 0 for kNoReg.
 *
 * The concatenated columns are then block-compressed with the in-repo
 * LZ codec (support/lz.hh). The block index (offsets, sizes, per-block
 * executed/pseudo counts, checkpoints) lives at the end of the file and
 * is located via the header, subsuming the v1 WEBTIDX1 footer: the
 * epoch planner's equal-work split and the ranged readers' seeks both
 * come straight out of it.
 *
 * Decoded blocks are cached in a process-wide, byte-budgeted LRU
 * (TraceDecodeCache) shared by ranged reads, the streaming readers, and
 * the service (which folds the budget into --cache-bytes), so one
 * epoch-parallel backward pass decodes each block once, not per-epoch.
 *
 * File layout:
 *   V2Header  { "WEBTRC2\0", recordCount, indexOffset }
 *   block 0 .. block N-1   (LZ-compressed column payloads)
 *   V2IndexHeader { "WEBTIDX2", blockRecords, blockCount }
 *   V2BlockEntry[blockCount]
 */

#ifndef WEBSLICE_TRACE_COLUMNAR_HH
#define WEBSLICE_TRACE_COLUMNAR_HH

#include <cstdint>
#include <cstdio>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "trace/record.hh"

namespace webslice {
namespace trace {

/** v2 on-disk header. indexOffset is patched on close. */
struct V2Header
{
    char magic[8] = {'W', 'E', 'B', 'T', 'R', 'C', '2', '\0'};
    uint64_t recordCount = 0;
    uint64_t indexOffset = 0;
};

static_assert(sizeof(V2Header) == 24, "v2 header layout must stay fixed");

/**
 * Delta-decoder live state at a block's first record: the previous
 * value of every delta-coded column. Folding these checkpoints into
 * the block index is what makes every block independently decodable.
 */
struct V2Checkpoint
{
    uint64_t prevAddr = 0;
    uint32_t prevPc = 0;
    uint32_t prevAux = 0;
    uint16_t prevTid = 0;
    uint8_t reserved[6] = {};
};

static_assert(sizeof(V2Checkpoint) == 24,
              "v2 checkpoint layout must stay fixed");

/** One block's index entry. */
struct V2BlockEntry
{
    uint64_t fileOffset = 0;   ///< Offset of the compressed payload.
    uint32_t encodedBytes = 0; ///< Compressed payload size.
    uint32_t rawBytes = 0;     ///< Column payload size before LZ.
    uint32_t records = 0;      ///< Records in this block.
    uint32_t instructions = 0; ///< Executed (non-pseudo) records.
    uint32_t pseudoRecords = 0;
    uint32_t reserved = 0;
    V2Checkpoint checkpoint; ///< Decoder state at the block's start.
};

static_assert(sizeof(V2BlockEntry) == 56,
              "v2 block entry layout must stay fixed");

/** On-disk header of the trailing block index. */
struct V2IndexHeader
{
    char magic[8] = {'W', 'E', 'B', 'T', 'I', 'D', 'X', '2'};
    uint64_t blockRecords = 0;
    uint64_t blockCount = 0;
};

static_assert(sizeof(V2IndexHeader) == 24,
              "v2 index header layout must stay fixed");

/**
 * Stable identity of a trace file on disk (device/inode/size/mtime
 * folded; falls back to path+size). Keys the decode cache and the
 * bytes-on-disk dedup.
 */
uint64_t traceFileIdentity(const std::string &path, uint64_t file_bytes);

/**
 * Count `bytes` into the `trace.bytes_on_disk` counter once per
 * distinct file identity: the counter totals the on-disk footprint of
 * the traces the process touched, not bytes-per-open.
 */
void noteTraceBytesOnDisk(uint64_t identity, uint64_t bytes);

// ---- varint / zigzag primitives (shared with the value-log v2) ---------

/** Append an unsigned LEB128 varint. */
void putVarint(uint64_t v, std::vector<uint8_t> &out);

/** Zigzag-fold a signed delta into a small unsigned. */
inline uint64_t
zigzag(int64_t v)
{
    return (static_cast<uint64_t>(v) << 1) ^
           static_cast<uint64_t>(v >> 63);
}

inline int64_t
unzigzag(uint64_t v)
{
    return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

/**
 * Read one varint from [p, end); false on truncation or a value that
 * does not fit 64 bits.
 */
bool getVarint(const uint8_t *&p, const uint8_t *end, uint64_t &v);

// ---- block codec -------------------------------------------------------

/**
 * Column-encode and LZ-compress `records`, appending the compressed
 * payload to `out`. `state` carries the delta columns' running values
 * across consecutive blocks: its value on entry is the block's
 * checkpoint, and it is advanced past the block's last record.
 * @returns the raw (pre-LZ) payload size for the index entry.
 */
uint32_t encodeV2Block(const Record *records, size_t count,
                       V2Checkpoint &state, std::vector<uint8_t> &out);

/**
 * Decode one compressed block payload. Fatal (with `context` naming
 * the file and block) on any malformation: LZ stream corruption,
 * column overrun or underrun, or a record-count mismatch.
 */
void decodeV2Block(const uint8_t *payload, size_t encoded_bytes,
                   size_t raw_bytes, size_t expect_records,
                   const V2Checkpoint &checkpoint,
                   std::vector<Record> &out, const std::string &context);

// ---- v2 file access ----------------------------------------------------

/** Parsed, validated v2 index. */
struct V2Index
{
    uint64_t recordCount = 0;
    uint64_t blockRecords = 0;
    std::vector<V2BlockEntry> blocks;
};

/**
 * An open v2 trace file: header + index parsed and validated up front,
 * per-block decode on demand. Block reads use pread, so concurrent
 * decodeBlock calls from the epoch slicer's worker threads are safe on
 * one shared instance.
 */
class V2TraceFile
{
  public:
    explicit V2TraceFile(const std::string &path);
    ~V2TraceFile();

    V2TraceFile(const V2TraceFile &) = delete;
    V2TraceFile &operator=(const V2TraceFile &) = delete;

    const std::string &path() const { return path_; }
    uint64_t count() const { return index_.recordCount; }
    const V2Index &index() const { return index_; }

    /** Block containing record `i`. */
    size_t blockOf(uint64_t i) const
    {
        return static_cast<size_t>(i / index_.blockRecords);
    }

    /**
     * Decode block `b` into `out` (replacing its contents). Reads and
     * validates the compressed payload; fatal with file + block + byte
     * offset context on corruption.
     */
    void decodeBlock(size_t b, std::vector<Record> &out) const;

    /** Identity for the decode cache: device/inode/size/mtime folded. */
    uint64_t cacheKey() const { return cacheKey_; }

  private:
    std::string path_;
    int fd_ = -1;
    std::FILE *file_ = nullptr; ///< Fallback when pread is unavailable.
    mutable std::mutex fileMutex_; ///< Guards file_ seeks (fallback only).
    V2Index index_;
    uint64_t cacheKey_ = 0;
};

/**
 * Process-wide LRU cache of decoded v2 blocks, keyed by file identity
 * and block number and bounded by a byte budget over the *decoded*
 * record bytes. The service shares its --cache-bytes budget with this
 * cache; standalone CLIs run with the default budget.
 */
class TraceDecodeCache
{
  public:
    static TraceDecodeCache &global();

    /** Cap on decoded bytes held; evicts immediately if now over. */
    void setBudget(uint64_t bytes);

    uint64_t budget() const;

    /**
     * The decoded records of `file`'s block `b`, from cache or by
     * decoding now. The returned block stays valid for the holder even
     * after eviction.
     */
    std::shared_ptr<const std::vector<Record>>
    acquire(const V2TraceFile &file, size_t b);

    /** Drop all cached blocks (tests / budget reconfiguration). */
    void clear();

    struct Stats
    {
        uint64_t entries = 0;
        uint64_t bytes = 0;
        uint64_t hits = 0;
        uint64_t misses = 0;
        uint64_t evictions = 0;
    };

    Stats stats() const;

  private:
    struct Key
    {
        uint64_t file;
        uint64_t block;

        bool operator==(const Key &) const = default;
    };

    struct KeyHash
    {
        size_t
        operator()(const Key &k) const
        {
            return static_cast<size_t>(k.file * 1099511628211ull ^
                                       (k.block + 0x9e3779b97f4a7c15ull));
        }
    };

    struct CacheEntry
    {
        std::shared_ptr<const std::vector<Record>> block;
        std::list<Key>::iterator lruIt;
        uint64_t bytes = 0;
    };

    void evictLocked();

    mutable std::mutex mutex_;
    std::unordered_map<Key, CacheEntry, KeyHash> entries_;
    std::list<Key> lru_; ///< Front = most recently used.
    uint64_t bytes_ = 0;
    uint64_t budget_ = 512ull << 20;
    Stats counters_;
};

// ---- v2 writer backend -------------------------------------------------

/**
 * Streaming v2 encoder used by TraceWriter: buffers one block of
 * records, encodes and writes it when full, and writes the index +
 * patches the header on finish(). File handle ownership stays with the
 * caller (TraceWriter owns open/close/rename so the atomic-rename path
 * is shared between formats).
 */
class V2WriterBackend
{
  public:
    V2WriterBackend(std::FILE *file, std::string path);

    /** Buffer one record; encodes and writes a block when full. */
    void append(const Record &rec);

    /** Flush the final partial block, write the index, patch header. */
    void finish();

  private:
    void flushBlock();

    std::FILE *file_;
    std::string path_;
    std::vector<Record> block_;
    std::vector<uint8_t> encoded_;
    V2Checkpoint state_;
    V2Index index_;
    uint64_t written_ = 0; ///< Records written to disk so far.
};

} // namespace trace
} // namespace webslice

#endif // WEBSLICE_TRACE_COLUMNAR_HH
