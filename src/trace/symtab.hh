/**
 * @file
 * Symbol table: maps function entry pcs to qualified function names.
 *
 * The paper categorizes unnecessary computations by looking up each
 * instruction's enclosing function in the binary's symbol table and using
 * the function's C++ namespace as the category key; this is the equivalent
 * structure for our traces. It also records which pcs belong to which
 * function so that per-function/per-namespace attribution does not depend
 * on call-stack reconstruction alone.
 */

#ifndef WEBSLICE_TRACE_SYMTAB_HH
#define WEBSLICE_TRACE_SYMTAB_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "trace/record.hh"

namespace webslice {
namespace trace {

/** Identifier of a registered function. */
using FuncId = uint32_t;
constexpr FuncId kNoFunc = 0xFFFFFFFF;

/** One function's symbol information. */
struct Symbol
{
    FuncId id = kNoFunc;
    Pc entryPc = kNoPc;
    std::string name; ///< Qualified name, e.g. "v8::Parser::parseProgram".
};

/**
 * Bidirectional mapping between functions, entry pcs, and names, with
 * save/load to a simple text sidecar file.
 */
class SymbolTable
{
  public:
    /** Register a function; returns its id. Entry pcs must be unique. */
    FuncId addFunction(Pc entry_pc, std::string name);

    /** Look up a function by entry pc; kNoFunc when unknown. */
    FuncId functionAtEntry(Pc entry_pc) const;

    /** Record that pc belongs to func (first owner wins). */
    void assignPc(Pc pc, FuncId func);

    /** Owning function of a pc; kNoFunc when unassigned. */
    FuncId functionOfPc(Pc pc) const;

    /** Symbol for a function id; panics on bad id. */
    const Symbol &symbol(FuncId id) const;

    size_t functionCount() const { return symbols_.size(); }

    const std::vector<Symbol> &symbols() const { return symbols_; }

    /** Write the table (functions + pc ownership) to a text file. */
    void save(const std::string &path) const;

    /** Read a table previously written by save(); replaces contents. */
    void load(const std::string &path);

  private:
    std::vector<Symbol> symbols_;
    std::unordered_map<Pc, FuncId> byEntry_;
    std::unordered_map<Pc, FuncId> pcOwner_;
};

} // namespace trace
} // namespace webslice

#endif // WEBSLICE_TRACE_SYMTAB_HH
