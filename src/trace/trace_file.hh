/**
 * @file
 * Binary trace file I/O.
 *
 * A trace file is a small header followed by densely packed 32-byte
 * Records. Four access paths are provided:
 *  - TraceWriter: append records while the traced program runs;
 *  - loadTrace(): read an entire trace into memory (the common case for
 *    our benchmark-sized traces);
 *  - MappedTrace: zero-copy mmap view of a whole trace — the records are
 *    paged in on demand and never copied, so loadTrace-sized traces can
 *    be profiled without doubling their footprint;
 *  - ForwardTraceReader / ReverseTraceReader: stream records in fixed
 *    size blocks (front-to-back / back-to-front) so the profiler passes
 *    can run in O(live set) memory on traces too large to hold in RAM.
 *    Both overlap disk latency with analysis: a background prefetch
 *    thread reads the next block into a second buffer while the caller
 *    consumes the current one.
 *
 * Two on-disk formats share these access paths. v1 ("WEBTRC1") is the
 * flat 32-byte record array with an optional WEBTIDX1 block-index
 * footer. v2 ("WEBTRC2", trace/columnar.hh) stores the same records as
 * delta+varint column blocks, LZ-compressed, with per-block decoder
 * checkpoints folded into a mandatory block index so ranged and
 * reverse readers seek to any block and decode only it. Every reader
 * here sniffs the magic and decodes transparently; TraceWriter picks
 * the format at construction (v1 stays the default).
 */

#ifndef WEBSLICE_TRACE_TRACE_FILE_HH
#define WEBSLICE_TRACE_TRACE_FILE_HH

#include <condition_variable>
#include <cstdio>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "trace/record.hh"

namespace webslice {
namespace trace {

class V2TraceFile;
class V2WriterBackend;

/** The two on-disk trace formats. */
enum class TraceFormat : uint8_t
{
    V1 = 1, ///< Flat record array (+ optional WEBTIDX1 footer).
    V2 = 2, ///< Columnar compressed blocks with checkpointed index.
};

/**
 * Identify a trace file's format from its magic; fatal (with the path)
 * when the file is unreadable or carries neither trace magic.
 */
TraceFormat sniffTraceFormat(const std::string &path);

/** On-disk header preceding the record array. */
struct TraceHeader
{
    char magic[8] = {'W', 'E', 'B', 'T', 'R', 'C', '1', '\0'};
    uint64_t recordCount = 0;
};

static_assert(sizeof(TraceHeader) == 16, "header layout must stay fixed");

/** Records covered by one block-index entry. */
constexpr size_t kTraceIndexBlockRecords = 1 << 16;

/**
 * Per-block work counts over a trace, written as an optional magic-gated
 * footer after the record array (TraceWriter with block_index enabled).
 * The epoch-parallel slicer's planner uses the executed-instruction
 * counts to split the trace into equal-*work* epochs without scanning
 * the records, and the segmented readers use the fixed block geometry to
 * seek straight to an epoch's first record. Files without a footer load
 * exactly as before; files with trailing bytes that are not a valid
 * footer still fail loudly.
 */
struct TraceBlockIndex
{
    /** Records per block (kTraceIndexBlockRecords when written by us);
     *  0 when the trace file carries no index. */
    uint64_t blockRecords = 0;

    /** Executed (non-pseudo) records per block; last block may be short. */
    std::vector<uint32_t> instructions;

    /** Pseudo-records (syscall effects) per block. */
    std::vector<uint32_t> pseudoRecords;

    bool present() const { return blockRecords != 0; }
    size_t blockCount() const { return instructions.size(); }
};

/** Buffered appender of trace records to a file. */
class TraceWriter
{
  public:
    /**
     * @param block_index also accumulate and write the per-block work
     *                    index as a footer on close() (v1 only; the v2
     *                    index is structural and always written)
     * @param format      on-disk format; v1 stays the default so every
     *                    existing consumer keeps reading its traces
     * @param atomic      write to <path>.tmp and fsync + rename into
     *                    place on close(), so a crash mid-record can
     *                    never leave a truncated file under the final
     *                    name that later passes loading
     */
    explicit TraceWriter(const std::string &path, bool block_index = false,
                         TraceFormat format = TraceFormat::V1,
                         bool atomic = false);
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /** Append one record. */
    void append(const Record &rec);

    /** Records appended so far. */
    uint64_t count() const { return count_; }

    /** Flush buffers and patch the header; called by the destructor too. */
    void close();

  private:
    void flush();

    /** Flush + (when atomic) fsync, close, and rename into place. */
    void finishFile();

    std::string path_;      ///< File being written (temp when atomic).
    std::string finalPath_; ///< Rename target; equals path_ otherwise.
    std::FILE *file_ = nullptr;
    std::vector<Record> buffer_;
    uint64_t count_ = 0;
    bool writeIndex_ = false;
    bool atomic_ = false;
    TraceBlockIndex index_;
    std::unique_ptr<V2WriterBackend> v2_;
};

/** Read a whole trace file into memory. */
std::vector<Record> loadTrace(const std::string &path);

/** Read records [first, first + count) of a trace file. */
std::vector<Record> loadTraceRange(const std::string &path, uint64_t first,
                                   uint64_t count);

/**
 * Read a trace file's block-index footer; the result's present() is
 * false when the file carries none. Corrupt footers fail loudly.
 */
TraceBlockIndex loadTraceBlockIndex(const std::string &path);

/**
 * Zero-copy view of a whole trace file via mmap. When mmap is
 * unavailable (or fails) the file is read into an owned buffer instead,
 * so records() is always valid; mapped() reports which path was taken.
 */
class MappedTrace
{
  public:
    explicit MappedTrace(const std::string &path);
    ~MappedTrace();

    MappedTrace(const MappedTrace &) = delete;
    MappedTrace &operator=(const MappedTrace &) = delete;

    /** Total records in the trace. */
    uint64_t count() const { return count_; }

    /** The record array (zero-copy when mapped). */
    std::span<const Record> records() const
    {
        return {records_, static_cast<size_t>(count_)};
    }

    const Record &operator[](size_t i) const { return records_[i]; }

    /** True when the view is an actual mmap, not a fallback copy. */
    bool mapped() const { return map_ != nullptr; }

    /** The file's block index; present() is false when it has none. */
    const TraceBlockIndex &blockIndex() const { return index_; }

  private:
    void *map_ = nullptr;
    size_t mapBytes_ = 0;
    const Record *records_ = nullptr;
    uint64_t count_ = 0;
    std::vector<Record> fallback_;
    TraceBlockIndex index_;
};

/** Write a whole in-memory trace to a file. */
void saveTrace(const std::string &path, const std::vector<Record> &records,
               TraceFormat format = TraceFormat::V1);

/**
 * Streams a trace file's records first to last in blocks, for forward
 * passes over traces too large to hold in RAM. With prefetch enabled
 * (the default) a background thread double-buffers the reads so disk
 * latency overlaps the caller's analysis.
 */
class ForwardTraceReader
{
  public:
    explicit ForwardTraceReader(const std::string &path,
                                size_t block_records = 1 << 16,
                                bool prefetch = true);
    ~ForwardTraceReader();

    ForwardTraceReader(const ForwardTraceReader &) = delete;
    ForwardTraceReader &operator=(const ForwardTraceReader &) = delete;

    uint64_t count() const { return count_; }

    /** Yield the next record; false at end of trace. */
    bool next(Record &out);

  private:
    void fillBlockSync();
    void takePrefetched();
    void ioLoop();

    /** v2: copy the next in-order chunk (one file block) into `buf`,
     *  given `remaining` records not yet fetched; returns the chunk. */
    size_t fillForwardV2(std::vector<Record> &buf, uint64_t remaining);

    std::FILE *file_ = nullptr;
    std::unique_ptr<V2TraceFile> v2_;
    size_t blockRecords_;
    uint64_t count_ = 0;
    uint64_t consumed_ = 0;
    std::vector<Record> block_;
    size_t blockPos_ = 0;

    // Prefetch machinery: the IO thread owns file_ after construction and
    // hands filled blocks over through ready_.
    bool prefetch_ = false;
    std::thread io_;
    std::mutex mutex_;
    std::condition_variable cv_;
    std::vector<Record> ready_;
    bool readyValid_ = false;
    bool stop_ = false;
    uint64_t ioRemaining_ = 0;

    // Prefetch effectiveness; published to the metric registry by the
    // destructor (hit = the next block was already waiting).
    uint64_t prefetchHits_ = 0;
    uint64_t prefetchMisses_ = 0;
    uint64_t syncReads_ = 0;
};

/**
 * Streams a trace file's records from last to first, reading the file in
 * blocks so peak memory stays bounded by the block size. With prefetch
 * enabled (the default) a background thread reads the preceding block
 * while the caller drains the current one — the backward slicing pass
 * never waits for a seek.
 */
class ReverseTraceReader
{
  public:
    explicit ReverseTraceReader(const std::string &path,
                                size_t block_records = 1 << 16,
                                bool prefetch = true);

    /**
     * Segmented variant: stream only records [first, last) of the file,
     * still last to first. The epoch-parallel slicer opens one such
     * reader per epoch, so the per-epoch transcodes stream their
     * segments concurrently without materializing the whole trace.
     */
    ReverseTraceReader(const std::string &path, uint64_t first,
                       uint64_t last, size_t block_records = 1 << 16,
                       bool prefetch = true);
    ~ReverseTraceReader();

    ReverseTraceReader(const ReverseTraceReader &) = delete;
    ReverseTraceReader &operator=(const ReverseTraceReader &) = delete;

    /** Total records in the file. */
    uint64_t count() const { return count_; }

    /** Records not yet yielded. */
    uint64_t remaining() const { return remaining_; }

    /**
     * Yield the next record, moving backwards through the trace.
     * @retval false when the beginning of the trace has been passed.
     */
    bool next(Record &out);

  private:
    void loadPrecedingBlock();
    void takePrefetched();
    void ioLoop();

    /** v2: copy the preceding chunk (the in-range tail of one file
     *  block) into `buf`, given `remaining` unfetched records below
     *  rangeFirst_ + remaining; returns the chunk size. */
    size_t fillReverseV2(std::vector<Record> &buf, uint64_t remaining);

    std::FILE *file_ = nullptr;
    std::unique_ptr<V2TraceFile> v2_;
    size_t blockRecords_;
    uint64_t count_ = 0;
    uint64_t rangeFirst_ = 0; ///< First record index of the ranged view.
    uint64_t remaining_ = 0;
    std::vector<Record> block_;
    size_t blockPos_ = 0; ///< Records still unread within block_.

    // Prefetch machinery (see ForwardTraceReader).
    bool prefetch_ = false;
    std::thread io_;
    std::mutex mutex_;
    std::condition_variable cv_;
    std::vector<Record> ready_;
    bool readyValid_ = false;
    bool stop_ = false;
    uint64_t ioRemaining_ = 0; ///< Records the IO thread still has to read.

    // Prefetch effectiveness (see ForwardTraceReader).
    uint64_t prefetchHits_ = 0;
    uint64_t prefetchMisses_ = 0;
    uint64_t syncReads_ = 0;
};

} // namespace trace
} // namespace webslice

#endif // WEBSLICE_TRACE_TRACE_FILE_HH
