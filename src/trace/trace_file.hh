/**
 * @file
 * Binary trace file I/O.
 *
 * A trace file is a small header followed by densely packed 32-byte
 * Records. Three access paths are provided:
 *  - TraceWriter: append records while the traced program runs;
 *  - loadTrace(): read an entire trace into memory (the common case for
 *    our benchmark-sized traces);
 *  - ReverseTraceReader: stream records from the end of the file towards
 *    the beginning in fixed-size blocks, so the backward slicing pass can
 *    run in O(live set) memory on traces too large to hold in RAM.
 */

#ifndef WEBSLICE_TRACE_TRACE_FILE_HH
#define WEBSLICE_TRACE_TRACE_FILE_HH

#include <cstdio>
#include <string>
#include <vector>

#include "trace/record.hh"

namespace webslice {
namespace trace {

/** On-disk header preceding the record array. */
struct TraceHeader
{
    char magic[8] = {'W', 'E', 'B', 'T', 'R', 'C', '1', '\0'};
    uint64_t recordCount = 0;
};

static_assert(sizeof(TraceHeader) == 16, "header layout must stay fixed");

/** Buffered appender of trace records to a file. */
class TraceWriter
{
  public:
    explicit TraceWriter(const std::string &path);
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /** Append one record. */
    void append(const Record &rec);

    /** Records appended so far. */
    uint64_t count() const { return count_; }

    /** Flush buffers and patch the header; called by the destructor too. */
    void close();

  private:
    void flush();

    std::string path_;
    std::FILE *file_ = nullptr;
    std::vector<Record> buffer_;
    uint64_t count_ = 0;
};

/** Read a whole trace file into memory. */
std::vector<Record> loadTrace(const std::string &path);

/**
 * Streams a trace file's records first to last in blocks, for forward
 * passes over traces too large to hold in RAM.
 */
class ForwardTraceReader
{
  public:
    explicit ForwardTraceReader(const std::string &path,
                                size_t block_records = 1 << 16);
    ~ForwardTraceReader();

    ForwardTraceReader(const ForwardTraceReader &) = delete;
    ForwardTraceReader &operator=(const ForwardTraceReader &) = delete;

    uint64_t count() const { return count_; }

    /** Yield the next record; false at end of trace. */
    bool next(Record &out);

  private:
    std::FILE *file_ = nullptr;
    size_t blockRecords_;
    uint64_t count_ = 0;
    uint64_t consumed_ = 0;
    std::vector<Record> block_;
    size_t blockPos_ = 0;
};

/** Write a whole in-memory trace to a file. */
void saveTrace(const std::string &path, const std::vector<Record> &records);

/**
 * Streams a trace file's records from last to first, reading the file in
 * blocks so peak memory stays bounded by the block size.
 */
class ReverseTraceReader
{
  public:
    explicit ReverseTraceReader(const std::string &path,
                                size_t block_records = 1 << 16);
    ~ReverseTraceReader();

    ReverseTraceReader(const ReverseTraceReader &) = delete;
    ReverseTraceReader &operator=(const ReverseTraceReader &) = delete;

    /** Total records in the file. */
    uint64_t count() const { return count_; }

    /** Records not yet yielded. */
    uint64_t remaining() const { return remaining_; }

    /**
     * Yield the next record, moving backwards through the trace.
     * @retval false when the beginning of the trace has been passed.
     */
    bool next(Record &out);

  private:
    void loadPrecedingBlock();

    std::FILE *file_ = nullptr;
    size_t blockRecords_;
    uint64_t count_ = 0;
    uint64_t remaining_ = 0;
    std::vector<Record> block_;
    size_t blockPos_ = 0; ///< Records still unread within block_.
};

} // namespace trace
} // namespace webslice

#endif // WEBSLICE_TRACE_TRACE_FILE_HH
