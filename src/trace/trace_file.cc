#include "trace/trace_file.hh"

#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#define WEBSLICE_HAVE_MMAP 1
#endif

#include "support/logging.hh"
#include "support/metrics.hh"

namespace webslice {
namespace trace {

namespace {

constexpr size_t kWriteBufferRecords = 1 << 15;

/**
 * Reject payloads that cannot be a whole record array: misaligned sizes
 * (a torn write or foreign file), fewer records than the header claims
 * (truncation), or bytes past the last record (trailing garbage). Every
 * diagnostic names the file and the offending byte offset, so a corrupt
 * artifact fails loudly here instead of silently slicing a partial trace.
 */
void
validatePayload(const std::string &path, uint64_t file_bytes,
                uint64_t record_count)
{
    const uint64_t payload = file_bytes - sizeof(TraceHeader);
    const uint64_t stray = payload % sizeof(Record);
    fatal_if(stray != 0, "misaligned trace payload in ", path, ": ", stray,
             " stray bytes past offset ",
             file_bytes - stray, " (records are ", sizeof(Record),
             " bytes)");
    const uint64_t stored = payload / sizeof(Record);
    fatal_if(stored < record_count, "truncated trace file ", path,
             ": header claims ", record_count, " records but only ",
             stored, " are stored (file ends at offset ", file_bytes,
             ", expected ",
             sizeof(TraceHeader) + record_count * sizeof(Record), ")");
    fatal_if(stored > record_count, "trailing garbage in trace file ",
             path, ": ", (stored - record_count) * sizeof(Record),
             " bytes past the last record (offset ",
             sizeof(TraceHeader) + record_count * sizeof(Record), ")");
}

TraceHeader
readHeader(std::FILE *file, const std::string &path)
{
    fatal_if(std::fseek(file, 0, SEEK_END) != 0,
             "cannot seek in trace file ", path);
    const long end = std::ftell(file);
    fatal_if(end < 0, "cannot size trace file ", path);
    fatal_if(std::fseek(file, 0, SEEK_SET) != 0,
             "cannot seek in trace file ", path);
    const uint64_t file_bytes = static_cast<uint64_t>(end);
    fatal_if(file_bytes < sizeof(TraceHeader),
             "trace file too small for a header: ", path, " (",
             file_bytes, " of ", sizeof(TraceHeader), " bytes)");

    TraceHeader header;
    fatal_if(std::fread(&header, sizeof(header), 1, file) != 1,
             "cannot read trace header from ", path);
    TraceHeader expect;
    fatal_if(std::memcmp(header.magic, expect.magic, sizeof(header.magic)) !=
             0, "bad trace magic in ", path);
    validatePayload(path, file_bytes, header.recordCount);
    return header;
}

/** Publish one reader's prefetch effectiveness to the global registry. */
void
publishReaderStats(uint64_t hits, uint64_t misses, uint64_t sync_reads)
{
    auto &registry = MetricRegistry::global();
    if (hits)
        registry.counter("trace.prefetch_hits").add(hits);
    if (misses)
        registry.counter("trace.prefetch_misses").add(misses);
    if (sync_reads)
        registry.counter("trace.sync_block_reads").add(sync_reads);
}

} // namespace

TraceWriter::TraceWriter(const std::string &path) : path_(path)
{
    file_ = std::fopen(path.c_str(), "wb");
    fatal_if(!file_, "cannot create trace file ", path);
    TraceHeader header;
    fatal_if(std::fwrite(&header, sizeof(header), 1, file_) != 1,
             "cannot write trace header to ", path);
    buffer_.reserve(kWriteBufferRecords);
}

TraceWriter::~TraceWriter()
{
    close();
}

void
TraceWriter::append(const Record &rec)
{
    panic_if(!file_, "append to a closed trace writer");
    buffer_.push_back(rec);
    ++count_;
    if (buffer_.size() >= kWriteBufferRecords)
        flush();
}

void
TraceWriter::flush()
{
    if (buffer_.empty())
        return;
    fatal_if(std::fwrite(buffer_.data(), sizeof(Record), buffer_.size(),
                         file_) != buffer_.size(),
             "short write to trace file ", path_);
    buffer_.clear();
}

void
TraceWriter::close()
{
    if (!file_)
        return;
    flush();
    TraceHeader header;
    header.recordCount = count_;
    fatal_if(std::fseek(file_, 0, SEEK_SET) != 0,
             "cannot seek in trace file ", path_);
    fatal_if(std::fwrite(&header, sizeof(header), 1, file_) != 1,
             "cannot patch trace header in ", path_);
    std::fclose(file_);
    file_ = nullptr;
}

std::vector<Record>
loadTrace(const std::string &path)
{
    std::FILE *file = std::fopen(path.c_str(), "rb");
    fatal_if(!file, "cannot open trace file ", path);
    const TraceHeader header = readHeader(file, path);

    std::vector<Record> records(header.recordCount);
    if (header.recordCount > 0) {
        fatal_if(std::fread(records.data(), sizeof(Record),
                            records.size(), file) != records.size(),
                 "truncated trace file ", path);
    }
    std::fclose(file);
    return records;
}

void
saveTrace(const std::string &path, const std::vector<Record> &records)
{
    TraceWriter writer(path);
    for (const auto &rec : records)
        writer.append(rec);
    writer.close();
}

// ---- MappedTrace ------------------------------------------------------------

MappedTrace::MappedTrace(const std::string &path)
{
#ifdef WEBSLICE_HAVE_MMAP
    const int fd = ::open(path.c_str(), O_RDONLY);
    fatal_if(fd < 0, "cannot open trace file ", path);

    struct stat st;
    fatal_if(::fstat(fd, &st) != 0, "cannot stat trace file ", path);
    const size_t file_bytes = static_cast<size_t>(st.st_size);
    fatal_if(file_bytes < sizeof(TraceHeader),
             "trace file too small for a header: ", path);

    void *map = ::mmap(nullptr, file_bytes, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd); // the mapping holds its own reference
    if (map != MAP_FAILED) {
        const auto *header = static_cast<const TraceHeader *>(map);
        TraceHeader expect;
        fatal_if(std::memcmp(header->magic, expect.magic,
                             sizeof(expect.magic)) != 0,
                 "bad trace magic in ", path);
        validatePayload(path, file_bytes, header->recordCount);
        map_ = map;
        mapBytes_ = file_bytes;
        count_ = header->recordCount;
        records_ = reinterpret_cast<const Record *>(
            static_cast<const char *>(map) + sizeof(TraceHeader));
        return;
    }
#endif
    // mmap unavailable or refused: fall back to an owned copy.
    fallback_ = loadTrace(path);
    count_ = fallback_.size();
    records_ = fallback_.data();
}

MappedTrace::~MappedTrace()
{
#ifdef WEBSLICE_HAVE_MMAP
    if (map_)
        ::munmap(map_, mapBytes_);
#endif
}

// ---- ForwardTraceReader -----------------------------------------------------

ForwardTraceReader::ForwardTraceReader(const std::string &path,
                                       size_t block_records, bool prefetch)
    : blockRecords_(block_records ? block_records : 1)
{
    file_ = std::fopen(path.c_str(), "rb");
    fatal_if(!file_, "cannot open trace file ", path);
    const TraceHeader header = readHeader(file_, path);
    count_ = header.recordCount;

    // One-block traces gain nothing from a second thread.
    prefetch_ = prefetch && count_ > blockRecords_;
    if (prefetch_) {
        ioRemaining_ = count_;
        io_ = std::thread([this] { ioLoop(); });
    }
}

ForwardTraceReader::~ForwardTraceReader()
{
    if (prefetch_) {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            stop_ = true;
        }
        cv_.notify_all();
        io_.join();
    }
    if (file_)
        std::fclose(file_);
    publishReaderStats(prefetchHits_, prefetchMisses_, syncReads_);
}

void
ForwardTraceReader::ioLoop()
{
    std::vector<Record> buf;
    while (true) {
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [this] { return stop_ || !readyValid_; });
            if (stop_)
                return;
        }
        const size_t this_block = static_cast<size_t>(
            std::min<uint64_t>(blockRecords_, ioRemaining_));
        if (this_block == 0)
            return; // whole file handed over
        buf.resize(this_block);
        fatal_if(std::fread(buf.data(), sizeof(Record), this_block,
                            file_) != this_block,
                 "truncated trace file during forward read");
        ioRemaining_ -= this_block;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ready_.swap(buf);
            readyValid_ = true;
        }
        cv_.notify_all();
    }
}

void
ForwardTraceReader::takePrefetched()
{
    std::unique_lock<std::mutex> lock(mutex_);
    if (readyValid_)
        ++prefetchHits_; // block was already waiting; no stall
    else
        ++prefetchMisses_;
    cv_.wait(lock, [this] { return readyValid_; });
    block_.swap(ready_);
    readyValid_ = false;
    blockPos_ = 0;
    lock.unlock();
    cv_.notify_all(); // wake the IO thread to fetch the next block
}

void
ForwardTraceReader::fillBlockSync()
{
    ++syncReads_;
    const size_t this_block = static_cast<size_t>(
        std::min<uint64_t>(blockRecords_, count_ - consumed_));
    block_.resize(this_block);
    fatal_if(std::fread(block_.data(), sizeof(Record), this_block,
                        file_) != this_block,
             "truncated trace file during forward read");
    blockPos_ = 0;
}

bool
ForwardTraceReader::next(Record &out)
{
    if (consumed_ == count_)
        return false;
    if (blockPos_ == block_.size()) {
        if (prefetch_)
            takePrefetched();
        else
            fillBlockSync();
    }
    out = block_[blockPos_++];
    ++consumed_;
    return true;
}

// ---- ReverseTraceReader -----------------------------------------------------

ReverseTraceReader::ReverseTraceReader(const std::string &path,
                                       size_t block_records, bool prefetch)
    : blockRecords_(block_records ? block_records : 1)
{
    file_ = std::fopen(path.c_str(), "rb");
    fatal_if(!file_, "cannot open trace file ", path);
    const TraceHeader header = readHeader(file_, path);
    count_ = header.recordCount;
    remaining_ = count_;

    prefetch_ = prefetch && count_ > blockRecords_;
    if (prefetch_) {
        ioRemaining_ = count_;
        io_ = std::thread([this] { ioLoop(); });
    }
}

ReverseTraceReader::~ReverseTraceReader()
{
    if (prefetch_) {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            stop_ = true;
        }
        cv_.notify_all();
        io_.join();
    }
    if (file_)
        std::fclose(file_);
    publishReaderStats(prefetchHits_, prefetchMisses_, syncReads_);
}

void
ReverseTraceReader::ioLoop()
{
    std::vector<Record> buf;
    while (true) {
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [this] { return stop_ || !readyValid_; });
            if (stop_)
                return;
        }
        const size_t this_block = static_cast<size_t>(
            std::min<uint64_t>(blockRecords_, ioRemaining_));
        if (this_block == 0)
            return; // whole file handed over
        const uint64_t first_index = ioRemaining_ - this_block;
        const long offset = static_cast<long>(
            sizeof(TraceHeader) + first_index * sizeof(Record));
        fatal_if(std::fseek(file_, offset, SEEK_SET) != 0,
                 "cannot seek in trace file");
        buf.resize(this_block);
        fatal_if(std::fread(buf.data(), sizeof(Record), this_block,
                            file_) != this_block,
                 "truncated trace file during reverse read");
        ioRemaining_ -= this_block;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ready_.swap(buf);
            readyValid_ = true;
        }
        cv_.notify_all();
    }
}

void
ReverseTraceReader::takePrefetched()
{
    std::unique_lock<std::mutex> lock(mutex_);
    if (readyValid_)
        ++prefetchHits_;
    else
        ++prefetchMisses_;
    cv_.wait(lock, [this] { return readyValid_; });
    block_.swap(ready_);
    readyValid_ = false;
    blockPos_ = block_.size();
    lock.unlock();
    cv_.notify_all(); // wake the IO thread to fetch the preceding block
}

void
ReverseTraceReader::loadPrecedingBlock()
{
    ++syncReads_;
    const uint64_t already_read = remaining_;
    const size_t this_block = static_cast<size_t>(
        std::min<uint64_t>(blockRecords_, already_read));
    const uint64_t first_index = already_read - this_block;
    const long offset = static_cast<long>(
        sizeof(TraceHeader) + first_index * sizeof(Record));
    fatal_if(std::fseek(file_, offset, SEEK_SET) != 0,
             "cannot seek in trace file");
    block_.resize(this_block);
    fatal_if(std::fread(block_.data(), sizeof(Record), this_block, file_) !=
             this_block, "truncated trace file during reverse read");
    blockPos_ = this_block;
}

bool
ReverseTraceReader::next(Record &out)
{
    if (remaining_ == 0)
        return false;
    if (blockPos_ == 0) {
        if (prefetch_)
            takePrefetched();
        else
            loadPrecedingBlock();
    }
    out = block_[--blockPos_];
    --remaining_;
    return true;
}

} // namespace trace
} // namespace webslice
