#include "trace/trace_file.hh"

#include <cstring>

#include "support/logging.hh"

namespace webslice {
namespace trace {

namespace {

constexpr size_t kWriteBufferRecords = 1 << 15;

TraceHeader
readHeader(std::FILE *file, const std::string &path)
{
    TraceHeader header;
    fatal_if(std::fread(&header, sizeof(header), 1, file) != 1,
             "cannot read trace header from ", path);
    TraceHeader expect;
    fatal_if(std::memcmp(header.magic, expect.magic, sizeof(header.magic)) !=
             0, "bad trace magic in ", path);
    return header;
}

} // namespace

TraceWriter::TraceWriter(const std::string &path) : path_(path)
{
    file_ = std::fopen(path.c_str(), "wb");
    fatal_if(!file_, "cannot create trace file ", path);
    TraceHeader header;
    fatal_if(std::fwrite(&header, sizeof(header), 1, file_) != 1,
             "cannot write trace header to ", path);
    buffer_.reserve(kWriteBufferRecords);
}

TraceWriter::~TraceWriter()
{
    close();
}

void
TraceWriter::append(const Record &rec)
{
    panic_if(!file_, "append to a closed trace writer");
    buffer_.push_back(rec);
    ++count_;
    if (buffer_.size() >= kWriteBufferRecords)
        flush();
}

void
TraceWriter::flush()
{
    if (buffer_.empty())
        return;
    fatal_if(std::fwrite(buffer_.data(), sizeof(Record), buffer_.size(),
                         file_) != buffer_.size(),
             "short write to trace file ", path_);
    buffer_.clear();
}

void
TraceWriter::close()
{
    if (!file_)
        return;
    flush();
    TraceHeader header;
    header.recordCount = count_;
    fatal_if(std::fseek(file_, 0, SEEK_SET) != 0,
             "cannot seek in trace file ", path_);
    fatal_if(std::fwrite(&header, sizeof(header), 1, file_) != 1,
             "cannot patch trace header in ", path_);
    std::fclose(file_);
    file_ = nullptr;
}

std::vector<Record>
loadTrace(const std::string &path)
{
    std::FILE *file = std::fopen(path.c_str(), "rb");
    fatal_if(!file, "cannot open trace file ", path);
    const TraceHeader header = readHeader(file, path);

    std::vector<Record> records(header.recordCount);
    if (header.recordCount > 0) {
        fatal_if(std::fread(records.data(), sizeof(Record),
                            records.size(), file) != records.size(),
                 "truncated trace file ", path);
    }
    std::fclose(file);
    return records;
}

void
saveTrace(const std::string &path, const std::vector<Record> &records)
{
    TraceWriter writer(path);
    for (const auto &rec : records)
        writer.append(rec);
    writer.close();
}

ForwardTraceReader::ForwardTraceReader(const std::string &path,
                                       size_t block_records)
    : blockRecords_(block_records ? block_records : 1)
{
    file_ = std::fopen(path.c_str(), "rb");
    fatal_if(!file_, "cannot open trace file ", path);
    const TraceHeader header = readHeader(file_, path);
    count_ = header.recordCount;
}

ForwardTraceReader::~ForwardTraceReader()
{
    if (file_)
        std::fclose(file_);
}

bool
ForwardTraceReader::next(Record &out)
{
    if (consumed_ == count_)
        return false;
    if (blockPos_ == block_.size()) {
        const size_t this_block = static_cast<size_t>(
            std::min<uint64_t>(blockRecords_, count_ - consumed_));
        block_.resize(this_block);
        fatal_if(std::fread(block_.data(), sizeof(Record), this_block,
                            file_) != this_block,
                 "truncated trace file during forward read");
        blockPos_ = 0;
    }
    out = block_[blockPos_++];
    ++consumed_;
    return true;
}

ReverseTraceReader::ReverseTraceReader(const std::string &path,
                                       size_t block_records)
    : blockRecords_(block_records ? block_records : 1)
{
    file_ = std::fopen(path.c_str(), "rb");
    fatal_if(!file_, "cannot open trace file ", path);
    const TraceHeader header = readHeader(file_, path);
    count_ = header.recordCount;
    remaining_ = count_;
}

ReverseTraceReader::~ReverseTraceReader()
{
    if (file_)
        std::fclose(file_);
}

void
ReverseTraceReader::loadPrecedingBlock()
{
    const uint64_t already_read = remaining_;
    const size_t this_block = static_cast<size_t>(
        std::min<uint64_t>(blockRecords_, already_read));
    const uint64_t first_index = already_read - this_block;
    const long offset = static_cast<long>(
        sizeof(TraceHeader) + first_index * sizeof(Record));
    fatal_if(std::fseek(file_, offset, SEEK_SET) != 0,
             "cannot seek in trace file");
    block_.resize(this_block);
    fatal_if(std::fread(block_.data(), sizeof(Record), this_block, file_) !=
             this_block, "truncated trace file during reverse read");
    blockPos_ = this_block;
}

bool
ReverseTraceReader::next(Record &out)
{
    if (remaining_ == 0)
        return false;
    if (blockPos_ == 0)
        loadPrecedingBlock();
    out = block_[--blockPos_];
    --remaining_;
    return true;
}

} // namespace trace
} // namespace webslice
