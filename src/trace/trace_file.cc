#include "trace/trace_file.hh"

#include <cstdio>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#define WEBSLICE_HAVE_MMAP 1
#endif

#include "support/logging.hh"
#include "support/metrics.hh"
#include "trace/columnar.hh"

namespace webslice {
namespace trace {

namespace {

constexpr size_t kWriteBufferRecords = 1 << 15;

/** On-disk header of the optional block-index footer. */
struct IndexFooter
{
    char magic[8];
    uint64_t blockRecords;
    uint64_t blockCount;
};

static_assert(sizeof(IndexFooter) == 24, "footer layout must stay fixed");

constexpr char kIndexMagic[8] = {'W', 'E', 'B', 'T', 'I', 'D', 'X', '1'};

/** One footer entry per block: executed and pseudo record counts. */
struct IndexEntry
{
    uint32_t instructions;
    uint32_t pseudoRecords;
};

static_assert(sizeof(IndexEntry) == 8, "footer layout must stay fixed");

uint64_t
indexBlockCount(uint64_t record_count, uint64_t block_records)
{
    return (record_count + block_records - 1) / block_records;
}

/**
 * Reject payloads that cannot be a whole record array: misaligned sizes
 * (a torn write or foreign file) and fewer records than the header
 * claims (truncation). Every diagnostic names the file and the
 * offending byte offset, so a corrupt artifact fails loudly here
 * instead of silently slicing a partial trace. Bytes past the last
 * record are returned for footer validation: a valid block-index
 * footer is the only acceptable trailer.
 */
uint64_t
validatePayload(const std::string &path, uint64_t file_bytes,
                uint64_t record_count)
{
    const uint64_t payload = file_bytes - sizeof(TraceHeader);
    const uint64_t expected = record_count * sizeof(Record);
    if (payload < expected) {
        const uint64_t stray = payload % sizeof(Record);
        fatal_if(stray != 0, "misaligned trace payload in ", path, ": ",
                 stray, " stray bytes past offset ", file_bytes - stray,
                 " (records are ", sizeof(Record), " bytes)");
        fatal_if(true, "truncated trace file ", path, ": header claims ",
                 record_count, " records but only ",
                 payload / sizeof(Record),
                 " are stored (file ends at offset ", file_bytes,
                 ", expected ", sizeof(TraceHeader) + expected, ")");
    }
    return payload - expected;
}

/** The pre-index diagnostics for trailing bytes that are no footer. */
void
rejectTrailingBytes(const std::string &path, uint64_t file_bytes,
                    uint64_t record_count, uint64_t extra)
{
    const uint64_t stray = extra % sizeof(Record);
    fatal_if(stray != 0, "misaligned trace payload in ", path, ": ", stray,
             " stray bytes past offset ", file_bytes - stray,
             " (records are ", sizeof(Record), " bytes)");
    fatal_if(true, "trailing garbage in trace file ", path, ": ", extra,
             " bytes past the last record (offset ",
             sizeof(TraceHeader) + record_count * sizeof(Record), ")");
}

/**
 * Validate a candidate footer header against the trailer size; fatal on
 * a corrupt footer, false when the bytes are not a footer at all (the
 * caller then issues the classic trailing-bytes diagnostics).
 */
bool
checkFooter(const std::string &path, uint64_t record_count, uint64_t extra,
            const IndexFooter &footer)
{
    if (std::memcmp(footer.magic, kIndexMagic, sizeof(kIndexMagic)) != 0)
        return false;
    fatal_if(footer.blockRecords == 0, "corrupt trace block index in ",
             path, ": zero records per block");
    const uint64_t blocks =
        indexBlockCount(record_count, footer.blockRecords);
    fatal_if(footer.blockCount != blocks, "corrupt trace block index in ",
             path, ": footer claims ", footer.blockCount,
             " blocks, trace geometry implies ", blocks);
    const uint64_t want =
        sizeof(IndexFooter) + blocks * sizeof(IndexEntry);
    fatal_if(extra != want, "corrupt trace block index in ", path,
             ": footer occupies ", extra, " bytes, expected ", want);
    return true;
}

/** Unpack validated footer entries into the public index form. */
void
unpackIndex(const IndexFooter &footer, const IndexEntry *entries,
            TraceBlockIndex &out)
{
    out.blockRecords = footer.blockRecords;
    out.instructions.resize(footer.blockCount);
    out.pseudoRecords.resize(footer.blockCount);
    for (uint64_t b = 0; b < footer.blockCount; ++b) {
        out.instructions[b] = entries[b].instructions;
        out.pseudoRecords[b] = entries[b].pseudoRecords;
    }
}

/**
 * Read and validate the header; when `index` is non-null and the file
 * carries a block-index footer, parse it too. The stream is left
 * positioned at the first record.
 */
TraceHeader
readHeader(std::FILE *file, const std::string &path,
           TraceBlockIndex *index = nullptr)
{
    fatal_if(std::fseek(file, 0, SEEK_END) != 0,
             "cannot seek in trace file ", path);
    const long end = std::ftell(file);
    fatal_if(end < 0, "cannot size trace file ", path);
    fatal_if(std::fseek(file, 0, SEEK_SET) != 0,
             "cannot seek in trace file ", path);
    const uint64_t file_bytes = static_cast<uint64_t>(end);
    fatal_if(file_bytes < sizeof(TraceHeader),
             "trace file too small for a header: ", path, " (",
             file_bytes, " of ", sizeof(TraceHeader), " bytes)");
    noteTraceBytesOnDisk(traceFileIdentity(path, file_bytes), file_bytes);

    TraceHeader header;
    fatal_if(std::fread(&header, sizeof(header), 1, file) != 1,
             "cannot read trace header from ", path);
    TraceHeader expect;
    fatal_if(std::memcmp(header.magic, expect.magic, sizeof(header.magic)) !=
             0, "bad trace magic in ", path);
    const uint64_t extra =
        validatePayload(path, file_bytes, header.recordCount);
    if (extra > 0) {
        const long footer_offset = static_cast<long>(
            sizeof(TraceHeader) + header.recordCount * sizeof(Record));
        IndexFooter footer{};
        bool is_footer = extra >= sizeof(IndexFooter);
        if (is_footer) {
            fatal_if(std::fseek(file, footer_offset, SEEK_SET) != 0,
                     "cannot seek in trace file ", path);
            fatal_if(std::fread(&footer, sizeof(footer), 1, file) != 1,
                     "cannot read trace block index from ", path);
            is_footer = checkFooter(path, header.recordCount, extra,
                                    footer);
        }
        if (!is_footer)
            rejectTrailingBytes(path, file_bytes, header.recordCount,
                                extra);
        if (index) {
            std::vector<IndexEntry> entries(footer.blockCount);
            if (!entries.empty()) {
                fatal_if(std::fread(entries.data(), sizeof(IndexEntry),
                                    entries.size(),
                                    file) != entries.size(),
                         "cannot read trace block index from ", path);
            }
            unpackIndex(footer, entries.data(), *index);
        }
        fatal_if(std::fseek(file, sizeof(TraceHeader), SEEK_SET) != 0,
                 "cannot seek in trace file ", path);
    }
    return header;
}

/** Publish one reader's prefetch effectiveness to the global registry. */
void
publishReaderStats(uint64_t hits, uint64_t misses, uint64_t sync_reads)
{
    auto &registry = MetricRegistry::global();
    if (hits)
        registry.counter("trace.prefetch_hits").add(hits);
    if (misses)
        registry.counter("trace.prefetch_misses").add(misses);
    if (sync_reads)
        registry.counter("trace.sync_block_reads").add(sync_reads);
}

/** Sniff a format from magic bytes already in memory; 0 = neither. */
TraceFormat
formatFromMagic(const char magic[8], bool &known)
{
    known = true;
    TraceHeader v1;
    if (std::memcmp(magic, v1.magic, sizeof(v1.magic)) == 0)
        return TraceFormat::V1;
    V2Header v2;
    if (std::memcmp(magic, v2.magic, sizeof(v2.magic)) == 0)
        return TraceFormat::V2;
    known = false;
    return TraceFormat::V1;
}

} // namespace

TraceFormat
sniffTraceFormat(const std::string &path)
{
    std::FILE *file = std::fopen(path.c_str(), "rb");
    fatal_if(!file, "cannot open trace file ", path);
    char magic[8] = {};
    const size_t got = std::fread(magic, 1, sizeof(magic), file);
    std::fclose(file);
    fatal_if(got != sizeof(magic),
             "trace file too small for a header: ", path);
    bool known = false;
    const TraceFormat format = formatFromMagic(magic, known);
    fatal_if(!known, "bad trace magic in ", path);
    return format;
}

TraceWriter::TraceWriter(const std::string &path, bool block_index,
                         TraceFormat format, bool atomic)
    : path_(atomic ? path + ".tmp" : path), finalPath_(path),
      writeIndex_(block_index || format == TraceFormat::V2),
      atomic_(atomic)
{
    file_ = std::fopen(path_.c_str(), "wb");
    fatal_if(!file_, "cannot create trace file ", path_);
    if (format == TraceFormat::V2) {
        // The columnar backend owns buffering, block encoding, and the
        // checkpointed index; file lifetime (and the atomic rename)
        // stays here.
        v2_ = std::make_unique<V2WriterBackend>(file_, path_);
        return;
    }
    TraceHeader header;
    fatal_if(std::fwrite(&header, sizeof(header), 1, file_) != 1,
             "cannot write trace header to ", path_);
    buffer_.reserve(kWriteBufferRecords);
    if (writeIndex_)
        index_.blockRecords = kTraceIndexBlockRecords;
}

TraceWriter::~TraceWriter()
{
    close();
}

void
TraceWriter::append(const Record &rec)
{
    panic_if(!file_, "append to a closed trace writer");
    if (v2_) {
        v2_->append(rec);
        ++count_;
        return;
    }
    buffer_.push_back(rec);
    if (writeIndex_) {
        const size_t block =
            static_cast<size_t>(count_ / kTraceIndexBlockRecords);
        if (block == index_.instructions.size()) {
            index_.instructions.push_back(0);
            index_.pseudoRecords.push_back(0);
        }
        if (rec.isPseudo())
            ++index_.pseudoRecords[block];
        else
            ++index_.instructions[block];
    }
    ++count_;
    if (buffer_.size() >= kWriteBufferRecords)
        flush();
}

void
TraceWriter::flush()
{
    if (buffer_.empty())
        return;
    fatal_if(std::fwrite(buffer_.data(), sizeof(Record), buffer_.size(),
                         file_) != buffer_.size(),
             "short write to trace file ", path_);
    buffer_.clear();
}

void
TraceWriter::close()
{
    if (!file_)
        return;
    if (v2_) {
        v2_->finish();
        v2_.reset();
        finishFile();
        return;
    }
    flush();
    if (writeIndex_) {
        // The stream sits at end-of-records after flush(); the footer
        // goes there, before the header patch seeks back to offset 0.
        IndexFooter footer;
        std::memcpy(footer.magic, kIndexMagic, sizeof(kIndexMagic));
        footer.blockRecords = kTraceIndexBlockRecords;
        footer.blockCount = index_.blockCount();
        fatal_if(std::fwrite(&footer, sizeof(footer), 1, file_) != 1,
                 "cannot write trace block index to ", path_);
        std::vector<IndexEntry> entries(index_.blockCount());
        for (size_t b = 0; b < entries.size(); ++b) {
            entries[b].instructions = index_.instructions[b];
            entries[b].pseudoRecords = index_.pseudoRecords[b];
        }
        if (!entries.empty()) {
            fatal_if(std::fwrite(entries.data(), sizeof(IndexEntry),
                                 entries.size(), file_) != entries.size(),
                     "cannot write trace block index to ", path_);
        }
    }
    TraceHeader header;
    header.recordCount = count_;
    fatal_if(std::fseek(file_, 0, SEEK_SET) != 0,
             "cannot seek in trace file ", path_);
    fatal_if(std::fwrite(&header, sizeof(header), 1, file_) != 1,
             "cannot patch trace header in ", path_);
    finishFile();
}

void
TraceWriter::finishFile()
{
    fatal_if(std::fflush(file_) != 0, "short write to trace file ",
             path_);
#if defined(__unix__) || defined(__APPLE__)
    // Durability before visibility: the rename below must never
    // publish a file whose bytes are still in the page cache only.
    if (atomic_)
        fatal_if(::fsync(::fileno(file_)) != 0,
                 "cannot fsync trace file ", path_);
#endif
    std::fclose(file_);
    file_ = nullptr;
    if (atomic_) {
        fatal_if(std::rename(path_.c_str(), finalPath_.c_str()) != 0,
                 "cannot rename trace file ", path_, " into place as ",
                 finalPath_);
    }
}

std::vector<Record>
loadTrace(const std::string &path)
{
    if (sniffTraceFormat(path) == TraceFormat::V2) {
        // One-shot whole-file read: decode blocks in order, bypassing
        // the decode cache (nothing would be revisited).
        const V2TraceFile v2(path);
        std::vector<Record> records;
        records.reserve(static_cast<size_t>(v2.count()));
        std::vector<Record> block;
        for (size_t b = 0; b < v2.index().blocks.size(); ++b) {
            v2.decodeBlock(b, block);
            records.insert(records.end(), block.begin(), block.end());
        }
        return records;
    }
    std::FILE *file = std::fopen(path.c_str(), "rb");
    fatal_if(!file, "cannot open trace file ", path);
    const TraceHeader header = readHeader(file, path);

    std::vector<Record> records(header.recordCount);
    if (header.recordCount > 0) {
        fatal_if(std::fread(records.data(), sizeof(Record),
                            records.size(), file) != records.size(),
                 "truncated trace file ", path);
    }
    std::fclose(file);
    return records;
}

std::vector<Record>
loadTraceRange(const std::string &path, uint64_t first, uint64_t count)
{
    if (sniffTraceFormat(path) == TraceFormat::V2) {
        const V2TraceFile v2(path);
        fatal_if(first > v2.count() || count > v2.count() - first,
                 "trace range [", first, ", ", first + count,
                 ") out of bounds in ", path, " (", v2.count(),
                 " records)");
        std::vector<Record> records;
        records.reserve(static_cast<size_t>(count));
        const uint64_t block_records = v2.index().blockRecords;
        auto &cache = TraceDecodeCache::global();
        // Decode exactly the blocks the range touches; repeat touches
        // (epoch boundary probes, per-epoch transcodes) hit the cache.
        for (uint64_t i = first; i < first + count;) {
            const size_t b = v2.blockOf(i);
            const auto block = cache.acquire(v2, b);
            const uint64_t block_start = b * block_records;
            const uint64_t lo = i - block_start;
            const uint64_t hi = std::min<uint64_t>(
                block->size(), first + count - block_start);
            records.insert(records.end(), block->begin() + lo,
                           block->begin() + hi);
            i = block_start + hi;
        }
        return records;
    }
    std::FILE *file = std::fopen(path.c_str(), "rb");
    fatal_if(!file, "cannot open trace file ", path);
    const TraceHeader header = readHeader(file, path);
    fatal_if(first > header.recordCount ||
             count > header.recordCount - first,
             "trace range [", first, ", ", first + count,
             ") out of bounds in ", path, " (", header.recordCount,
             " records)");

    std::vector<Record> records(count);
    if (count > 0) {
        const long offset = static_cast<long>(
            sizeof(TraceHeader) + first * sizeof(Record));
        fatal_if(std::fseek(file, offset, SEEK_SET) != 0,
                 "cannot seek in trace file ", path);
        fatal_if(std::fread(records.data(), sizeof(Record),
                            records.size(), file) != records.size(),
                 "truncated trace file ", path);
    }
    std::fclose(file);
    return records;
}

TraceBlockIndex
loadTraceBlockIndex(const std::string &path)
{
    if (sniffTraceFormat(path) == TraceFormat::V2) {
        // The v2 index is structural; project it onto the v1 footer
        // shape the epoch planner consumes.
        const V2TraceFile v2(path);
        TraceBlockIndex index;
        index.blockRecords = v2.index().blockRecords;
        index.instructions.reserve(v2.index().blocks.size());
        index.pseudoRecords.reserve(v2.index().blocks.size());
        for (const V2BlockEntry &entry : v2.index().blocks) {
            index.instructions.push_back(entry.instructions);
            index.pseudoRecords.push_back(entry.pseudoRecords);
        }
        return index;
    }
    std::FILE *file = std::fopen(path.c_str(), "rb");
    fatal_if(!file, "cannot open trace file ", path);
    TraceBlockIndex index;
    readHeader(file, path, &index);
    std::fclose(file);
    return index;
}

void
saveTrace(const std::string &path, const std::vector<Record> &records,
          TraceFormat format)
{
    TraceWriter writer(path, /*block_index=*/false, format);
    for (const auto &rec : records)
        writer.append(rec);
    writer.close();
}

// ---- MappedTrace ------------------------------------------------------------

MappedTrace::MappedTrace(const std::string &path)
{
    if (sniffTraceFormat(path) == TraceFormat::V2) {
        // Columnar traces cannot be viewed zero-copy; decode the whole
        // file into the owned buffer (mapped() stays false) and carry
        // the index across in its footer shape.
        const V2TraceFile v2(path);
        fallback_.reserve(static_cast<size_t>(v2.count()));
        std::vector<Record> block;
        for (size_t b = 0; b < v2.index().blocks.size(); ++b) {
            v2.decodeBlock(b, block);
            fallback_.insert(fallback_.end(), block.begin(),
                             block.end());
        }
        count_ = fallback_.size();
        records_ = fallback_.data();
        index_.blockRecords = v2.index().blockRecords;
        for (const V2BlockEntry &entry : v2.index().blocks) {
            index_.instructions.push_back(entry.instructions);
            index_.pseudoRecords.push_back(entry.pseudoRecords);
        }
        return;
    }
#ifdef WEBSLICE_HAVE_MMAP
    const int fd = ::open(path.c_str(), O_RDONLY);
    fatal_if(fd < 0, "cannot open trace file ", path);

    struct stat st;
    fatal_if(::fstat(fd, &st) != 0, "cannot stat trace file ", path);
    const size_t file_bytes = static_cast<size_t>(st.st_size);
    fatal_if(file_bytes < sizeof(TraceHeader),
             "trace file too small for a header: ", path);
    noteTraceBytesOnDisk(traceFileIdentity(path, file_bytes), file_bytes);

    void *map = ::mmap(nullptr, file_bytes, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd); // the mapping holds its own reference
    if (map != MAP_FAILED) {
        const auto *header = static_cast<const TraceHeader *>(map);
        TraceHeader expect;
        fatal_if(std::memcmp(header->magic, expect.magic,
                             sizeof(expect.magic)) != 0,
                 "bad trace magic in ", path);
        const uint64_t extra =
            validatePayload(path, file_bytes, header->recordCount);
        if (extra > 0) {
            const char *trailer = static_cast<const char *>(map) +
                                  sizeof(TraceHeader) +
                                  header->recordCount * sizeof(Record);
            IndexFooter footer{};
            bool is_footer = extra >= sizeof(IndexFooter);
            if (is_footer) {
                std::memcpy(&footer, trailer, sizeof(footer));
                is_footer = checkFooter(path, header->recordCount, extra,
                                        footer);
            }
            if (!is_footer)
                rejectTrailingBytes(path, file_bytes,
                                    header->recordCount, extra);
            std::vector<IndexEntry> entries(footer.blockCount);
            if (!entries.empty()) {
                std::memcpy(entries.data(), trailer + sizeof(footer),
                            entries.size() * sizeof(IndexEntry));
            }
            unpackIndex(footer, entries.data(), index_);
        }
        map_ = map;
        mapBytes_ = file_bytes;
        count_ = header->recordCount;
        records_ = reinterpret_cast<const Record *>(
            static_cast<const char *>(map) + sizeof(TraceHeader));
        return;
    }
#endif
    // mmap unavailable or refused: fall back to an owned copy.
    fallback_ = loadTrace(path);
    count_ = fallback_.size();
    records_ = fallback_.data();
    index_ = loadTraceBlockIndex(path);
}

MappedTrace::~MappedTrace()
{
#ifdef WEBSLICE_HAVE_MMAP
    if (map_)
        ::munmap(map_, mapBytes_);
#endif
}

// ---- ForwardTraceReader -----------------------------------------------------

ForwardTraceReader::ForwardTraceReader(const std::string &path,
                                       size_t block_records, bool prefetch)
    : blockRecords_(block_records ? block_records : 1)
{
    if (sniffTraceFormat(path) == TraceFormat::V2) {
        // v2 reads are block-decode units regardless of the requested
        // chunking; the prefetch thread then overlaps *decode* (the v2
        // analogue of disk latency) with the caller's analysis.
        v2_ = std::make_unique<V2TraceFile>(path);
        count_ = v2_->count();
        blockRecords_ =
            static_cast<size_t>(v2_->index().blockRecords);
    } else {
        file_ = std::fopen(path.c_str(), "rb");
        fatal_if(!file_, "cannot open trace file ", path);
        const TraceHeader header = readHeader(file_, path);
        count_ = header.recordCount;
    }

    // One-block traces gain nothing from a second thread.
    prefetch_ = prefetch && count_ > blockRecords_;
    if (prefetch_) {
        ioRemaining_ = count_;
        io_ = std::thread([this] { ioLoop(); });
    }
}

size_t
ForwardTraceReader::fillForwardV2(std::vector<Record> &buf,
                                  uint64_t remaining)
{
    const uint64_t next = count_ - remaining;
    const size_t b = v2_->blockOf(next);
    const auto block = TraceDecodeCache::global().acquire(*v2_, b);
    const uint64_t block_start = b * v2_->index().blockRecords;
    const size_t lo = static_cast<size_t>(next - block_start);
    buf.assign(block->begin() + lo, block->end());
    return buf.size();
}

ForwardTraceReader::~ForwardTraceReader()
{
    if (prefetch_) {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            stop_ = true;
        }
        cv_.notify_all();
        io_.join();
    }
    if (file_)
        std::fclose(file_);
    publishReaderStats(prefetchHits_, prefetchMisses_, syncReads_);
}

void
ForwardTraceReader::ioLoop()
{
    std::vector<Record> buf;
    while (true) {
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [this] { return stop_ || !readyValid_; });
            if (stop_)
                return;
        }
        if (ioRemaining_ == 0)
            return; // whole file handed over
        size_t this_block;
        if (v2_) {
            this_block = fillForwardV2(buf, ioRemaining_);
        } else {
            this_block = static_cast<size_t>(
                std::min<uint64_t>(blockRecords_, ioRemaining_));
            buf.resize(this_block);
            fatal_if(std::fread(buf.data(), sizeof(Record), this_block,
                                file_) != this_block,
                     "truncated trace file during forward read");
        }
        ioRemaining_ -= this_block;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ready_.swap(buf);
            readyValid_ = true;
        }
        cv_.notify_all();
    }
}

void
ForwardTraceReader::takePrefetched()
{
    std::unique_lock<std::mutex> lock(mutex_);
    if (readyValid_)
        ++prefetchHits_; // block was already waiting; no stall
    else
        ++prefetchMisses_;
    cv_.wait(lock, [this] { return readyValid_; });
    block_.swap(ready_);
    readyValid_ = false;
    blockPos_ = 0;
    lock.unlock();
    cv_.notify_all(); // wake the IO thread to fetch the next block
}

void
ForwardTraceReader::fillBlockSync()
{
    ++syncReads_;
    if (v2_) {
        fillForwardV2(block_, count_ - consumed_);
        blockPos_ = 0;
        return;
    }
    const size_t this_block = static_cast<size_t>(
        std::min<uint64_t>(blockRecords_, count_ - consumed_));
    block_.resize(this_block);
    fatal_if(std::fread(block_.data(), sizeof(Record), this_block,
                        file_) != this_block,
             "truncated trace file during forward read");
    blockPos_ = 0;
}

bool
ForwardTraceReader::next(Record &out)
{
    if (consumed_ == count_)
        return false;
    if (blockPos_ == block_.size()) {
        if (prefetch_)
            takePrefetched();
        else
            fillBlockSync();
    }
    out = block_[blockPos_++];
    ++consumed_;
    return true;
}

// ---- ReverseTraceReader -----------------------------------------------------

ReverseTraceReader::ReverseTraceReader(const std::string &path,
                                       size_t block_records, bool prefetch)
    : blockRecords_(block_records ? block_records : 1)
{
    if (sniffTraceFormat(path) == TraceFormat::V2) {
        v2_ = std::make_unique<V2TraceFile>(path);
        count_ = v2_->count();
        blockRecords_ =
            static_cast<size_t>(v2_->index().blockRecords);
    } else {
        file_ = std::fopen(path.c_str(), "rb");
        fatal_if(!file_, "cannot open trace file ", path);
        const TraceHeader header = readHeader(file_, path);
        count_ = header.recordCount;
    }
    remaining_ = count_;

    prefetch_ = prefetch && count_ > blockRecords_;
    if (prefetch_) {
        ioRemaining_ = count_;
        io_ = std::thread([this] { ioLoop(); });
    }
}

ReverseTraceReader::ReverseTraceReader(const std::string &path,
                                       uint64_t first, uint64_t last,
                                       size_t block_records, bool prefetch)
    : blockRecords_(block_records ? block_records : 1)
{
    if (sniffTraceFormat(path) == TraceFormat::V2) {
        v2_ = std::make_unique<V2TraceFile>(path);
        count_ = v2_->count();
        blockRecords_ =
            static_cast<size_t>(v2_->index().blockRecords);
    } else {
        file_ = std::fopen(path.c_str(), "rb");
        fatal_if(!file_, "cannot open trace file ", path);
        const TraceHeader header = readHeader(file_, path);
        count_ = header.recordCount;
    }
    fatal_if(first > last || last > count_, "trace range [", first, ", ",
             last, ") out of bounds in ", path, " (", count_,
             " records)");
    rangeFirst_ = first;
    remaining_ = last - first;

    prefetch_ = prefetch && remaining_ > blockRecords_;
    if (prefetch_) {
        ioRemaining_ = remaining_;
        io_ = std::thread([this] { ioLoop(); });
    }
}

ReverseTraceReader::~ReverseTraceReader()
{
    if (prefetch_) {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            stop_ = true;
        }
        cv_.notify_all();
        io_.join();
    }
    if (file_)
        std::fclose(file_);
    publishReaderStats(prefetchHits_, prefetchMisses_, syncReads_);
}

size_t
ReverseTraceReader::fillReverseV2(std::vector<Record> &buf,
                                  uint64_t remaining)
{
    // One past the highest unread record, in absolute file indices.
    const uint64_t top = rangeFirst_ + remaining;
    const size_t b = v2_->blockOf(top - 1);
    const auto block = TraceDecodeCache::global().acquire(*v2_, b);
    const uint64_t block_start = b * v2_->index().blockRecords;
    // The chunk is the in-range part of this block below `top`.
    const uint64_t lo = std::max<uint64_t>(rangeFirst_, block_start);
    buf.assign(block->begin() + static_cast<size_t>(lo - block_start),
               block->begin() + static_cast<size_t>(top - block_start));
    return buf.size();
}

void
ReverseTraceReader::ioLoop()
{
    std::vector<Record> buf;
    while (true) {
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [this] { return stop_ || !readyValid_; });
            if (stop_)
                return;
        }
        if (ioRemaining_ == 0)
            return; // whole file handed over
        size_t this_block;
        if (v2_) {
            this_block = fillReverseV2(buf, ioRemaining_);
        } else {
            this_block = static_cast<size_t>(
                std::min<uint64_t>(blockRecords_, ioRemaining_));
            const uint64_t first_index =
                rangeFirst_ + (ioRemaining_ - this_block);
            const long offset = static_cast<long>(
                sizeof(TraceHeader) + first_index * sizeof(Record));
            fatal_if(std::fseek(file_, offset, SEEK_SET) != 0,
                     "cannot seek in trace file");
            buf.resize(this_block);
            fatal_if(std::fread(buf.data(), sizeof(Record), this_block,
                                file_) != this_block,
                     "truncated trace file during reverse read");
        }
        ioRemaining_ -= this_block;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            ready_.swap(buf);
            readyValid_ = true;
        }
        cv_.notify_all();
    }
}

void
ReverseTraceReader::takePrefetched()
{
    std::unique_lock<std::mutex> lock(mutex_);
    if (readyValid_)
        ++prefetchHits_;
    else
        ++prefetchMisses_;
    cv_.wait(lock, [this] { return readyValid_; });
    block_.swap(ready_);
    readyValid_ = false;
    blockPos_ = block_.size();
    lock.unlock();
    cv_.notify_all(); // wake the IO thread to fetch the preceding block
}

void
ReverseTraceReader::loadPrecedingBlock()
{
    ++syncReads_;
    if (v2_) {
        blockPos_ = fillReverseV2(block_, remaining_);
        return;
    }
    const uint64_t already_read = remaining_;
    const size_t this_block = static_cast<size_t>(
        std::min<uint64_t>(blockRecords_, already_read));
    const uint64_t first_index = rangeFirst_ + (already_read - this_block);
    const long offset = static_cast<long>(
        sizeof(TraceHeader) + first_index * sizeof(Record));
    fatal_if(std::fseek(file_, offset, SEEK_SET) != 0,
             "cannot seek in trace file");
    block_.resize(this_block);
    fatal_if(std::fread(block_.data(), sizeof(Record), this_block, file_) !=
             this_block, "truncated trace file during reverse read");
    blockPos_ = this_block;
}

bool
ReverseTraceReader::next(Record &out)
{
    if (remaining_ == 0)
        return false;
    if (blockPos_ == 0) {
        if (prefetch_)
            takePrefetched();
        else
            loadPrecedingBlock();
    }
    out = block_[--blockPos_];
    --remaining_;
    return true;
}

} // namespace trace
} // namespace webslice
