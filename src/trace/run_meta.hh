/**
 * @file
 * The recording metadata sidecar (<prefix>.meta): benchmark name,
 * load-complete record index, load-only flag, and thread names, as
 * written by webslice-record. Shared by the profiler and the checker so
 * both derive the analysis window the same way.
 */

#ifndef WEBSLICE_TRACE_RUN_META_HH
#define WEBSLICE_TRACE_RUN_META_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace webslice {
namespace trace {

/** Contents of one <prefix>.meta file. */
struct RunMeta
{
    std::string benchmark;
    size_t loadCompleteIndex = SIZE_MAX;
    bool loadOnly = false;
    std::vector<std::string> threadNames;
};

/**
 * Load a metadata sidecar. A missing file is fine (recordings without
 * metadata are legal); a present file must parse completely — malformed
 * values and unknown keys fail with the offending line instead of being
 * silently skipped.
 */
RunMeta loadRunMeta(const std::string &path);

} // namespace trace
} // namespace webslice

#endif // WEBSLICE_TRACE_RUN_META_HH
