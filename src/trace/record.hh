/**
 * @file
 * The dynamic trace record format.
 *
 * One record per dynamically executed instruction (plus a few pseudo-record
 * kinds), carrying exactly the information the paper's Pin tool collects:
 * static opcode class and registers accessed, plus dynamic memory
 * address/size, thread id, branch outcome, and syscall number. Syscall
 * memory effects (what the kernel reads/writes on the process's behalf,
 * derived in the paper from the Linux manual and the AMD64 ABI) appear as
 * explicit effect pseudo-records immediately after their syscall record.
 */

#ifndef WEBSLICE_TRACE_RECORD_HH
#define WEBSLICE_TRACE_RECORD_HH

#include <cstdint>

namespace webslice {
namespace trace {

/** Register ids are per-thread virtual registers; kNoReg means "none". */
using RegId = uint16_t;
constexpr RegId kNoReg = 0xFFFF;

/** Static program counters; assigned per traced emission site. */
using Pc = uint32_t;
constexpr Pc kNoPc = 0;

/** Thread ids within the traced process. */
using ThreadId = uint16_t;

/** Classification of a trace record. */
enum class RecordKind : uint8_t
{
    /** Register-to-register computation: rw <- f(rr0, rr1). */
    Alu = 0,
    /** Immediate/constant producer: rw <- imm (no dependencies). */
    LoadImm,
    /** Memory load: rw <- mem[addr, size]; rr0 optionally the address
     *  base register. */
    Load,
    /** Memory store: mem[addr, size] <- rr0; rr1 optionally the address
     *  base register. */
    Store,
    /** Conditional branch on rr0; addr = taken-target pc;
     *  kFlagTaken set when taken. */
    Branch,
    /** Unconditional direct jump; addr = target pc. */
    Jump,
    /** Call; addr = callee entry pc; rr0 = target register when
     *  kFlagIndirect. */
    Call,
    /** Return to the matching call's continuation. */
    Ret,
    /** System call; aux = syscall number; effect records follow. */
    Syscall,
    /** Pseudo-record: the preceding syscall reads mem[addr, size]. */
    SyscallRead,
    /** Pseudo-record: the preceding syscall writes mem[addr, size]. */
    SyscallWrite,
    /** The planted criteria marker ("xchg %r13w,%r13w" in the paper);
     *  aux = marker ordinal, matched against the criteria sidecar file. */
    Marker,
};

/** Record flag bits. */
enum RecordFlags : uint8_t
{
    kFlagTaken = 1 << 0,    ///< Branch was taken.
    kFlagIndirect = 1 << 1, ///< Call/jump target came from a register.
};

/**
 * A fixed 32-byte trace record. The same struct is the on-disk format
 * (little-endian, which is the only platform we target).
 */
struct Record
{
    uint64_t addr = 0;  ///< Memory address, or control-transfer target pc.
    Pc pc = kNoPc;      ///< Static pc of the instruction.
    uint32_t aux = 0;   ///< Memory size, syscall number, or marker ordinal.
    ThreadId tid = 0;   ///< Executing thread.
    RecordKind kind = RecordKind::Alu;
    uint8_t flags = 0;
    RegId rr0 = kNoReg; ///< First register read.
    RegId rr1 = kNoReg; ///< Second register read.
    RegId rr2 = kNoReg; ///< Third register read (select, indexed stores).
    RegId rw = kNoReg;  ///< Register written.

    /**
     * Explicit tail padding, always zero. Without it the compiler pads
     * the struct to 32 bytes with garbage, and since the struct is the
     * on-disk format verbatim, recordings of the same session would not
     * be byte-identical — which the scenario subsystem's reproducibility
     * contract (and CI's digest comparisons) depend on. Readers ignore
     * it, so traces written before this field existed still load.
     */
    uint32_t reserved = 0;

    /** True for pseudo-records that are not executed instructions. */
    bool
    isPseudo() const
    {
        return kind == RecordKind::SyscallRead ||
               kind == RecordKind::SyscallWrite;
    }

    /** True for records that transfer control. */
    bool
    isControl() const
    {
        return kind == RecordKind::Branch || kind == RecordKind::Jump ||
               kind == RecordKind::Call || kind == RecordKind::Ret;
    }

    bool taken() const { return flags & kFlagTaken; }
    bool indirect() const { return flags & kFlagIndirect; }
};

static_assert(sizeof(Record) == 32, "trace records must stay 32 bytes");

} // namespace trace
} // namespace webslice

#endif // WEBSLICE_TRACE_RECORD_HH
