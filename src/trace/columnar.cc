#include "trace/columnar.hh"

#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>
#define WEBSLICE_HAVE_PREAD 1
#endif

#include <unordered_set>

#include "support/logging.hh"
#include "support/lz.hh"
#include "support/metrics.hh"
#include "trace/trace_file.hh"

namespace webslice {
namespace trace {

namespace {

constexpr uint8_t kMaxKind = static_cast<uint8_t>(RecordKind::Marker);
constexpr uint8_t kAllFlags = kFlagTaken | kFlagIndirect;

/** Register column mapping: kNoReg <-> 0, reg <-> reg + 1. */
uint64_t
regToColumn(RegId reg)
{
    return reg == kNoReg ? 0 : static_cast<uint64_t>(reg) + 1;
}

bool
regFromColumn(uint64_t v, RegId &out)
{
    if (v == 0) {
        out = kNoReg;
        return true;
    }
    if (v > 0xFFFF)
        return false;
    out = static_cast<RegId>(v - 1);
    return out != kNoReg;
}

/**
 * `trace.bytes_on_disk` totals the on-disk footprint of distinct trace
 * files this process has opened (both formats); repeated opens of the
 * same file must not double-count, so identities are remembered.
 */
std::mutex seenTracesMutex;
std::unordered_set<uint64_t> seenTraces;

} // namespace

void
noteTraceBytesOnDisk(uint64_t identity, uint64_t bytes)
{
    {
        std::lock_guard<std::mutex> lock(seenTracesMutex);
        if (!seenTraces.insert(identity).second)
            return;
    }
    MetricRegistry::global().counter("trace.bytes_on_disk").add(bytes);
}

uint64_t
traceFileIdentity(const std::string &path, uint64_t file_bytes)
{
    uint64_t identity = kFnv1a64Offset;
#ifdef WEBSLICE_HAVE_PREAD
    struct stat st;
    if (::stat(path.c_str(), &st) == 0) {
        identity = fnv1a64(&st.st_dev, sizeof(st.st_dev), identity);
        identity = fnv1a64(&st.st_ino, sizeof(st.st_ino), identity);
        identity = fnv1a64(&st.st_size, sizeof(st.st_size), identity);
        identity = fnv1a64(&st.st_mtime, sizeof(st.st_mtime), identity);
        return identity;
    }
#endif
    identity = fnv1a64(path.data(), path.size(), identity);
    identity = fnv1a64(&file_bytes, sizeof(file_bytes), identity);
    return identity;
}

void
putVarint(uint64_t v, std::vector<uint8_t> &out)
{
    while (v >= 0x80) {
        out.push_back(static_cast<uint8_t>(v) | 0x80);
        v >>= 7;
    }
    out.push_back(static_cast<uint8_t>(v));
}

bool
getVarint(const uint8_t *&p, const uint8_t *end, uint64_t &v)
{
    v = 0;
    unsigned shift = 0;
    while (p < end) {
        const uint8_t b = *p++;
        if (shift == 63 && (b & 0x7F) > 1)
            return false; // would overflow 64 bits
        v |= static_cast<uint64_t>(b & 0x7F) << shift;
        if (!(b & 0x80))
            return true;
        shift += 7;
        if (shift > 63)
            return false;
    }
    return false; // truncated
}

// ---- block codec -------------------------------------------------------

namespace {

/** Column ids, in payload order. */
enum Column
{
    kColKindFlags = 0,
    kColPc,
    kColAddr,
    kColAux,
    kColTid,
    kColRr0,
    kColRr1,
    kColRr2,
    kColRw,
    kColumnCount,
};

void
putDelta(uint64_t cur, uint64_t &prev, std::vector<uint8_t> &col)
{
    putVarint(zigzag(static_cast<int64_t>(cur - prev)), col);
    prev = cur;
}

} // namespace

uint32_t
encodeV2Block(const Record *records, size_t count, V2Checkpoint &state,
              std::vector<uint8_t> &out)
{
    std::vector<uint8_t> cols[kColumnCount];
    uint64_t prev_pc = state.prevPc;
    uint64_t prev_addr = state.prevAddr;
    uint64_t prev_aux = state.prevAux;
    uint64_t prev_tid = state.prevTid;
    for (size_t i = 0; i < count; ++i) {
        const Record &rec = records[i];
        const uint8_t kind = static_cast<uint8_t>(rec.kind);
        panic_if(kind > kMaxKind || (rec.flags & ~kAllFlags),
                 "record kind/flags out of encodable range: kind ",
                 unsigned{kind}, " flags ", unsigned{rec.flags});
        cols[kColKindFlags].push_back(
            static_cast<uint8_t>(kind | (rec.flags << 4)));
        putDelta(rec.pc, prev_pc, cols[kColPc]);
        putDelta(rec.addr, prev_addr, cols[kColAddr]);
        putDelta(rec.aux, prev_aux, cols[kColAux]);
        putDelta(rec.tid, prev_tid, cols[kColTid]);
        putVarint(regToColumn(rec.rr0), cols[kColRr0]);
        putVarint(regToColumn(rec.rr1), cols[kColRr1]);
        putVarint(regToColumn(rec.rr2), cols[kColRr2]);
        putVarint(regToColumn(rec.rw), cols[kColRw]);
    }
    state.prevPc = static_cast<uint32_t>(prev_pc);
    state.prevAddr = prev_addr;
    state.prevAux = static_cast<uint32_t>(prev_aux);
    state.prevTid = static_cast<uint16_t>(prev_tid);

    std::vector<uint8_t> raw;
    raw.reserve(count * 10 + 64);
    putVarint(count, raw);
    for (const auto &col : cols) {
        putVarint(col.size(), raw);
        raw.insert(raw.end(), col.begin(), col.end());
    }
    lzCompress(raw.data(), raw.size(), out);
    return static_cast<uint32_t>(raw.size());
}

void
decodeV2Block(const uint8_t *payload, size_t encoded_bytes,
              size_t raw_bytes, size_t expect_records,
              const V2Checkpoint &checkpoint, std::vector<Record> &out,
              const std::string &context)
{
    std::vector<uint8_t> raw(raw_bytes);
    fatal_if(!lzDecompress(payload, encoded_bytes, raw.data(), raw_bytes),
             "corrupt compressed trace block in ", context,
             ": LZ stream does not decode to the ", raw_bytes,
             " bytes the index claims");

    const uint8_t *p = raw.data();
    const uint8_t *const end = p + raw.size();
    uint64_t count = 0;
    fatal_if(!getVarint(p, end, count) || count != expect_records,
             "corrupt trace block in ", context, ": payload claims ",
             count, " records, index claims ", expect_records);

    // Column extents are declared up front; every decode below is
    // bounds-checked against its own column, so a corrupt length in
    // one column cannot bleed reads into the next.
    const uint8_t *col[kColumnCount];
    const uint8_t *col_end[kColumnCount];
    for (int c = 0; c < kColumnCount; ++c) {
        uint64_t len = 0;
        fatal_if(!getVarint(p, end, len) ||
                 len > static_cast<uint64_t>(end - p),
                 "corrupt trace block in ", context, ": column ", c,
                 " overruns the payload");
        col[c] = p;
        col_end[c] = p + len;
        p += len;
    }
    fatal_if(p != end, "corrupt trace block in ", context, ": ",
             end - p, " trailing payload bytes after the last column");

    out.clear();
    out.reserve(count);
    uint64_t prev_pc = checkpoint.prevPc;
    uint64_t prev_addr = checkpoint.prevAddr;
    uint64_t prev_aux = checkpoint.prevAux;
    uint64_t prev_tid = checkpoint.prevTid;
    const auto corrupt_column = [&](int c) {
        fatal_if(true, "corrupt trace block in ", context, ": column ",
                 c, " is truncated or malformed at record ", out.size());
    };
    const auto delta = [&](int c, uint64_t &prev) {
        uint64_t z = 0;
        if (!getVarint(col[c], col_end[c], z))
            corrupt_column(c);
        prev += static_cast<uint64_t>(unzigzag(z));
        return prev;
    };
    const auto reg = [&](int c) {
        uint64_t v = 0;
        RegId r = kNoReg;
        if (!getVarint(col[c], col_end[c], v) || !regFromColumn(v, r))
            corrupt_column(c);
        return r;
    };
    for (uint64_t i = 0; i < count; ++i) {
        Record rec;
        if (col[kColKindFlags] >= col_end[kColKindFlags])
            corrupt_column(kColKindFlags);
        const uint8_t kf = *col[kColKindFlags]++;
        const uint8_t kind = kf & 0x0F;
        const uint8_t flags = kf >> 4;
        fatal_if(kind > kMaxKind || (flags & ~kAllFlags),
                 "corrupt trace block in ", context,
                 ": undecodable kind/flags byte 0x", kf, " at record ",
                 i);
        rec.kind = static_cast<RecordKind>(kind);
        rec.flags = flags;
        const uint64_t pc = delta(kColPc, prev_pc);
        const uint64_t aux = delta(kColAux, prev_aux);
        const uint64_t tid = delta(kColTid, prev_tid);
        fatal_if(pc > 0xFFFFFFFFull || aux > 0xFFFFFFFFull ||
                 tid > 0xFFFFull,
                 "corrupt trace block in ", context,
                 ": delta column leaves field range at record ", i);
        rec.pc = static_cast<Pc>(pc);
        rec.addr = delta(kColAddr, prev_addr);
        rec.aux = static_cast<uint32_t>(aux);
        rec.tid = static_cast<ThreadId>(tid);
        rec.rr0 = reg(kColRr0);
        rec.rr1 = reg(kColRr1);
        rec.rr2 = reg(kColRr2);
        rec.rw = reg(kColRw);
        out.push_back(rec);
    }
    for (int c = 0; c < kColumnCount; ++c) {
        fatal_if(col[c] != col_end[c], "corrupt trace block in ", context,
                 ": column ", c, " has ", col_end[c] - col[c],
                 " undecoded trailing bytes");
    }

    auto &registry = MetricRegistry::global();
    registry.counter("trace.blocks_decoded").add();
    registry.counter("trace.bytes_decoded")
        .add(out.size() * sizeof(Record));
}

// ---- V2TraceFile -------------------------------------------------------

V2TraceFile::V2TraceFile(const std::string &path) : path_(path)
{
    uint64_t file_bytes = 0;
#ifdef WEBSLICE_HAVE_PREAD
    fd_ = ::open(path.c_str(), O_RDONLY);
    fatal_if(fd_ < 0, "cannot open trace file ", path);
    struct stat st;
    fatal_if(::fstat(fd_, &st) != 0, "cannot stat trace file ", path);
    file_bytes = static_cast<uint64_t>(st.st_size);
#else
    file_ = std::fopen(path.c_str(), "rb");
    fatal_if(!file_, "cannot open trace file ", path);
    fatal_if(std::fseek(file_, 0, SEEK_END) != 0,
             "cannot seek in trace file ", path);
    file_bytes = static_cast<uint64_t>(std::ftell(file_));
#endif

    const auto read_at = [&](void *out, size_t size, uint64_t offset,
                             const char *what) {
#ifdef WEBSLICE_HAVE_PREAD
        const ssize_t got =
            ::pread(fd_, out, size, static_cast<off_t>(offset));
        fatal_if(got != static_cast<ssize_t>(size), "cannot read ", what,
                 " from trace file ", path, " at offset ", offset);
#else
        fatal_if(std::fseek(file_, static_cast<long>(offset), SEEK_SET) !=
                 0, "cannot seek in trace file ", path);
        fatal_if(std::fread(out, size, 1, file_) != 1, "cannot read ",
                 what, " from trace file ", path, " at offset ", offset);
#endif
    };

    fatal_if(file_bytes < sizeof(V2Header),
             "trace file too small for a v2 header: ", path, " (",
             file_bytes, " of ", sizeof(V2Header), " bytes)");
    V2Header header;
    read_at(&header, sizeof(header), 0, "header");
    V2Header expect;
    fatal_if(std::memcmp(header.magic, expect.magic,
                         sizeof(expect.magic)) != 0,
             "bad trace magic in ", path);

    // The index is the file's tail; its location pins every size check.
    V2IndexHeader index_header;
    fatal_if(header.indexOffset < sizeof(V2Header) ||
             header.indexOffset + sizeof(V2IndexHeader) > file_bytes,
             "corrupt trace block index in ", path,
             ": index offset ", header.indexOffset,
             " outside the file (", file_bytes, " bytes)");
    read_at(&index_header, sizeof(index_header), header.indexOffset,
            "block index header");
    V2IndexHeader expect_index;
    fatal_if(std::memcmp(index_header.magic, expect_index.magic,
                         sizeof(expect_index.magic)) != 0,
             "corrupt trace block index in ", path,
             ": bad index magic at offset ", header.indexOffset);
    fatal_if(index_header.blockRecords == 0,
             "corrupt trace block index in ", path,
             ": zero records per block");
    const uint64_t blocks =
        (header.recordCount + index_header.blockRecords - 1) /
        index_header.blockRecords;
    fatal_if(index_header.blockCount != blocks,
             "corrupt trace block index in ", path, ": index claims ",
             index_header.blockCount, " blocks, trace geometry implies ",
             blocks);
    const uint64_t index_end = header.indexOffset +
                               sizeof(V2IndexHeader) +
                               blocks * sizeof(V2BlockEntry);
    fatal_if(index_end != file_bytes, "corrupt trace file ", path,
             ": file ends at offset ", file_bytes,
             ", index geometry implies ", index_end);

    index_.recordCount = header.recordCount;
    index_.blockRecords = index_header.blockRecords;
    index_.blocks.resize(blocks);
    if (blocks > 0) {
        read_at(index_.blocks.data(), blocks * sizeof(V2BlockEntry),
                header.indexOffset + sizeof(V2IndexHeader),
                "block index entries");
    }

    // Entries must tile [header, indexOffset) exactly, in order, and
    // their record counts must tile the record space.
    uint64_t offset = sizeof(V2Header);
    uint64_t records = 0;
    for (size_t b = 0; b < index_.blocks.size(); ++b) {
        const V2BlockEntry &entry = index_.blocks[b];
        fatal_if(entry.fileOffset != offset,
                 "corrupt trace block index in ", path, ": block ", b,
                 " claims offset ", entry.fileOffset, ", expected ",
                 offset);
        fatal_if(entry.encodedBytes == 0 ||
                 offset + entry.encodedBytes > header.indexOffset,
                 "corrupt trace block index in ", path, ": block ", b,
                 " payload overruns the index at offset ",
                 header.indexOffset);
        const uint64_t expect_records =
            b + 1 < blocks
                ? index_.blockRecords
                : header.recordCount - b * index_.blockRecords;
        fatal_if(entry.records != expect_records,
                 "corrupt trace block index in ", path, ": block ", b,
                 " claims ", entry.records, " records, geometry implies ",
                 expect_records);
        fatal_if(entry.instructions + entry.pseudoRecords !=
                 entry.records,
                 "corrupt trace block index in ", path, ": block ", b,
                 " counts ", entry.instructions, " + ",
                 entry.pseudoRecords, " records against ", entry.records);
        offset += entry.encodedBytes;
        records += entry.records;
    }
    fatal_if(offset != header.indexOffset,
             "corrupt trace block index in ", path, ": blocks end at ",
             offset, ", index starts at ", header.indexOffset);
    fatal_if(records != header.recordCount,
             "corrupt trace block index in ", path, ": blocks carry ",
             records, " records, header claims ", header.recordCount);

    cacheKey_ = traceFileIdentity(path, file_bytes);
    noteTraceBytesOnDisk(cacheKey_, file_bytes);
}

V2TraceFile::~V2TraceFile()
{
#ifdef WEBSLICE_HAVE_PREAD
    if (fd_ >= 0)
        ::close(fd_);
#endif
    if (file_)
        std::fclose(file_);
}

void
V2TraceFile::decodeBlock(size_t b, std::vector<Record> &out) const
{
    panic_if(b >= index_.blocks.size(), "v2 block ", b, " out of range");
    const V2BlockEntry &entry = index_.blocks[b];
    std::vector<uint8_t> payload(entry.encodedBytes);
#ifdef WEBSLICE_HAVE_PREAD
    const ssize_t got = ::pread(fd_, payload.data(), payload.size(),
                                static_cast<off_t>(entry.fileOffset));
    fatal_if(got != static_cast<ssize_t>(payload.size()),
             "cannot read block ", b, " from trace file ", path_,
             " at offset ", entry.fileOffset);
#else
    {
        std::lock_guard<std::mutex> lock(fileMutex_);
        fatal_if(std::fseek(file_, static_cast<long>(entry.fileOffset),
                            SEEK_SET) != 0,
                 "cannot seek in trace file ", path_);
        fatal_if(std::fread(payload.data(), payload.size(), 1, file_) !=
                 1, "cannot read block ", b, " from trace file ", path_,
                 " at offset ", entry.fileOffset);
    }
#endif
    const std::string context = path_ + " (block " +
                                std::to_string(b) + " at offset " +
                                std::to_string(entry.fileOffset) + ")";
    decodeV2Block(payload.data(), payload.size(), entry.rawBytes,
                  entry.records, entry.checkpoint, out, context);
}

// ---- TraceDecodeCache --------------------------------------------------

TraceDecodeCache &
TraceDecodeCache::global()
{
    static TraceDecodeCache cache;
    return cache;
}

void
TraceDecodeCache::setBudget(uint64_t bytes)
{
    std::lock_guard<std::mutex> lock(mutex_);
    budget_ = bytes;
    evictLocked();
}

uint64_t
TraceDecodeCache::budget() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return budget_;
}

std::shared_ptr<const std::vector<Record>>
TraceDecodeCache::acquire(const V2TraceFile &file, size_t b)
{
    const Key key{file.cacheKey(), b};
    auto &registry = MetricRegistry::global();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = entries_.find(key);
        if (it != entries_.end()) {
            ++counters_.hits;
            registry.counter("trace.block_cache_hits").add();
            lru_.erase(it->second.lruIt);
            lru_.push_front(key);
            it->second.lruIt = lru_.begin();
            return it->second.block;
        }
        ++counters_.misses;
        registry.counter("trace.block_cache_misses").add();
    }

    // Decode outside the lock: a concurrent miss on the same block may
    // decode twice, but never blocks every other reader on the decode.
    auto block = std::make_shared<std::vector<Record>>();
    file.decodeBlock(b, *block);

    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    if (it != entries_.end())
        return it->second.block; // racer inserted first; keep theirs
    CacheEntry entry;
    entry.block = block;
    entry.bytes = block->size() * sizeof(Record);
    lru_.push_front(key);
    entry.lruIt = lru_.begin();
    bytes_ += entry.bytes;
    entries_.emplace(key, std::move(entry));
    evictLocked();
    return block;
}

void
TraceDecodeCache::evictLocked()
{
    while (bytes_ > budget_ && lru_.size() > 1) {
        const Key victim = lru_.back();
        auto it = entries_.find(victim);
        bytes_ -= it->second.bytes;
        entries_.erase(it);
        lru_.pop_back();
        ++counters_.evictions;
        MetricRegistry::global()
            .counter("trace.block_cache_evictions")
            .add();
    }
}

void
TraceDecodeCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
    lru_.clear();
    bytes_ = 0;
}

TraceDecodeCache::Stats
TraceDecodeCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    Stats out = counters_;
    out.entries = entries_.size();
    out.bytes = bytes_;
    return out;
}

// ---- V2WriterBackend ---------------------------------------------------

V2WriterBackend::V2WriterBackend(std::FILE *file, std::string path)
    : file_(file), path_(std::move(path))
{
    V2Header header; // counts and index offset patched in finish()
    fatal_if(std::fwrite(&header, sizeof(header), 1, file_) != 1,
             "cannot write trace header to ", path_);
    index_.blockRecords = kTraceIndexBlockRecords;
    block_.reserve(kTraceIndexBlockRecords);
}

void
V2WriterBackend::append(const Record &rec)
{
    block_.push_back(rec);
    if (block_.size() >= kTraceIndexBlockRecords)
        flushBlock();
}

void
V2WriterBackend::flushBlock()
{
    if (block_.empty())
        return;
    V2BlockEntry entry;
    entry.fileOffset = sizeof(V2Header);
    for (const V2BlockEntry &prev : index_.blocks)
        entry.fileOffset += prev.encodedBytes;
    entry.checkpoint = state_;
    entry.records = static_cast<uint32_t>(block_.size());
    for (const Record &rec : block_) {
        if (rec.isPseudo())
            ++entry.pseudoRecords;
        else
            ++entry.instructions;
    }
    encoded_.clear();
    entry.rawBytes =
        encodeV2Block(block_.data(), block_.size(), state_, encoded_);
    entry.encodedBytes = static_cast<uint32_t>(encoded_.size());
    fatal_if(std::fwrite(encoded_.data(), 1, encoded_.size(), file_) !=
             encoded_.size(), "short write to trace file ", path_);
    written_ += block_.size();
    index_.blocks.push_back(entry);
    block_.clear();
}

void
V2WriterBackend::finish()
{
    flushBlock();
    uint64_t index_offset = sizeof(V2Header);
    for (const V2BlockEntry &entry : index_.blocks)
        index_offset += entry.encodedBytes;

    V2IndexHeader index_header;
    index_header.blockRecords = index_.blockRecords;
    index_header.blockCount = index_.blocks.size();
    fatal_if(std::fwrite(&index_header, sizeof(index_header), 1, file_) !=
             1, "cannot write trace block index to ", path_);
    if (!index_.blocks.empty()) {
        fatal_if(std::fwrite(index_.blocks.data(), sizeof(V2BlockEntry),
                             index_.blocks.size(),
                             file_) != index_.blocks.size(),
                 "cannot write trace block index to ", path_);
    }

    V2Header header;
    header.recordCount = written_;
    header.indexOffset = index_offset;
    fatal_if(std::fseek(file_, 0, SEEK_SET) != 0,
             "cannot seek in trace file ", path_);
    fatal_if(std::fwrite(&header, sizeof(header), 1, file_) != 1,
             "cannot patch trace header in ", path_);
}

} // namespace trace
} // namespace webslice
