#include "trace/symtab.hh"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "support/logging.hh"
#include "support/metrics.hh"
#include "support/strings.hh"

namespace webslice {
namespace trace {

FuncId
SymbolTable::addFunction(Pc entry_pc, std::string name)
{
    panic_if(byEntry_.count(entry_pc),
             "duplicate function entry pc ", entry_pc, " for ", name);
    Symbol sym;
    sym.id = static_cast<FuncId>(symbols_.size());
    sym.entryPc = entry_pc;
    sym.name = std::move(name);
    byEntry_[entry_pc] = sym.id;
    pcOwner_[entry_pc] = sym.id;
    symbols_.push_back(std::move(sym));
    return symbols_.back().id;
}

FuncId
SymbolTable::functionAtEntry(Pc entry_pc) const
{
    auto it = byEntry_.find(entry_pc);
    return it == byEntry_.end() ? kNoFunc : it->second;
}

void
SymbolTable::assignPc(Pc pc, FuncId func)
{
    pcOwner_.emplace(pc, func);
}

FuncId
SymbolTable::functionOfPc(Pc pc) const
{
    auto it = pcOwner_.find(pc);
    return it == pcOwner_.end() ? kNoFunc : it->second;
}

const Symbol &
SymbolTable::symbol(FuncId id) const
{
    panic_if(id >= symbols_.size(), "bad function id ", id);
    return symbols_[id];
}

void
SymbolTable::save(const std::string &path) const
{
    std::ofstream out(path);
    fatal_if(!out, "cannot write symbol table to ", path);
    out << "websym 1\n";
    out << symbols_.size() << '\n';
    for (const auto &sym : symbols_)
        out << sym.id << ' ' << sym.entryPc << ' ' << sym.name << '\n';
    out << pcOwner_.size() << '\n';
    for (const auto &kv : pcOwner_)
        out << kv.first << ' ' << kv.second << '\n';
    fatal_if(!out, "short write saving symbol table to ", path);
}

void
SymbolTable::load(const std::string &path)
{
    std::ifstream in(path);
    fatal_if(!in, "cannot read symbol table from ", path);

    // Line-based parsing with a running line counter: truncation or a
    // malformed entry anywhere in the file fails with the offending line
    // instead of silently yielding a partial table.
    std::string line;
    size_t lineno = 0;
    const auto next_line = [&]() -> bool {
        if (!std::getline(in, line))
            return false;
        ++lineno;
        return true;
    };

    fatal_if(!next_line(), "empty symbol table in ", path);
    {
        std::istringstream fields(line);
        std::string magic;
        int version = 0;
        fields >> magic >> version;
        fatal_if(magic != "websym" || version != 1,
                 "bad symbol table header in ", path, " line 1: '", line,
                 "'");
    }

    symbols_.clear();
    byEntry_.clear();
    pcOwner_.clear();

    size_t nfuncs = 0;
    fatal_if(!next_line(), "truncated symbol table in ", path,
             ": missing function count after line ", lineno);
    {
        std::istringstream fields(line);
        fatal_if(!(fields >> nfuncs), "malformed function count in ", path,
                 " line ", lineno, ": '", line, "'");
    }
    symbols_.reserve(nfuncs);
    for (size_t i = 0; i < nfuncs; ++i) {
        fatal_if(!next_line(), "truncated symbol table in ", path,
                 ": expected ", nfuncs, " functions, got ", i,
                 " (file ends after line ", lineno, ")");
        std::istringstream fields(line);
        Symbol sym;
        fatal_if(!(fields >> sym.id >> sym.entryPc),
                 "malformed symbol entry in ", path, " line ", lineno,
                 ": '", line, "'");
        std::getline(fields, sym.name);
        sym.name = std::string(trim(sym.name));
        fatal_if(sym.id != i, "non-contiguous function ids in ", path,
                 " line ", lineno, ": expected id ", i, ", got ", sym.id);
        byEntry_[sym.entryPc] = sym.id;
        symbols_.push_back(std::move(sym));
    }

    size_t npcs = 0;
    fatal_if(!next_line(), "truncated symbol table in ", path,
             ": missing pc-owner count after line ", lineno);
    {
        std::istringstream fields(line);
        fatal_if(!(fields >> npcs), "malformed pc-owner count in ", path,
                 " line ", lineno, ": '", line, "'");
    }
    for (size_t i = 0; i < npcs; ++i) {
        fatal_if(!next_line(), "truncated symbol table in ", path,
                 ": expected ", npcs, " pc owners, got ", i,
                 " (file ends after line ", lineno, ")");
        std::istringstream fields(line);
        Pc pc;
        FuncId func;
        fatal_if(!(fields >> pc >> func), "malformed pc-owner entry in ",
                 path, " line ", lineno, ": '", line, "'");
        std::string extra;
        fatal_if(static_cast<bool>(fields >> extra),
                 "trailing garbage in ", path, " line ", lineno, ": '",
                 line, "'");
        pcOwner_[pc] = func;
    }
    while (next_line()) {
        fatal_if(!std::string(trim(line)).empty(),
                 "trailing garbage in ", path, " line ", lineno, ": '",
                 line, "'");
    }

    auto &registry = MetricRegistry::global();
    registry.counter("symtab.functions_loaded").add(symbols_.size());
    registry.counter("symtab.pcs_loaded").add(pcOwner_.size());
}

} // namespace trace
} // namespace webslice
