#include "trace/symtab.hh"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "support/logging.hh"
#include "support/strings.hh"

namespace webslice {
namespace trace {

FuncId
SymbolTable::addFunction(Pc entry_pc, std::string name)
{
    panic_if(byEntry_.count(entry_pc),
             "duplicate function entry pc ", entry_pc, " for ", name);
    Symbol sym;
    sym.id = static_cast<FuncId>(symbols_.size());
    sym.entryPc = entry_pc;
    sym.name = std::move(name);
    byEntry_[entry_pc] = sym.id;
    pcOwner_[entry_pc] = sym.id;
    symbols_.push_back(std::move(sym));
    return symbols_.back().id;
}

FuncId
SymbolTable::functionAtEntry(Pc entry_pc) const
{
    auto it = byEntry_.find(entry_pc);
    return it == byEntry_.end() ? kNoFunc : it->second;
}

void
SymbolTable::assignPc(Pc pc, FuncId func)
{
    pcOwner_.emplace(pc, func);
}

FuncId
SymbolTable::functionOfPc(Pc pc) const
{
    auto it = pcOwner_.find(pc);
    return it == pcOwner_.end() ? kNoFunc : it->second;
}

const Symbol &
SymbolTable::symbol(FuncId id) const
{
    panic_if(id >= symbols_.size(), "bad function id ", id);
    return symbols_[id];
}

void
SymbolTable::save(const std::string &path) const
{
    std::ofstream out(path);
    fatal_if(!out, "cannot write symbol table to ", path);
    out << "websym 1\n";
    out << symbols_.size() << '\n';
    for (const auto &sym : symbols_)
        out << sym.id << ' ' << sym.entryPc << ' ' << sym.name << '\n';
    out << pcOwner_.size() << '\n';
    for (const auto &kv : pcOwner_)
        out << kv.first << ' ' << kv.second << '\n';
    fatal_if(!out, "short write saving symbol table to ", path);
}

void
SymbolTable::load(const std::string &path)
{
    std::ifstream in(path);
    fatal_if(!in, "cannot read symbol table from ", path);

    std::string magic;
    int version = 0;
    in >> magic >> version;
    fatal_if(magic != "websym" || version != 1,
             "bad symbol table header in ", path);

    symbols_.clear();
    byEntry_.clear();
    pcOwner_.clear();

    size_t nfuncs = 0;
    in >> nfuncs;
    symbols_.reserve(nfuncs);
    for (size_t i = 0; i < nfuncs; ++i) {
        Symbol sym;
        in >> sym.id >> sym.entryPc;
        std::getline(in, sym.name);
        sym.name = std::string(trim(sym.name));
        fatal_if(sym.id != i, "non-contiguous function ids in ", path);
        byEntry_[sym.entryPc] = sym.id;
        symbols_.push_back(std::move(sym));
    }

    size_t npcs = 0;
    in >> npcs;
    for (size_t i = 0; i < npcs; ++i) {
        Pc pc;
        FuncId func;
        in >> pc >> func;
        pcOwner_[pc] = func;
    }
    fatal_if(!in, "truncated symbol table in ", path);
}

} // namespace trace
} // namespace webslice
