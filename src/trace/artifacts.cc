#include "trace/artifacts.hh"

#include <iomanip>
#include <sstream>

namespace webslice {
namespace trace {

namespace {

/** Artifact extensions in report order; .val last because optional. */
const char *const kRequiredExtensions[] = {".trc", ".sym", ".crit",
                                           ".meta"};
constexpr char kValuesExtension[] = ".val";

} // namespace

ArtifactSidecars
loadArtifactSidecars(const std::string &prefix)
{
    ArtifactSidecars sidecars;
    sidecars.symtab.load(prefix + ".sym");
    sidecars.criteria.load(prefix + ".crit");
    sidecars.meta = loadRunMeta(prefix + ".meta");
    return sidecars;
}

std::vector<ArtifactDigest>
digestArtifacts(const std::string &prefix, bool include_values)
{
    std::vector<ArtifactDigest> digests;
    for (const char *ext : kRequiredExtensions) {
        const std::string path = prefix + ext;
        digests.push_back({path, digestFile(path)});
    }
    if (include_values) {
        const std::string path = prefix + kValuesExtension;
        digests.push_back({path, digestFile(path)});
    }
    return digests;
}

uint64_t
combinedArtifactDigest(const std::vector<ArtifactDigest> &digests)
{
    uint64_t hash = kFnv1a64Offset;
    for (const ArtifactDigest &entry : digests) {
        // Fold presence first so "file appeared" differs from "file
        // with the same bytes was already there".
        const uint8_t present = entry.digest.ok ? 1 : 0;
        hash = fnv1a64(&present, 1, hash);
        if (!entry.digest.ok)
            continue;
        hash = fnv1a64(&entry.digest.bytes, sizeof(entry.digest.bytes),
                       hash);
        hash = fnv1a64(&entry.digest.fnv1a, sizeof(entry.digest.fnv1a),
                       hash);
    }
    return hash;
}

std::string
artifactDigestsJson(const std::string &prefix, bool include_values)
{
    const auto digests = digestArtifacts(prefix, include_values);
    std::ostringstream out;
    out << "{\n";
    bool first = true;
    for (const ArtifactDigest &entry : digests) {
        if (!first)
            out << ",\n";
        first = false;
        out << "    \"" << jsonEscape(entry.path) << "\": ";
        if (!entry.digest.ok) {
            out << "null";
            continue;
        }
        out << "{\"bytes\": " << entry.digest.bytes
            << ", \"fnv1a64\": \"0x" << std::hex << std::setw(16)
            << std::setfill('0') << entry.digest.fnv1a << std::dec
            << std::setfill(' ') << "\"}";
    }
    out << "\n  }";
    return out.str();
}

} // namespace trace
} // namespace webslice
