/**
 * @file
 * One recording's artifact bundle: the <prefix>.trc/.sym/.crit/.meta
 * files webslice-record hands to every offline consumer, plus the
 * optional <prefix>.val value log.
 *
 * webslice-profile, webslice-check, and webslice-served all start from
 * the same ritual — load the three sidecars, note the run metadata, and
 * digest every artifact for the report — so it lives here once instead
 * of being pasted into each front end. The digests double as the
 * session-cache key in the service: two prefixes with identical digests
 * are the same recording, and a changed file on disk is a different one.
 */

#ifndef WEBSLICE_TRACE_ARTIFACTS_HH
#define WEBSLICE_TRACE_ARTIFACTS_HH

#include <string>
#include <utility>
#include <vector>

#include "support/metrics.hh"
#include "trace/criteria.hh"
#include "trace/run_meta.hh"
#include "trace/symtab.hh"

namespace webslice {
namespace trace {

/** The non-trace sidecars of one recording, loaded together. */
struct ArtifactSidecars
{
    SymbolTable symtab;
    CriteriaSet criteria;
    RunMeta meta;
};

/**
 * Load <prefix>.sym, <prefix>.crit, and <prefix>.meta. Each loader
 * keeps its own loud failure behavior (file + offset/line on
 * truncation or garbage); a missing .meta stays legal.
 */
ArtifactSidecars loadArtifactSidecars(const std::string &prefix);

/** (path, digest) for each artifact of a recording, in a fixed order. */
struct ArtifactDigest
{
    std::string path;
    FileDigest digest;
};

/**
 * Digest the artifact files of `prefix`: .trc, .sym, .crit, .meta, and
 * (with include_values) .val. Unreadable files keep digest.ok == false
 * rather than failing, so optional sidecars report as absent.
 */
std::vector<ArtifactDigest> digestArtifacts(const std::string &prefix,
                                            bool include_values = false);

/**
 * Fold a digest list into one FNV-1a-64 identity for the whole
 * recording. Any changed byte in any artifact changes the fold; a
 * missing-but-listed artifact contributes a fixed marker so presence
 * changes are visible too.
 */
uint64_t combinedArtifactDigest(const std::vector<ArtifactDigest> &digests);

/**
 * The digests as the JSON object both metrics reports embed: path ->
 * {"bytes": N, "fnv1a64": "0x..."} with null for unreadable files.
 */
std::string artifactDigestsJson(const std::string &prefix,
                                bool include_values = false);

} // namespace trace
} // namespace webslice

#endif // WEBSLICE_TRACE_ARTIFACTS_HH
