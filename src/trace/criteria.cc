#include "trace/criteria.hh"

#include <fstream>

#include "support/logging.hh"

namespace webslice {
namespace trace {

void
CriteriaSet::add(uint32_t marker, uint64_t addr, uint64_t size)
{
    byMarker_[marker].push_back(MemRange{addr, size});
}

const std::vector<MemRange> &
CriteriaSet::forMarker(uint32_t marker) const
{
    auto it = byMarker_.find(marker);
    return it == byMarker_.end() ? empty_ : it->second;
}

uint64_t
CriteriaSet::totalBytes() const
{
    uint64_t total = 0;
    for (const auto &kv : byMarker_) {
        for (const auto &range : kv.second)
            total += range.size;
    }
    return total;
}

void
CriteriaSet::save(const std::string &path) const
{
    std::ofstream out(path);
    fatal_if(!out, "cannot write criteria file ", path);
    out << "webcrit 1\n";
    for (const auto &kv : byMarker_) {
        for (const auto &range : kv.second)
            out << kv.first << ' ' << range.addr << ' ' << range.size
                << '\n';
    }
    fatal_if(!out, "short write saving criteria file ", path);
}

void
CriteriaSet::load(const std::string &path)
{
    std::ifstream in(path);
    fatal_if(!in, "cannot read criteria file ", path);

    std::string magic;
    int version = 0;
    in >> magic >> version;
    fatal_if(magic != "webcrit" || version != 1,
             "bad criteria header in ", path);

    byMarker_.clear();
    uint32_t marker;
    uint64_t addr, size;
    while (in >> marker >> addr >> size)
        add(marker, addr, size);
}

} // namespace trace
} // namespace webslice
