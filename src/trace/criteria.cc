#include "trace/criteria.hh"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "support/logging.hh"
#include "support/metrics.hh"

namespace webslice {
namespace trace {

void
CriteriaSet::add(uint32_t marker, uint64_t addr, uint64_t size)
{
    if (size == 0) {
        warn("criteria marker ", marker, ": dropping empty range at ",
             addr);
        return;
    }

    // Coalesce overlapping and duplicate ranges so per-byte consumers
    // (the slicer's seeded-bytes counter, the soundness checker's
    // criterion byte-compare) see each criterion byte exactly once.
    // Overlap within one marker means the recorder described the same
    // buffer twice — legal, but worth a loud note.
    auto &ranges = byMarker_[marker];
    MemRange merged{addr, size};
    for (auto it = ranges.begin(); it != ranges.end();) {
        const bool overlaps = merged.addr < it->addr + it->size &&
                              it->addr < merged.addr + merged.size;
        if (!overlaps) {
            ++it;
            continue;
        }
        warn("criteria marker ", marker, ": range [", merged.addr, ", +",
             merged.size, ") overlaps existing [", it->addr, ", +",
             it->size, "); merging");
        MetricRegistry::global().counter("criteria.ranges_merged").add(1);
        const uint64_t lo = std::min(merged.addr, it->addr);
        const uint64_t hi = std::max(merged.addr + merged.size,
                                     it->addr + it->size);
        merged = MemRange{lo, hi - lo};
        it = ranges.erase(it);
    }
    ranges.push_back(merged);
}

size_t
CriteriaSet::splitBoundary(std::span<const Record> records, size_t proposed)
{
    if (proposed >= records.size())
        return proposed;
    size_t b = proposed;
    // Pseudo-record groups are bounded by the syscall argument count, so
    // a long walk means a malformed trace; cap it rather than crawl to
    // the front of the trace.
    constexpr size_t kMaxShift = 4096;
    while (b > 0 && records[b].isPseudo()) {
        fatal_if(proposed - b >= kMaxShift,
                 "runaway syscall pseudo-record group at trace index ",
                 proposed, "; trace is malformed");
        --b;
    }
    if (b != proposed) {
        warn("epoch boundary ", proposed, " splits a syscall group; ",
             "shifted to ", b);
        MetricRegistry::global()
            .counter("criteria.epoch_boundary_splits")
            .add(1);
    }
    return b;
}

const std::vector<MemRange> &
CriteriaSet::forMarker(uint32_t marker) const
{
    auto it = byMarker_.find(marker);
    return it == byMarker_.end() ? empty_ : it->second;
}

uint64_t
CriteriaSet::totalBytes() const
{
    uint64_t total = 0;
    for (const auto &kv : byMarker_) {
        for (const auto &range : kv.second)
            total += range.size;
    }
    return total;
}

std::vector<MemRange>
CriteriaSet::allRanges() const
{
    std::vector<uint32_t> markers;
    markers.reserve(byMarker_.size());
    for (const auto &kv : byMarker_)
        markers.push_back(kv.first);
    std::sort(markers.begin(), markers.end());
    std::vector<MemRange> out;
    for (const uint32_t marker : markers) {
        const auto &ranges = byMarker_.at(marker);
        out.insert(out.end(), ranges.begin(), ranges.end());
    }
    return out;
}

uint64_t
CriteriaSet::fingerprint() const
{
    std::vector<uint32_t> markers;
    markers.reserve(byMarker_.size());
    for (const auto &kv : byMarker_)
        markers.push_back(kv.first);
    std::sort(markers.begin(), markers.end());
    std::vector<uint64_t> words;
    words.reserve(1 + 3 * markers.size());
    words.push_back(markers.size());
    for (const uint32_t marker : markers) {
        words.push_back(marker);
        for (const auto &range : byMarker_.at(marker)) {
            words.push_back(range.addr);
            words.push_back(range.size);
        }
    }
    return fnv1a64(words.data(), words.size() * sizeof(uint64_t));
}

void
CriteriaSet::save(const std::string &path) const
{
    std::ofstream out(path);
    fatal_if(!out, "cannot write criteria file ", path);
    out << "webcrit 1\n";
    for (const auto &kv : byMarker_) {
        for (const auto &range : kv.second)
            out << kv.first << ' ' << range.addr << ' ' << range.size
                << '\n';
    }
    fatal_if(!out, "short write saving criteria file ", path);
}

void
CriteriaSet::load(const std::string &path)
{
    std::ifstream in(path);
    fatal_if(!in, "cannot read criteria file ", path);

    // Line-based parsing so every diagnostic carries the offending line
    // number: a malformed line mid-file must fail loudly, never read as
    // EOF — slicing with a partial criteria set produces a plausible but
    // wrong slice.
    std::string line;
    size_t lineno = 0;
    fatal_if(!std::getline(in, line),
             "empty criteria file ", path);
    ++lineno;
    {
        std::istringstream fields(line);
        std::string magic;
        int version = 0;
        fields >> magic >> version;
        fatal_if(magic != "webcrit" || version != 1,
                 "bad criteria header in ", path, " line 1: '", line, "'");
    }

    byMarker_.clear();
    uint64_t ranges = 0;
    while (std::getline(in, line)) {
        ++lineno;
        std::istringstream fields(line);
        uint32_t marker = 0;
        uint64_t addr = 0, size = 0;
        fields >> marker >> addr >> size;
        fatal_if(fields.fail(), "malformed criteria entry in ", path,
                 " line ", lineno, ": '", line, "'");
        std::string extra;
        fatal_if(static_cast<bool>(fields >> extra),
                 "trailing garbage in ", path, " line ", lineno, ": '",
                 line, "'");
        add(marker, addr, size);
        ++ranges;
    }
    fatal_if(!in.eof(), "read error in criteria file ", path,
             " after line ", lineno);
    MetricRegistry::global().counter("criteria.ranges_loaded").add(ranges);
}

} // namespace trace
} // namespace webslice
