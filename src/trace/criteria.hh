/**
 * @file
 * Slicing criteria: (program point, set of variables) pairs.
 *
 * The paper plants a marker instruction in Chromium's
 * RasterBufferProvider::PlaybackToMemory and writes the tile buffer's
 * address and size to an external file each time the function runs. This
 * module is that external file: each Marker record in the trace carries an
 * ordinal, and the criteria set maps ordinals to the memory ranges that are
 * live at that point.
 */

#ifndef WEBSLICE_TRACE_CRITERIA_HH
#define WEBSLICE_TRACE_CRITERIA_HH

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "trace/record.hh"

namespace webslice {
namespace trace {

/** A contiguous memory range named by a slicing criterion. */
struct MemRange
{
    uint64_t addr = 0;
    uint64_t size = 0;

    bool operator==(const MemRange &) const = default;
};

/**
 * The criteria sidecar: marker ordinal -> memory ranges that must be
 * treated as live when the backward pass reaches that marker.
 */
class CriteriaSet
{
  public:
    /** Associate one more range with a marker ordinal. */
    void add(uint32_t marker, uint64_t addr, uint64_t size);

    /** Ranges for a marker; empty when the marker has none. */
    const std::vector<MemRange> &forMarker(uint32_t marker) const;

    /** Number of distinct marker ordinals with at least one range. */
    size_t markerCount() const { return byMarker_.size(); }

    /**
     * Every range of every marker, in (marker, insertion) order. The
     * static slicer seeds from this union: it cannot know which marker
     * ordinal a marker pc will execute with, so it must treat all
     * criterion bytes as demanded at every marker site.
     */
    std::vector<MemRange> allRanges() const;

    /** Total bytes across all ranges of all markers. */
    uint64_t totalBytes() const;

    /**
     * Order-independent content hash of the whole set (markers sorted,
     * each marker's ranges in insertion order). Two sets with equal
     * fingerprints seed identical live bytes, so slice results keyed by
     * (inputs, mode, fingerprint) may be reused across queries.
     */
    uint64_t fingerprint() const;

    /** Write to a text sidecar file ("marker addr size" per line). */
    void save(const std::string &path) const;

    /** Read a sidecar file written by save(); replaces contents. */
    void load(const std::string &path);

    /**
     * Adjust a proposed epoch boundary so it never splits a syscall
     * pseudo-record group. A Syscall record and the SyscallRead/Write
     * pseudo-records that follow it form one unit: in syscall-criteria
     * mode the buffered read ranges *are* criterion bytes, and a
     * boundary between the pseudos and their Syscall would seed them in
     * a different epoch than the record that consumes them. The helper
     * shifts the boundary down past any pseudo-records until it lands on
     * the group's Syscall record (or 0), so the whole group falls into
     * the later epoch; each shift is counted on the
     * "criteria.epoch_boundary_splits" metric and warned about once per
     * call. Returns the adjusted boundary.
     */
    static size_t splitBoundary(std::span<const Record> records,
                                size_t proposed);

  private:
    std::unordered_map<uint32_t, std::vector<MemRange>> byMarker_;
    std::vector<MemRange> empty_;
};

} // namespace trace
} // namespace webslice

#endif // WEBSLICE_TRACE_CRITERIA_HH
