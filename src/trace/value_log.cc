#include "trace/value_log.hh"

#include <algorithm>
#include <cstring>
#include <fstream>

#include "support/logging.hh"
#include "support/lz.hh"
#include "support/metrics.hh"
#include "trace/columnar.hh"
#include "trace/criteria.hh"
#include "trace/trace_file.hh"

namespace webslice {
namespace trace {

namespace {

constexpr char kMagicV1[8] = {'W', 'E', 'B', 'V', 'A', 'L', '1', '\0'};
constexpr char kMagicV2[8] = {'W', 'E', 'B', 'V', 'A', 'L', '2', '\0'};

void
readExact(std::ifstream &in, const std::string &path, void *out,
          size_t size, const char *what)
{
    in.read(reinterpret_cast<char *>(out), static_cast<std::streamsize>(size));
    fatal_if(static_cast<size_t>(in.gcount()) != size,
             "truncated value log ", path, ": short read of ", what);
}

// ---- sparse criterion-memory image -------------------------------------

/**
 * The union of every marker's criterion ranges, held as a flat byte
 * image. This is the only memory the snapshot reconstruction has to
 * track: replaying a Store or SyscallWrite touches it exactly where the
 * effect intersects a criterion byte, and extracting a marker's ranges
 * reads it back. Segments are merged (overlap *or* adjacency) so every
 * individual marker range lands inside a single segment.
 */
class SparseImage
{
  public:
    void
    init(const std::vector<MemRange> &union_ranges)
    {
        segs_.clear();
        uint64_t total = 0;
        for (const auto &range : union_ranges) {
            segs_.push_back({range.addr, range.size, total});
            total += range.size;
        }
        bytes_.assign(static_cast<size_t>(total), 0);
    }

    std::vector<uint8_t> &bytes() { return bytes_; }
    const std::vector<uint8_t> &bytes() const { return bytes_; }

    /** Apply a memory effect; bytes outside the image are ignored. */
    void
    write(uint64_t addr, const uint8_t *src, uint64_t size)
    {
        if (size == 0 || segs_.empty())
            return;
        const uint64_t end = addr + size;
        // First segment that could overlap: the one before the first
        // segment starting past addr.
        size_t s = static_cast<size_t>(
            std::upper_bound(segs_.begin(), segs_.end(), addr,
                             [](uint64_t a, const Seg &seg) {
                                 return a < seg.addr;
                             }) -
            segs_.begin());
        if (s > 0)
            --s;
        for (; s < segs_.size() && segs_[s].addr < end; ++s) {
            const Seg &seg = segs_[s];
            const uint64_t lo = std::max(addr, seg.addr);
            const uint64_t hi = std::min(end, seg.addr + seg.size);
            if (lo >= hi)
                continue;
            std::memcpy(bytes_.data() + seg.offset + (lo - seg.addr),
                        src + (lo - addr), static_cast<size_t>(hi - lo));
        }
    }

    /**
     * Read one marker range back; true when the range is fully inside
     * one segment (the merged-union invariant), false otherwise.
     */
    bool
    extract(uint64_t addr, uint64_t size, uint8_t *dst) const
    {
        size_t s = static_cast<size_t>(
            std::upper_bound(segs_.begin(), segs_.end(), addr,
                             [](uint64_t a, const Seg &seg) {
                                 return a < seg.addr;
                             }) -
            segs_.begin());
        if (s == 0)
            return false;
        const Seg &seg = segs_[s - 1];
        if (addr < seg.addr || addr + size > seg.addr + seg.size)
            return false;
        std::memcpy(dst, bytes_.data() + seg.offset + (addr - seg.addr),
                    static_cast<size_t>(size));
        return true;
    }

  private:
    struct Seg
    {
        uint64_t addr;
        uint64_t size;
        uint64_t offset; ///< Position within bytes_.
    };

    std::vector<Seg> segs_; ///< Sorted by addr, disjoint, non-adjacent.
    std::vector<uint8_t> bytes_;
};

/** Merge ranges across all markers: sorted, overlap + adjacency folded. */
std::vector<MemRange>
mergeUnion(std::vector<MemRange> ranges)
{
    std::sort(ranges.begin(), ranges.end(),
              [](const MemRange &a, const MemRange &b) {
                  return a.addr < b.addr;
              });
    std::vector<MemRange> merged;
    for (const auto &range : ranges) {
        if (range.size == 0)
            continue;
        if (!merged.empty() &&
            range.addr <= merged.back().addr + merged.back().size) {
            const uint64_t hi =
                std::max(merged.back().addr + merged.back().size,
                         range.addr + range.size);
            merged.back().size = hi - merged.back().addr;
        } else {
            merged.push_back(range);
        }
    }
    return merged;
}

/**
 * Replay one record's memory effect onto the criterion image. Stores
 * write the low `aux` bytes of the logged value (the layout
 * SimMemory::write uses); SyscallWrite pseudo-records write their raw
 * blob. Nothing else mutates memory in the record model.
 */
void
applyRecord(SparseImage &image, const Record &rec, uint64_t value,
            const std::vector<uint8_t> *blob)
{
    if (rec.kind == RecordKind::Store) {
        uint8_t buf[8];
        std::memcpy(buf, &value, sizeof(buf));
        image.write(rec.addr, buf,
                    std::min<uint64_t>(rec.aux, sizeof(buf)));
    } else if (rec.kind == RecordKind::SyscallWrite && blob) {
        image.write(rec.addr, blob->data(), blob->size());
    }
}

/** Append one LZ chunk: varint raw size, varint encoded size, bytes. */
void
putChunk(const std::vector<uint8_t> &raw, std::vector<uint8_t> &out)
{
    std::vector<uint8_t> encoded;
    lzCompress(raw.data(), raw.size(), encoded);
    putVarint(raw.size(), out);
    putVarint(encoded.size(), out);
    out.insert(out.end(), encoded.begin(), encoded.end());
}

/** Read one LZ chunk written by putChunk. */
std::vector<uint8_t>
getChunk(const uint8_t *&p, const uint8_t *end, const std::string &path,
         const char *what)
{
    uint64_t raw_size = 0, encoded_size = 0;
    fatal_if(!getVarint(p, end, raw_size) ||
             !getVarint(p, end, encoded_size),
             "truncated value log ", path, ": short read of ", what);
    fatal_if(encoded_size > static_cast<uint64_t>(end - p),
             "truncated value log ", path, ": short read of ", what);
    std::vector<uint8_t> raw(static_cast<size_t>(raw_size));
    fatal_if(!lzDecompress(p, static_cast<size_t>(encoded_size),
                           raw.data(), raw.size()),
             "corrupt value log ", path, ": bad ", what, " compression");
    p += encoded_size;
    return raw;
}

uint64_t
getVarintOr(const uint8_t *&p, const uint8_t *end, const std::string &path,
            const char *what)
{
    uint64_t v = 0;
    fatal_if(!getVarint(p, end, v), "truncated value log ", path,
             ": short read of ", what);
    return v;
}

/** One marker's entry as parsed from / written to the v2 file. */
struct MarkerEntry
{
    uint64_t index = 0;        ///< Record index of the Marker.
    uint32_t ordinal = 0;      ///< Marker ordinal (== record aux).
    std::vector<MemRange> ranges;
    bool fallback = false;     ///< Raw blob stored; replay disagreed.
    uint64_t fallbackSize = 0;
    uint64_t snapshotBytes = 0; ///< Sum of range sizes.
};

} // namespace

ValueLogFormat
sniffValueLogFormat(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    fatal_if(!in, "cannot read value log ", path);
    char magic[8] = {};
    readExact(in, path, magic, sizeof(magic), "header");
    if (std::memcmp(magic, kMagicV1, sizeof(kMagicV1)) == 0)
        return ValueLogFormat::V1;
    if (std::memcmp(magic, kMagicV2, sizeof(kMagicV2)) == 0)
        return ValueLogFormat::V2;
    fatal_if(true, "bad value log header in ", path);
    return ValueLogFormat::V1; // unreachable
}

void
ValueLog::save(const std::string &path) const
{
    std::ofstream out(path, std::ios::binary);
    fatal_if(!out, "cannot write value log ", path);

    out.write(kMagicV1, sizeof(kMagicV1));
    const uint64_t count = values.size();
    out.write(reinterpret_cast<const char *>(&count), sizeof(count));
    out.write(reinterpret_cast<const char *>(values.data()),
              static_cast<std::streamsize>(count * sizeof(uint64_t)));

    const uint64_t blob_count = blobs.size();
    out.write(reinterpret_cast<const char *>(&blob_count),
              sizeof(blob_count));
    for (const auto &kv : blobs) {
        const uint64_t index = kv.first;
        const uint64_t size = kv.second.size();
        out.write(reinterpret_cast<const char *>(&index), sizeof(index));
        out.write(reinterpret_cast<const char *>(&size), sizeof(size));
        out.write(reinterpret_cast<const char *>(kv.second.data()),
                  static_cast<std::streamsize>(size));
    }
    fatal_if(!out, "short write saving value log ", path);
}

void
ValueLog::save(const std::string &path, ValueLogFormat format,
               std::span<const Record> records,
               const CriteriaSet &criteria) const
{
    if (format == ValueLogFormat::V1) {
        save(path);
        return;
    }
    fatal_if(values.size() != records.size(),
             "value log has ", values.size(), " values for ",
             records.size(), " records; cannot write ", path);

    // Classify blob-carrying records: Marker snapshots are candidates
    // for reconstruction, everything else (syscall effect ranges) is
    // stored raw and doubles as replay input.
    std::vector<uint64_t> blob_indices;
    blob_indices.reserve(blobs.size());
    for (const auto &kv : blobs)
        blob_indices.push_back(kv.first);
    std::sort(blob_indices.begin(), blob_indices.end());

    std::vector<MarkerEntry> markers;
    std::vector<uint64_t> other; // raw-blob record indices, ascending
    for (const uint64_t index : blob_indices) {
        fatal_if(index >= records.size(), "value log blob at record ",
                 index, " beyond trace end; cannot write ", path);
        const Record &rec = records[static_cast<size_t>(index)];
        if (rec.kind != RecordKind::Marker) {
            other.push_back(index);
            continue;
        }
        MarkerEntry entry;
        entry.index = index;
        entry.ordinal = rec.aux;
        entry.ranges = criteria.forMarker(rec.aux);
        for (const auto &range : entry.ranges)
            entry.snapshotBytes += range.size;
        markers.push_back(std::move(entry));
    }

    // Criterion image geometry and checkpoint placement: one checkpoint
    // per trace block that contains a marker, taken at the block's
    // first record so a loader replays at most one block per marker.
    std::vector<MemRange> union_ranges;
    for (const auto &entry : markers)
        union_ranges.insert(union_ranges.end(), entry.ranges.begin(),
                            entry.ranges.end());
    union_ranges = mergeUnion(std::move(union_ranges));

    const uint64_t block_records = kTraceIndexBlockRecords;
    std::vector<uint64_t> checkpoint_blocks;
    for (const auto &entry : markers) {
        const uint64_t b = entry.index / block_records;
        if (checkpoint_blocks.empty() || checkpoint_blocks.back() != b)
            checkpoint_blocks.push_back(b);
    }

    // One forward replay pass: capture checkpoints at block starts and
    // verify every marker snapshot against its reconstruction. A
    // mismatch (an effect our record model cannot replay) demotes that
    // marker to raw storage — loads stay bit-identical no matter what.
    std::vector<uint8_t> checkpoint_images;
    SparseImage image;
    image.init(union_ranges);
    size_t next_marker = 0, next_checkpoint = 0;
    uint64_t fallback_markers = 0;
    const uint64_t replay_end = markers.empty() ? 0
                                                : markers.back().index + 1;
    std::vector<uint8_t> rebuilt;
    for (uint64_t i = 0; i < replay_end; ++i) {
        if (next_checkpoint < checkpoint_blocks.size() &&
            i == checkpoint_blocks[next_checkpoint] * block_records) {
            checkpoint_images.insert(checkpoint_images.end(),
                                     image.bytes().begin(),
                                     image.bytes().end());
            ++next_checkpoint;
        }
        if (next_marker < markers.size() &&
            markers[next_marker].index == i) {
            MarkerEntry &entry = markers[next_marker];
            const auto &actual = blobs.at(i);
            rebuilt.assign(static_cast<size_t>(entry.snapshotBytes), 0);
            bool ok = actual.size() == entry.snapshotBytes;
            uint64_t offset = 0;
            for (const auto &range : entry.ranges) {
                if (!ok)
                    break;
                ok = image.extract(range.addr, range.size,
                                   rebuilt.data() + offset);
                offset += range.size;
            }
            if (!ok || rebuilt != actual) {
                entry.fallback = true;
                entry.fallbackSize = actual.size();
                ++fallback_markers;
            }
            ++next_marker;
        }
        const Record &rec = records[static_cast<size_t>(i)];
        applyRecord(image, rec, values[static_cast<size_t>(i)],
                    blobAt(static_cast<size_t>(i)));
    }
    if (fallback_markers) {
        warn("value log ", path, ": ", fallback_markers, " of ",
             markers.size(),
             " marker snapshots not replayable; stored raw");
        MetricRegistry::global()
            .counter("value_log.snapshot_fallbacks")
            .add(fallback_markers);
    }

    // ---- serialize -----------------------------------------------------
    std::vector<uint8_t> body;
    putVarint(records.size(), body);
    putVarint(block_records, body);

    // Values: zigzag delta + varint, then LZ.
    std::vector<uint8_t> raw;
    uint64_t prev = 0;
    for (const uint64_t v : values) {
        putVarint(zigzag(static_cast<int64_t>(v - prev)), raw);
        prev = v;
    }
    putChunk(raw, body);

    // Raw blobs: index deltas + sizes, then the pooled bytes.
    putVarint(other.size(), body);
    raw.clear();
    uint64_t prev_index = 0;
    for (const uint64_t index : other) {
        const auto &blob = blobs.at(index);
        putVarint(index - prev_index, body);
        putVarint(blob.size(), body);
        prev_index = index;
        raw.insert(raw.end(), blob.begin(), blob.end());
    }
    putChunk(raw, body);

    // Markers: layout entries, then the fallback pool.
    putVarint(markers.size(), body);
    raw.clear();
    prev_index = 0;
    for (const auto &entry : markers) {
        putVarint(entry.index - prev_index, body);
        putVarint(entry.ordinal, body);
        putVarint(entry.ranges.size(), body);
        for (const auto &range : entry.ranges) {
            putVarint(range.addr, body);
            putVarint(range.size, body);
        }
        body.push_back(entry.fallback ? 1 : 0);
        if (entry.fallback) {
            putVarint(entry.fallbackSize, body);
            const auto &blob = blobs.at(entry.index);
            raw.insert(raw.end(), blob.begin(), blob.end());
        }
        prev_index = entry.index;
    }
    putChunk(raw, body);

    // Checkpoints: union geometry, block numbers, pooled images.
    putVarint(union_ranges.size(), body);
    for (const auto &range : union_ranges) {
        putVarint(range.addr, body);
        putVarint(range.size, body);
    }
    putVarint(checkpoint_blocks.size(), body);
    uint64_t prev_block = 0;
    for (const uint64_t b : checkpoint_blocks) {
        putVarint(b - prev_block, body);
        prev_block = b;
    }
    putChunk(checkpoint_images, body);

    std::ofstream out(path, std::ios::binary);
    fatal_if(!out, "cannot write value log ", path);
    out.write(kMagicV2, sizeof(kMagicV2));
    out.write(reinterpret_cast<const char *>(body.data()),
              static_cast<std::streamsize>(body.size()));
    fatal_if(!out, "short write saving value log ", path);
}

void
ValueLog::load(const std::string &path)
{
    fatal_if(sniffValueLogFormat(path) == ValueLogFormat::V2,
             "value log ", path, " is columnar (v2); its snapshots are ",
             "reconstructed by replay, so loading needs the trace ",
             "records — use load(path, records)");

    std::ifstream in(path, std::ios::binary);
    fatal_if(!in, "cannot read value log ", path);

    char magic[sizeof(kMagicV1)] = {};
    readExact(in, path, magic, sizeof(magic), "header");
    fatal_if(std::memcmp(magic, kMagicV1, sizeof(kMagicV1)) != 0,
             "bad value log header in ", path);

    uint64_t count = 0;
    readExact(in, path, &count, sizeof(count), "record count");
    values.assign(count, 0);
    if (count > 0) {
        readExact(in, path, values.data(), count * sizeof(uint64_t),
                  "value array");
    }

    uint64_t blob_count = 0;
    readExact(in, path, &blob_count, sizeof(blob_count), "blob count");
    blobs.clear();
    uint64_t blob_bytes = 0;
    for (uint64_t i = 0; i < blob_count; ++i) {
        uint64_t index = 0, size = 0;
        readExact(in, path, &index, sizeof(index), "blob index");
        readExact(in, path, &size, sizeof(size), "blob size");
        fatal_if(index >= count,
                 "value log ", path, ": blob index ", index,
                 " beyond record count ", count);
        fatal_if(size > (uint64_t{1} << 30),
                 "value log ", path, ": implausible blob size ", size,
                 " for record ", index);
        auto [it, inserted] = blobs.try_emplace(index);
        fatal_if(!inserted, "value log ", path, ": duplicate blob for "
                 "record ", index);
        it->second.resize(size);
        if (size > 0)
            readExact(in, path, it->second.data(), size, "blob bytes");
        blob_bytes += size;
    }
    fatal_if(in.peek() != std::char_traits<char>::eof(),
             "trailing garbage in value log ", path);

    auto &registry = MetricRegistry::global();
    registry.counter("value_log.values_loaded").add(count);
    registry.counter("value_log.blob_bytes_loaded").add(blob_bytes);
}

void
ValueLog::load(const std::string &path, std::span<const Record> records)
{
    if (sniffValueLogFormat(path) == ValueLogFormat::V1) {
        load(path);
        return;
    }

    std::ifstream in(path, std::ios::binary | std::ios::ate);
    fatal_if(!in, "cannot read value log ", path);
    const auto file_bytes = static_cast<size_t>(in.tellg());
    in.seekg(0);
    std::vector<uint8_t> file(file_bytes);
    readExact(in, path, file.data(), file.size(), "file body");

    const uint8_t *p = file.data() + sizeof(kMagicV2);
    const uint8_t *end = file.data() + file.size();

    const uint64_t count = getVarintOr(p, end, path, "record count");
    fatal_if(count != records.size(), "value log ", path, " covers ",
             count, " records but the trace has ", records.size());
    const uint64_t block_records =
        getVarintOr(p, end, path, "block geometry");
    fatal_if(block_records == 0, "corrupt value log ", path,
             ": zero records per checkpoint block");

    // Values.
    {
        const std::vector<uint8_t> raw =
            getChunk(p, end, path, "value column");
        const uint8_t *vp = raw.data();
        const uint8_t *vend = raw.data() + raw.size();
        values.assign(static_cast<size_t>(count), 0);
        uint64_t prev = 0;
        for (uint64_t i = 0; i < count; ++i) {
            uint64_t delta = 0;
            fatal_if(!getVarint(vp, vend, delta), "corrupt value log ",
                     path, ": value column ends at record ", i, " of ",
                     count);
            prev += static_cast<uint64_t>(unzigzag(delta));
            values[static_cast<size_t>(i)] = prev;
        }
        fatal_if(vp != vend, "corrupt value log ", path,
                 ": trailing bytes in the value column");
    }

    // Raw blobs.
    blobs.clear();
    uint64_t blob_bytes = 0;
    {
        const uint64_t blob_count =
            getVarintOr(p, end, path, "blob count");
        std::vector<std::pair<uint64_t, uint64_t>> layout; // index, size
        layout.reserve(static_cast<size_t>(blob_count));
        uint64_t index = 0, pool_bytes = 0;
        for (uint64_t i = 0; i < blob_count; ++i) {
            index += getVarintOr(p, end, path, "blob index");
            const uint64_t size =
                getVarintOr(p, end, path, "blob size");
            fatal_if(index >= count, "value log ", path,
                     ": blob index ", index, " beyond record count ",
                     count);
            fatal_if(i > 0 && index <= layout.back().first,
                     "corrupt value log ", path,
                     ": blob indices not ascending at record ", index);
            layout.emplace_back(index, size);
            pool_bytes += size;
        }
        const std::vector<uint8_t> pool =
            getChunk(p, end, path, "blob pool");
        fatal_if(pool.size() != pool_bytes, "corrupt value log ", path,
                 ": blob pool holds ", pool.size(), " bytes, entries ",
                 "claim ", pool_bytes);
        uint64_t offset = 0;
        for (const auto &[blob_index, size] : layout) {
            blobs[blob_index].assign(pool.begin() + offset,
                                     pool.begin() + offset + size);
            offset += size;
            blob_bytes += size;
        }
    }

    // Marker layout entries + fallback pool.
    std::vector<MarkerEntry> markers;
    std::vector<uint8_t> fallback_pool;
    {
        const uint64_t marker_count =
            getVarintOr(p, end, path, "marker count");
        markers.reserve(static_cast<size_t>(marker_count));
        uint64_t index = 0, pool_bytes = 0;
        for (uint64_t i = 0; i < marker_count; ++i) {
            MarkerEntry entry;
            index += getVarintOr(p, end, path, "marker index");
            entry.index = index;
            fatal_if(index >= count, "value log ", path,
                     ": marker entry at record ", index,
                     " beyond record count ", count);
            fatal_if(i > 0 && index <= markers.back().index,
                     "corrupt value log ", path,
                     ": marker indices not ascending at record ", index);
            const Record &rec = records[static_cast<size_t>(index)];
            fatal_if(rec.kind != RecordKind::Marker, "value log ", path,
                     ": record ", index, " is not a Marker");
            entry.ordinal = static_cast<uint32_t>(
                getVarintOr(p, end, path, "marker ordinal"));
            fatal_if(entry.ordinal != rec.aux, "value log ", path,
                     ": marker at record ", index, " claims ordinal ",
                     entry.ordinal, ", trace says ", rec.aux);
            const uint64_t range_count =
                getVarintOr(p, end, path, "marker range count");
            entry.ranges.reserve(static_cast<size_t>(range_count));
            for (uint64_t r = 0; r < range_count; ++r) {
                MemRange range;
                range.addr = getVarintOr(p, end, path, "marker range");
                range.size = getVarintOr(p, end, path, "marker range");
                entry.snapshotBytes += range.size;
                entry.ranges.push_back(range);
            }
            fatal_if(p == end, "truncated value log ", path,
                     ": short read of marker flag");
            const uint8_t flag = *p++;
            fatal_if(flag > 1, "corrupt value log ", path,
                     ": bad marker flag ", int(flag), " at record ",
                     index);
            entry.fallback = flag == 1;
            if (entry.fallback) {
                entry.fallbackSize =
                    getVarintOr(p, end, path, "fallback size");
                pool_bytes += entry.fallbackSize;
            }
            markers.push_back(std::move(entry));
        }
        fallback_pool = getChunk(p, end, path, "fallback pool");
        fatal_if(fallback_pool.size() != pool_bytes,
                 "corrupt value log ", path, ": fallback pool holds ",
                 fallback_pool.size(), " bytes, entries claim ",
                 pool_bytes);
    }

    // Checkpoint geometry + images.
    std::vector<MemRange> union_ranges;
    std::vector<uint64_t> checkpoint_blocks;
    std::vector<uint8_t> checkpoint_images;
    uint64_t union_bytes = 0;
    {
        const uint64_t range_count =
            getVarintOr(p, end, path, "union range count");
        union_ranges.reserve(static_cast<size_t>(range_count));
        for (uint64_t r = 0; r < range_count; ++r) {
            MemRange range;
            range.addr = getVarintOr(p, end, path, "union range");
            range.size = getVarintOr(p, end, path, "union range");
            union_bytes += range.size;
            union_ranges.push_back(range);
        }
        const uint64_t checkpoint_count =
            getVarintOr(p, end, path, "checkpoint count");
        uint64_t block = 0;
        for (uint64_t c = 0; c < checkpoint_count; ++c) {
            block += getVarintOr(p, end, path, "checkpoint block");
            fatal_if(c > 0 && block <= checkpoint_blocks.back(),
                     "corrupt value log ", path,
                     ": checkpoint blocks not ascending at block ",
                     block);
            checkpoint_blocks.push_back(block);
        }
        checkpoint_images = getChunk(p, end, path, "checkpoint images");
        fatal_if(checkpoint_images.size() !=
                 checkpoint_count * union_bytes,
                 "corrupt value log ", path, ": checkpoint pool holds ",
                 checkpoint_images.size(), " bytes, geometry implies ",
                 checkpoint_count * union_bytes);
    }
    fatal_if(p != end, "trailing garbage in value log ", path);

    // Reconstruct marker snapshots: restore the block's checkpoint and
    // replay at most one block of Store / SyscallWrite effects per
    // marker group. Blocks without markers are never touched.
    auto &registry = MetricRegistry::global();
    SparseImage image;
    uint64_t fallback_offset = 0, reconstructed = 0;
    for (size_t m = 0; m < markers.size();) {
        const MarkerEntry &head = markers[m];
        const uint64_t block = head.index / block_records;
        const auto cp = std::lower_bound(checkpoint_blocks.begin(),
                                         checkpoint_blocks.end(), block);
        fatal_if(cp == checkpoint_blocks.end() || *cp != block,
                 "corrupt value log ", path, ": no checkpoint for ",
                 "block ", block, " (marker at record ", head.index,
                 ")");
        const size_t cp_pos = static_cast<size_t>(
            cp - checkpoint_blocks.begin());
        image.init(union_ranges);
        std::memcpy(image.bytes().data(),
                    checkpoint_images.data() + cp_pos * union_bytes,
                    static_cast<size_t>(union_bytes));
        registry.counter("trace.checkpoint_restores").add(1);

        // Markers sharing the block replay it once, in index order.
        size_t group_end = m;
        while (group_end < markers.size() &&
               markers[group_end].index / block_records == block)
            ++group_end;
        size_t next = m;
        for (uint64_t i = block * block_records;
             next < group_end; ++i) {
            if (markers[next].index == i) {
                MarkerEntry &entry = markers[next];
                auto &blob = blobs[entry.index];
                if (entry.fallback) {
                    blob.assign(fallback_pool.begin() +
                                static_cast<size_t>(fallback_offset),
                                fallback_pool.begin() +
                                static_cast<size_t>(fallback_offset +
                                                    entry.fallbackSize));
                    fallback_offset += entry.fallbackSize;
                } else {
                    blob.assign(
                        static_cast<size_t>(entry.snapshotBytes), 0);
                    uint64_t offset = 0;
                    for (const auto &range : entry.ranges) {
                        fatal_if(!image.extract(range.addr, range.size,
                                                blob.data() + offset),
                                 "corrupt value log ", path,
                                 ": marker range [", range.addr, ", +",
                                 range.size, ") at record ",
                                 entry.index,
                                 " outside the checkpoint image");
                        offset += range.size;
                    }
                    ++reconstructed;
                }
                blob_bytes += blob.size();
                ++next;
            }
            if (next >= group_end)
                break;
            const Record &rec = records[static_cast<size_t>(i)];
            applyRecord(image, rec, values[static_cast<size_t>(i)],
                        blobAt(static_cast<size_t>(i)));
        }
        m = group_end;
    }

    registry.counter("value_log.values_loaded").add(count);
    registry.counter("value_log.blob_bytes_loaded").add(blob_bytes);
    registry.counter("value_log.snapshots_reconstructed")
        .add(reconstructed);
}

} // namespace trace
} // namespace webslice
