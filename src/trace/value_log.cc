#include "trace/value_log.hh"

#include <cstring>
#include <fstream>

#include "support/logging.hh"
#include "support/metrics.hh"

namespace webslice {
namespace trace {

namespace {

constexpr char kMagic[8] = {'W', 'E', 'B', 'V', 'A', 'L', '1', '\0'};

void
readExact(std::ifstream &in, const std::string &path, void *out,
          size_t size, const char *what)
{
    in.read(reinterpret_cast<char *>(out), static_cast<std::streamsize>(size));
    fatal_if(static_cast<size_t>(in.gcount()) != size,
             "truncated value log ", path, ": short read of ", what);
}

} // namespace

void
ValueLog::save(const std::string &path) const
{
    std::ofstream out(path, std::ios::binary);
    fatal_if(!out, "cannot write value log ", path);

    out.write(kMagic, sizeof(kMagic));
    const uint64_t count = values.size();
    out.write(reinterpret_cast<const char *>(&count), sizeof(count));
    out.write(reinterpret_cast<const char *>(values.data()),
              static_cast<std::streamsize>(count * sizeof(uint64_t)));

    const uint64_t blob_count = blobs.size();
    out.write(reinterpret_cast<const char *>(&blob_count),
              sizeof(blob_count));
    for (const auto &kv : blobs) {
        const uint64_t index = kv.first;
        const uint64_t size = kv.second.size();
        out.write(reinterpret_cast<const char *>(&index), sizeof(index));
        out.write(reinterpret_cast<const char *>(&size), sizeof(size));
        out.write(reinterpret_cast<const char *>(kv.second.data()),
                  static_cast<std::streamsize>(size));
    }
    fatal_if(!out, "short write saving value log ", path);
}

void
ValueLog::load(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    fatal_if(!in, "cannot read value log ", path);

    char magic[sizeof(kMagic)] = {};
    readExact(in, path, magic, sizeof(magic), "header");
    fatal_if(std::memcmp(magic, kMagic, sizeof(kMagic)) != 0,
             "bad value log header in ", path);

    uint64_t count = 0;
    readExact(in, path, &count, sizeof(count), "record count");
    values.assign(count, 0);
    if (count > 0) {
        readExact(in, path, values.data(), count * sizeof(uint64_t),
                  "value array");
    }

    uint64_t blob_count = 0;
    readExact(in, path, &blob_count, sizeof(blob_count), "blob count");
    blobs.clear();
    uint64_t blob_bytes = 0;
    for (uint64_t i = 0; i < blob_count; ++i) {
        uint64_t index = 0, size = 0;
        readExact(in, path, &index, sizeof(index), "blob index");
        readExact(in, path, &size, sizeof(size), "blob size");
        fatal_if(index >= count,
                 "value log ", path, ": blob index ", index,
                 " beyond record count ", count);
        fatal_if(size > (uint64_t{1} << 30),
                 "value log ", path, ": implausible blob size ", size,
                 " for record ", index);
        auto [it, inserted] = blobs.try_emplace(index);
        fatal_if(!inserted, "value log ", path, ": duplicate blob for "
                 "record ", index);
        it->second.resize(size);
        if (size > 0)
            readExact(in, path, it->second.data(), size, "blob bytes");
        blob_bytes += size;
    }
    fatal_if(in.peek() != std::char_traits<char>::eof(),
             "trailing garbage in value log ", path);

    auto &registry = MetricRegistry::global();
    registry.counter("value_log.values_loaded").add(count);
    registry.counter("value_log.blob_bytes_loaded").add(blob_bytes);
}

} // namespace trace
} // namespace webslice
