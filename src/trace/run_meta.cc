#include "trace/run_meta.hh"

#include <fstream>
#include <sstream>

#include "support/logging.hh"
#include "support/strings.hh"

namespace webslice {
namespace trace {

RunMeta
loadRunMeta(const std::string &path)
{
    RunMeta meta;
    std::ifstream in(path);
    if (!in)
        return meta;
    std::string line;
    size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (std::string(trim(line)).empty())
            continue;
        std::istringstream fields(line);
        std::string key;
        fields >> key;
        if (key == "benchmark") {
            std::getline(fields, meta.benchmark);
            meta.benchmark = std::string(trim(meta.benchmark));
        } else if (key == "loadCompleteIndex") {
            fatal_if(!(fields >> meta.loadCompleteIndex),
                     "malformed loadCompleteIndex in ", path, " line ",
                     lineno, ": '", line, "'");
        } else if (key == "loadOnly") {
            int flag = 0;
            fatal_if(!(fields >> flag), "malformed loadOnly in ", path,
                     " line ", lineno, ": '", line, "'");
            meta.loadOnly = flag != 0;
        } else if (key == "thread") {
            size_t tid;
            std::string name;
            fatal_if(!(fields >> tid >> name), "malformed thread entry in ",
                     path, " line ", lineno, ": '", line, "'");
            if (meta.threadNames.size() <= tid)
                meta.threadNames.resize(tid + 1);
            meta.threadNames[tid] = name;
        } else {
            fatal_if(true, "unknown key '", key, "' in ", path, " line ",
                     lineno, ": '", line, "'");
        }
        fatal_if(in.bad(), "read error in ", path, " after line ", lineno);
    }
    return meta;
}

} // namespace trace
} // namespace webslice
