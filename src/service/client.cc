#include "service/client.hh"

#include <cerrno>
#include <cstring>
#include <utility>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "support/strings.hh"

namespace webslice {
namespace service {

ServiceClient::~ServiceClient()
{
    close();
}

ServiceClient::ServiceClient(ServiceClient &&other) noexcept
    : fd_(other.fd_)
{
    other.fd_ = -1;
}

ServiceClient &
ServiceClient::operator=(ServiceClient &&other) noexcept
{
    if (this != &other) {
        close();
        fd_ = other.fd_;
        other.fd_ = -1;
    }
    return *this;
}

void
ServiceClient::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

bool
ServiceClient::connectUnix(const std::string &path, std::string &error)
{
    close();

    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        error = format("socket path too long (%zu bytes): %s",
                       path.size(), path.c_str());
        return false;
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        error = format("socket(AF_UNIX): %s", std::strerror(errno));
        return false;
    }
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        error = format("connect %s: %s", path.c_str(),
                       std::strerror(errno));
        ::close(fd);
        return false;
    }
    fd_ = fd;
    return true;
}

bool
ServiceClient::connectTcp(const std::string &host, int port,
                          std::string &error)
{
    close();

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        error = format("bad IPv4 address: %s", host.c_str());
        return false;
    }

    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        error = format("socket(AF_INET): %s", std::strerror(errno));
        return false;
    }
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        error = format("connect %s:%d: %s", host.c_str(), port,
                       std::strerror(errno));
        ::close(fd);
        return false;
    }
    fd_ = fd;
    return true;
}

bool
ServiceClient::call(const Json &request, Json &response,
                    std::string &error)
{
    if (fd_ < 0) {
        error = "not connected";
        return false;
    }
    if (!writeFrame(fd_, request.dump(), error))
        return false;

    std::string payload;
    switch (readFrame(fd_, payload, error)) {
      case FrameRead::Ok:
        break;
      case FrameRead::Eof:
        error = "connection closed before response";
        return false;
      case FrameRead::Error:
        return false;
    }
    std::string parse_error;
    if (!Json::parse(payload, response, parse_error)) {
        error = format("bad response JSON: %s", parse_error.c_str());
        return false;
    }
    return true;
}

bool
ServiceClient::batch(const std::string &prefix,
                     const std::vector<SliceQuery> &queries,
                     BatchOutcome &outcome, std::string &error,
                     const std::function<void(const Json &)> &on_result)
{
    if (fd_ < 0) {
        error = "not connected";
        return false;
    }

    Json request = Json::object();
    request.set("op", Json::string("batch"));
    request.set("prefix", Json::string(prefix));
    Json list = Json::array();
    for (const auto &query : queries)
        list.push(query.toJson());
    request.set("queries", std::move(list));
    if (!writeFrame(fd_, request.dump(), error))
        return false;

    outcome = BatchOutcome();
    outcome.results.resize(queries.size());

    // Result frames stream in submission order, then one batch_done.
    for (;;) {
        std::string payload;
        switch (readFrame(fd_, payload, error)) {
          case FrameRead::Ok:
            break;
          case FrameRead::Eof:
            error = "connection closed before batch_done";
            return false;
          case FrameRead::Error:
            return false;
        }
        Json frame;
        std::string parse_error;
        if (!Json::parse(payload, frame, parse_error)) {
            error = format("bad response JSON: %s",
                           parse_error.c_str());
            return false;
        }
        const Json *op = frame.find("op");
        if (op == nullptr || op->kind() != Json::Kind::String) {
            const Json *err = frame.find("error");
            error = err != nullptr &&
                            err->kind() == Json::Kind::String
                        ? err->asString()
                        : "response frame without op";
            return false;
        }
        if (op->asString() == "batch_done") {
            if (on_result)
                on_result(frame);
            return true;
        }
        if (op->asString() == "error") {
            const Json *err = frame.find("error");
            error = err != nullptr &&
                            err->kind() == Json::Kind::String
                        ? err->asString()
                        : "server error";
            return false;
        }
        if (op->asString() != "result") {
            error = format("unexpected frame op '%s'",
                           op->asString().c_str());
            return false;
        }

        if (on_result)
            on_result(frame);

        const Json *id_value = frame.find("id");
        if (id_value == nullptr ||
            id_value->kind() != Json::Kind::Int) {
            error = "result frame without integer id";
            return false;
        }
        const size_t id = static_cast<size_t>(id_value->asInt());
        QueryResult result;
        if (!QueryResult::fromJson(frame, result, error))
            return false;
        if (id >= outcome.results.size()) {
            error = format("result id %zu out of range (batch of %zu)",
                           id, outcome.results.size());
            return false;
        }
        switch (result.status) {
          case QueryResult::Status::Ok:
            ++outcome.ok;
            break;
          case QueryResult::Status::Rejected:
            ++outcome.rejected;
            break;
          case QueryResult::Status::Timeout:
            ++outcome.timeouts;
            break;
          case QueryResult::Status::Error:
            ++outcome.errors;
            break;
        }
        outcome.results[id] = std::move(result);
    }
}

} // namespace service
} // namespace webslice
