#include "service/protocol.hh"

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include <unistd.h>

#include "support/strings.hh"

namespace webslice {
namespace service {

namespace {

/** Read exactly `n` bytes; returns bytes read (short only on EOF/error). */
ssize_t
readFully(int fd, void *buf, size_t n)
{
    auto *p = static_cast<char *>(buf);
    size_t got = 0;
    while (got < n) {
        const ssize_t r = ::read(fd, p + got, n - got);
        if (r == 0)
            break;
        if (r < 0) {
            if (errno == EINTR)
                continue;
            return -1;
        }
        got += static_cast<size_t>(r);
    }
    return static_cast<ssize_t>(got);
}

const char *
modeName(slicer::CriteriaMode mode)
{
    return mode == slicer::CriteriaMode::PixelBuffer ? "pixel-buffer"
                                                     : "syscalls";
}

} // namespace

FrameRead
readFrame(int fd, std::string &payload, std::string &error,
          uint32_t max_bytes)
{
    unsigned char prefix[4];
    const ssize_t got = readFully(fd, prefix, sizeof(prefix));
    if (got == 0)
        return FrameRead::Eof;
    if (got < 0) {
        error = format("frame prefix read failed: %s",
                       std::strerror(errno));
        return FrameRead::Error;
    }
    if (got != sizeof(prefix)) {
        error = format("truncated frame prefix (%zd of 4 bytes)", got);
        return FrameRead::Error;
    }
    const uint32_t length = static_cast<uint32_t>(prefix[0]) |
                            static_cast<uint32_t>(prefix[1]) << 8 |
                            static_cast<uint32_t>(prefix[2]) << 16 |
                            static_cast<uint32_t>(prefix[3]) << 24;
    if (length == 0) {
        error = "zero-length frame";
        return FrameRead::Error;
    }
    if (length > max_bytes) {
        error = format("frame of %u bytes exceeds the %u byte limit",
                       length, max_bytes);
        return FrameRead::Error;
    }
    payload.resize(length);
    const ssize_t body = readFully(fd, payload.data(), length);
    if (body != static_cast<ssize_t>(length)) {
        error = format("truncated frame payload (%zd of %u bytes)",
                       body < 0 ? 0 : body, length);
        return FrameRead::Error;
    }
    return FrameRead::Ok;
}

bool
writeFrame(int fd, std::string_view payload, std::string &error,
           uint32_t max_bytes, int *errno_out)
{
    if (errno_out != nullptr)
        *errno_out = 0;
    // Mirror readFrame's validity rules bit for bit: zero-length and
    // over-limit frames are refused on the way out, not just rejected
    // on the way in.
    if (payload.empty() || payload.size() > max_bytes) {
        error = format("refusing to write a %zu byte frame "
                       "(limit %u, minimum 1)",
                       payload.size(), max_bytes);
        return false;
    }
    const uint32_t length = static_cast<uint32_t>(payload.size());
    unsigned char prefix[4] = {
        static_cast<unsigned char>(length & 0xFF),
        static_cast<unsigned char>((length >> 8) & 0xFF),
        static_cast<unsigned char>((length >> 16) & 0xFF),
        static_cast<unsigned char>((length >> 24) & 0xFF),
    };
    // One contiguous buffer keeps the write atomic-ish for small frames
    // and simplifies the EINTR loop.
    std::string wire;
    wire.reserve(sizeof(prefix) + payload.size());
    wire.append(reinterpret_cast<char *>(prefix), sizeof(prefix));
    wire.append(payload);
    size_t sent = 0;
    while (sent < wire.size()) {
        const ssize_t w = ::write(fd, wire.data() + sent,
                                  wire.size() - sent);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            if (errno_out != nullptr)
                *errno_out = errno;
            error = format("frame write failed: %s",
                           std::strerror(errno));
            return false;
        }
        sent += static_cast<size_t>(w);
    }
    return true;
}

std::string
SliceQuery::dedupKey(uint64_t session_identity) const
{
    return format("%016llx|%s|%d|%llu|%d|%llu",
                  static_cast<unsigned long long>(session_identity),
                  modeName(mode), noWindow ? 1 : 0,
                  static_cast<unsigned long long>(endIndex), backwardJobs,
                  static_cast<unsigned long long>(debugSleepMs));
}

Json
SliceQuery::toJson() const
{
    Json j = Json::object();
    j.set("mode", Json::string(modeName(mode)));
    if (noWindow)
        j.set("no_window", Json::boolean(true));
    if (endIndex != UINT64_MAX)
        j.set("end_index", Json::integer(static_cast<int64_t>(endIndex)));
    if (backwardJobs != 1)
        j.set("backward_jobs", Json::integer(backwardJobs));
    if (timeoutMs != 0)
        j.set("timeout_ms",
              Json::integer(static_cast<int64_t>(timeoutMs)));
    if (debugSleepMs != 0)
        j.set("debug_sleep_ms",
              Json::integer(static_cast<int64_t>(debugSleepMs)));
    return j;
}

bool
SliceQuery::fromJson(const Json &json, SliceQuery &out, std::string &error)
{
    if (!json.isObject()) {
        error = "query must be a JSON object";
        return false;
    }
    out = SliceQuery();
    for (const auto &member : json.members()) {
        const std::string &key = member.first;
        const Json &value = member.second;
        if (key == "mode") {
            const std::string &mode = value.asString();
            if (mode == "pixel-buffer" || mode == "pixel") {
                out.mode = slicer::CriteriaMode::PixelBuffer;
            } else if (mode == "syscalls") {
                out.mode = slicer::CriteriaMode::Syscalls;
            } else {
                error = format("unknown criteria mode '%s'",
                               mode.c_str());
                return false;
            }
        } else if (key == "no_window") {
            if (!value.isBool()) {
                error = "no_window must be a boolean";
                return false;
            }
            out.noWindow = value.asBool();
        } else if (key == "end_index") {
            if (!value.isInt() || value.asInt() < 0) {
                error = "end_index must be a non-negative integer";
                return false;
            }
            out.endIndex = static_cast<uint64_t>(value.asInt());
        } else if (key == "backward_jobs") {
            if (!value.isInt() || value.asInt() < 0 ||
                value.asInt() > (1 << 16)) {
                error = "backward_jobs must be an integer in [0, 65536]";
                return false;
            }
            out.backwardJobs = static_cast<int>(value.asInt());
        } else if (key == "timeout_ms") {
            if (!value.isInt() || value.asInt() < 0) {
                error = "timeout_ms must be a non-negative integer";
                return false;
            }
            out.timeoutMs = static_cast<uint64_t>(value.asInt());
        } else if (key == "debug_sleep_ms") {
            if (!value.isInt() || value.asInt() < 0) {
                error = "debug_sleep_ms must be a non-negative integer";
                return false;
            }
            out.debugSleepMs = static_cast<uint64_t>(value.asInt());
        } else {
            // Unknown members are rejected, mirroring the CLIs' strict
            // flag parsing: a typoed criterion must not silently slice
            // something else.
            error = format("unknown query member '%s'", key.c_str());
            return false;
        }
    }
    return true;
}

const char *
QueryResult::statusName(Status s)
{
    switch (s) {
      case Status::Ok: return "ok";
      case Status::Error: return "error";
      case Status::Rejected: return "rejected";
      case Status::Timeout: return "timeout";
    }
    return "error";
}

Json
QueryResult::toJson(size_t id) const
{
    Json j = Json::object();
    j.set("schema", Json::string(kServeSchema));
    j.set("op", Json::string("result"));
    j.set("id", Json::integer(static_cast<int64_t>(id)));
    j.set("status", Json::string(statusName(status)));
    if (!error.empty())
        j.set("error", Json::string(error));
    if (!shard.empty()) {
        j.set("shard", Json::string(shard));
        j.set("shard_epoch",
              Json::integer(static_cast<int64_t>(shardEpoch)));
    }
    j.set("cache_hit", Json::boolean(cacheHit));
    j.set("plan_hit", Json::boolean(planHit));
    j.set("deduped", Json::boolean(deduped));
    j.set("queue_ms", Json::number(queueMs));
    j.set("run_ms", Json::number(runMs));
    j.set("slice_ms", Json::number(sliceMs));
    if (status != Status::Ok)
        return j;

    Json slice = Json::object();
    slice.set("mode", Json::string(mode));
    slice.set("records", Json::integer(static_cast<int64_t>(records)));
    slice.set("window_end",
              Json::integer(static_cast<int64_t>(windowEnd)));
    slice.set("instructions_analyzed",
              Json::integer(static_cast<int64_t>(instructionsAnalyzed)));
    slice.set("slice_instructions",
              Json::integer(static_cast<int64_t>(sliceInstructions)));
    slice.set("criteria_bytes_seeded",
              Json::integer(static_cast<int64_t>(criteriaBytesSeeded)));
    slice.set("slice_percent", Json::number(slicePercent));
    slice.set("in_slice_fnv1a",
              Json::string(format("0x%016llx",
                                  static_cast<unsigned long long>(
                                      inSliceFnv1a))));
    j.set("slice", std::move(slice));

    Json categories = Json::object();
    categories.set("coverage_percent",
                   Json::number(categoryCoveragePercent));
    Json shares = Json::object();
    for (const auto &share : categoryShares)
        shares.set(share.first, Json::number(share.second));
    categories.set("shares", std::move(shares));
    j.set("categories", std::move(categories));
    return j;
}

bool
QueryResult::fromJson(const Json &json, QueryResult &out,
                      std::string &error)
{
    out = QueryResult();
    if (!json.isObject() || !json.find("status")) {
        error = "result frame must be an object with a status";
        return false;
    }
    const std::string &status = json.find("status")->asString();
    if (status == "ok") {
        out.status = Status::Ok;
    } else if (status == "error") {
        out.status = Status::Error;
    } else if (status == "rejected") {
        out.status = Status::Rejected;
    } else if (status == "timeout") {
        out.status = Status::Timeout;
    } else {
        error = format("unknown result status '%s'", status.c_str());
        return false;
    }
    if (const Json *e = json.find("error"))
        out.error = e->asString();
    if (const Json *v = json.find("shard"))
        out.shard = v->asString();
    if (const Json *v = json.find("shard_epoch"))
        out.shardEpoch = static_cast<uint64_t>(v->asInt());
    if (const Json *v = json.find("cache_hit"))
        out.cacheHit = v->asBool();
    if (const Json *v = json.find("plan_hit"))
        out.planHit = v->asBool();
    if (const Json *v = json.find("deduped"))
        out.deduped = v->asBool();
    if (const Json *v = json.find("queue_ms"))
        out.queueMs = v->asDouble();
    if (const Json *v = json.find("run_ms"))
        out.runMs = v->asDouble();
    if (const Json *v = json.find("slice_ms"))
        out.sliceMs = v->asDouble();
    if (const Json *slice = json.find("slice")) {
        const auto u64 = [&](const char *key) -> uint64_t {
            const Json *v = slice->find(key);
            return v ? static_cast<uint64_t>(v->asInt()) : 0;
        };
        if (const Json *v = slice->find("mode"))
            out.mode = v->asString();
        out.records = u64("records");
        out.windowEnd = u64("window_end");
        out.instructionsAnalyzed = u64("instructions_analyzed");
        out.sliceInstructions = u64("slice_instructions");
        out.criteriaBytesSeeded = u64("criteria_bytes_seeded");
        if (const Json *v = slice->find("slice_percent"))
            out.slicePercent = v->asDouble();
        if (const Json *v = slice->find("in_slice_fnv1a")) {
            const std::string &hex = v->asString();
            out.inSliceFnv1a =
                std::strtoull(hex.c_str(), nullptr, 16);
        }
    }
    if (const Json *categories = json.find("categories")) {
        if (const Json *v = categories->find("coverage_percent"))
            out.categoryCoveragePercent = v->asDouble();
        if (const Json *shares = categories->find("shares")) {
            for (const auto &member : shares->members())
                out.categoryShares.emplace_back(
                    member.first, member.second.asDouble());
        }
    }
    return true;
}

Json
errorResponse(const std::string &message)
{
    Json j = Json::object();
    j.set("schema", Json::string(kServeSchema));
    j.set("op", Json::string("error"));
    j.set("status", Json::string("error"));
    j.set("error", Json::string(message));
    return j;
}

} // namespace service
} // namespace webslice
