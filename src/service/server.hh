/**
 * @file
 * The resident slicing daemon's accept loop and request dispatch.
 *
 * Listens on a Unix-domain socket (and optionally loopback TCP), one
 * handler thread per connection, each speaking the webslice-serve-v1
 * frame protocol. All heavy work flows through the shared Scheduler
 * and SessionCache, so concurrent connections share sessions and the
 * bounded queue. Shutdown is graceful: requestShutdown() (safe to call
 * from a signal handler via notifyShutdownFd) stops the accept loop,
 * half-closes active connections so their reads end after the in-
 * flight frames, drains the scheduler, and removes the socket file.
 */

#ifndef WEBSLICE_SERVICE_SERVER_HH
#define WEBSLICE_SERVICE_SERVER_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <set>
#include <string>

#include "service/scheduler.hh"
#include "service/session_cache.hh"

namespace webslice {
namespace service {

struct ServerOptions
{
    /** Path of the Unix-domain listening socket (required). */
    std::string socketPath;

    /** Also listen on 127.0.0.1:<tcpPort>; -1 disables TCP. */
    int tcpPort = -1;

    /** Concurrent query workers in the scheduler. */
    int workers = 2;

    /** Bounded queue depth before submissions are rejected. */
    size_t maxQueue = 64;

    /** Session-cache byte budget. */
    uint64_t cacheBytes = 2ull << 30;

    /** Forward-pass threads when a session is built (0 = all cores). */
    int forwardJobs = 0;

    /** Cache criterion-independent epoch plans and route warm queries
     *  through them (see Scheduler::Options::usePlans). Disabling is
     *  the cold-path baseline benchmarks compare against. */
    bool usePlans = true;

    /** Fleet identity stamped on every result and status frame; empty
     *  outside fleet deployments (the fields are then omitted). */
    std::string shardId;

    /** Shard generation, bumped by the supervisor on each restart so a
     *  fleet client can tell a restarted shard from the one it lost. */
    uint64_t shardEpoch = 1;
};

class Server
{
  public:
    /** Binds the listeners; fatal() when the socket cannot be bound. */
    explicit Server(const ServerOptions &options);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Accept and serve until shutdown is requested; returns after the
     * drain completes. Call from the main thread (or a dedicated one).
     */
    void run();

    /** Ask run() to stop; usable from any thread. */
    void requestShutdown();

    /**
     * Enter draining mode without stopping: ping/stats answer with
     * "draining": true and new batch requests are refused with an
     * error frame, so a fleet client re-routes to a replica while the
     * supervisor waits for in-flight work to finish. Also flipped by
     * the "drain" protocol op.
     */
    void beginDrain() { draining_.store(true); }

    bool draining() const { return draining_.load(); }

    /**
     * Fault-injection hook for failover tests: hard-close every live
     * connection (SHUT_RDWR), as a crashed shard would. The listener
     * keeps accepting; pair with beginDrain()/requestShutdown() to
     * simulate a full shard death in-process.
     */
    void abortConnections();

    /**
     * File descriptor a signal handler can write one byte to in order
     * to trigger shutdown (the self-pipe trick; write() is
     * async-signal-safe where requestShutdown() is not).
     */
    int notifyShutdownFd() const { return shutdownPipe_[1]; }

    /** TCP port actually bound (for tcpPort = 0 ephemeral binds). */
    int boundTcpPort() const { return boundTcpPort_; }

    SessionCache &cache() { return cache_; }
    Scheduler &scheduler() { return scheduler_; }

  private:
    void handleConnection(int fd);

    /** Serve one "batch" request; streams result frames on `fd`. */
    void handleBatch(int fd, const Json &request);

    Json statsResponse() const;

    /** Add the shard/epoch/draining members status frames carry. */
    void stampIdentity(Json &body) const;

    bool sendJson(int fd, const Json &body);

    ServerOptions options_;
    SessionCache cache_;
    Scheduler scheduler_;

    int unixFd_ = -1;
    int tcpFd_ = -1;
    int boundTcpPort_ = -1;
    int shutdownPipe_[2] = {-1, -1};
    std::atomic<bool> shuttingDown_{false};
    std::atomic<bool> draining_{false};

    std::mutex connMutex_;
    std::condition_variable connsDone_;
    std::set<int> connFds_;
    size_t activeConns_ = 0;
};

} // namespace service
} // namespace webslice

#endif // WEBSLICE_SERVICE_SERVER_HH
