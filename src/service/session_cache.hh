/**
 * @file
 * The resident-session cache: the reason webslice-served exists.
 *
 * The paper's workflow is many queries over one trace — pixel-buffer
 * criteria at many markers plus the syscall criteria — but a batch CLI
 * re-opens, re-indexes, and re-runs the forward pass for every query.
 * A Session holds everything a backward pass needs that does not
 * depend on the criterion: the mmap'd trace, the parsed sidecars, the
 * CFGs, postdominators, and the sealed control-dependence map. Repeat
 * queries against a cached session skip the entire forward pass.
 *
 * Cache keying follows the artifact digests (FNV-1a-64 of the .trc/
 * .sym/.crit/.meta bytes): a prefix whose files changed on disk is a
 * different recording and invalidates its stale entry. Entries are
 * evicted least-recently-used once the configured byte budget is
 * exceeded; sessions handed out as shared_ptr stay alive for their
 * holders even after eviction. Concurrent opens of the same recording
 * collapse onto one forward pass — later callers wait for the builder
 * instead of duplicating it.
 */

#ifndef WEBSLICE_SERVICE_SESSION_CACHE_HH
#define WEBSLICE_SERVICE_SESSION_CACHE_HH

#include <condition_variable>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/cfg.hh"
#include "graph/control_deps.hh"
#include "slicer/epoch.hh"
#include "trace/artifacts.hh"
#include "trace/trace_file.hh"

namespace webslice {
namespace service {

/** One recording, fully prepared for criterion queries. */
struct Session
{
    std::string prefix;

    /** combinedArtifactDigest over `digests` — the cache identity. */
    uint64_t identity = 0;

    /** Per-artifact digests captured when the session was built. */
    std::vector<trace::ArtifactDigest> digests;

    trace::ArtifactSidecars sidecars;
    std::unique_ptr<trace::MappedTrace> trace;
    graph::CfgSet cfgs;
    graph::ControlDepMap deps; ///< Sealed at build time (thread-safe reads).

    /** Budget accounting: artifact bytes plus graph-structure estimates. */
    uint64_t approxBytes = 0;

    /**
     * Analysis window for a query: the record count, capped by the
     * metadata load-complete index (unless no_window) and by an
     * explicit end_index override — the same derivation the CLIs use.
     */
    size_t windowEnd(bool no_window, uint64_t end_override) const;
};

class SessionCache
{
  public:
    /**
     * @param byte_budget approximate ceiling on cached session bytes;
     *                    the most recent session is always retained
     *                    even if it exceeds the budget alone.
     * @param forward_jobs worker threads for the forward pass when a
     *                    session is built (0 = all cores).
     */
    explicit SessionCache(uint64_t byte_budget, int forward_jobs = 0);

    SessionCache(const SessionCache &) = delete;
    SessionCache &operator=(const SessionCache &) = delete;

    /**
     * Get the session for `prefix`, building it if absent or stale.
     * Throws FatalError (via the loaders, captured) when the artifacts
     * are missing or malformed — the message carries the loader's
     * file+offset diagnostic for the client.
     *
     * @param was_hit set to true when the forward pass was skipped
     *                (cache hit or joined an in-flight build).
     */
    std::shared_ptr<const Session> acquire(const std::string &prefix,
                                           bool *was_hit = nullptr);

    /**
     * Get the criterion-independent EpochPlan for `session` over the
     * window [0, window_end), building (and caching) it on first use.
     * Plans are keyed by (artifact identity, window) under the default
     * dependence knobs, pin the session they were transcoded from (the
     * plan's dependence spans point into that session's sealed map),
     * and share the byte budget with sessions — over budget, cold plans
     * are evicted before cold sessions, since a plan rebuild is one
     * transcode while a session rebuild is a full forward pass.
     * Concurrent first queries collapse onto one build (singleflight).
     *
     * Returns null when the trace shape does not support plans (the
     * caller runs plan-less); null results are not cached.
     *
     * @param was_hit set to true when an already-built plan was reused
     *                (cache hit or joined an in-flight build).
     */
    std::shared_ptr<const slicer::EpochPlan>
    acquirePlan(const std::shared_ptr<const Session> &session,
                size_t window_end, bool *was_hit = nullptr);

    /** Cache observability (also published as service.* metrics). */
    struct Stats
    {
        uint64_t entries = 0;
        uint64_t bytes = 0;
        uint64_t byteBudget = 0;
        uint64_t hits = 0;
        uint64_t misses = 0;
        uint64_t evictions = 0;
        uint64_t invalidations = 0;
        uint64_t built = 0;     ///< Forward passes actually run.
        uint64_t openWaits = 0; ///< Joins onto an in-flight build.

        /** Epoch-plan cache (bytes are included in `bytes` too). */
        uint64_t planEntries = 0;
        uint64_t planBytes = 0;
        uint64_t planHits = 0;
        uint64_t planMisses = 0;
        uint64_t planBuilds = 0;
        uint64_t planEvictions = 0;
        uint64_t planWaits = 0; ///< Joins onto an in-flight plan build.
    };

    Stats stats() const;

    /** Drop every entry (drain/tests); in-use sessions stay alive. */
    void clear();

  private:
    struct Building
    {
        bool done = false;
        std::shared_ptr<const Session> session;
        std::exception_ptr error;
    };

    struct Entry
    {
        std::shared_ptr<const Session> session;
        std::list<std::string>::iterator lruIt;
    };

    struct PlanBuilding
    {
        bool done = false;
        std::shared_ptr<const slicer::EpochPlan> plan;
        std::exception_ptr error;
    };

    struct PlanEntry
    {
        std::shared_ptr<const slicer::EpochPlan> plan;
        /** Keeps the control-dependence map the plan points into alive
         *  even after the session entry itself is evicted. */
        std::shared_ptr<const Session> session;
        std::list<std::string>::iterator lruIt;
        uint64_t identity = 0;
        uint64_t bytes = 0;
    };

    std::shared_ptr<Session>
    buildSession(const std::string &prefix,
                 std::vector<trace::ArtifactDigest> digests,
                 uint64_t identity) const;

    /** Insert under the lock; evicts LRU entries beyond the budget. */
    void insertLocked(const std::string &prefix,
                      std::shared_ptr<const Session> session);

    void removeLocked(const std::string &prefix);

    /** Move `prefix` to the front of the LRU list. */
    void touchLocked(const std::string &prefix, Entry &entry);

    /** Insert a built plan under the lock; evicts cold plans first. */
    void insertPlanLocked(const std::string &key, PlanEntry entry);

    void removePlanLocked(const std::string &key);

    /** Evict cold plans (never `exempt`) while over the byte budget. */
    void evictPlansLocked(const std::string &exempt);

    /** Drop cached plans built from a now-invalidated recording. */
    void dropPlansForIdentityLocked(uint64_t identity);

    void publishPlanGaugesLocked();

    const uint64_t budget_;
    const int forwardJobs_;

    mutable std::mutex mutex_;
    std::condition_variable buildDone_;
    std::unordered_map<std::string, Entry> entries_;
    std::list<std::string> lru_; ///< Front = most recently used.
    std::map<uint64_t, std::shared_ptr<Building>> building_;
    std::unordered_map<std::string, PlanEntry> planEntries_;
    std::list<std::string> planLru_; ///< Front = most recently used.
    std::map<std::string, std::shared_ptr<PlanBuilding>> planBuilding_;
    uint64_t bytes_ = 0;
    uint64_t planBytes_ = 0; ///< Plans' share of bytes_.
    Stats counters_;
};

} // namespace service
} // namespace webslice

#endif // WEBSLICE_SERVICE_SESSION_CACHE_HH
