#include "service/session_cache.hh"

#include <utility>
#include <vector>

#include "support/logging.hh"
#include "support/metrics.hh"
#include "support/strings.hh"
#include "trace/columnar.hh"

namespace webslice {
namespace service {

namespace {

Counter &
cacheCounter(const char *name)
{
    return MetricRegistry::global().counter(name);
}

/**
 * Rough but monotonic footprint of a prepared session: the artifact
 * bytes (the mmap'd trace dominates) plus per-node/per-edge estimates
 * for the graph structures. The budget is a sizing knob, not an
 * allocator ledger, so "plausibly proportional" is the contract.
 */
uint64_t
estimateSessionBytes(const Session &session)
{
    // Artifacts are charged at their on-disk size — for a columnar (v2)
    // trace that is the compressed footprint, which is also what the
    // digest pass read. The decoded view is charged separately below
    // when the trace could not be mmap'd (v2 always decodes into an
    // owned buffer).
    uint64_t bytes = 0;
    for (const auto &artifact : session.digests)
        if (artifact.digest.ok)
            bytes += artifact.digest.bytes;
    if (session.trace && !session.trace->mapped())
        bytes += session.trace->records().size() * sizeof(trace::Record);

    uint64_t nodes = 0;
    uint64_t edges = 0;
    for (const auto &entry : session.cfgs.byFunc) {
        nodes += entry.second.nodeCount();
        for (const auto &succ : entry.second.succs)
            edges += succ.size();
    }
    // Node: pc + hash slot + two adjacency vector headers; edge: two
    // int32 endpoints kept in both directions.
    bytes += nodes * 96 + edges * 16;
    bytes += session.cfgs.funcOf.size() * sizeof(trace::FuncId);
    bytes += session.deps.pairCount() * 16 + session.deps.nodeCount() * 64;
    return bytes;
}

} // namespace

size_t
Session::windowEnd(bool no_window, uint64_t end_override) const
{
    size_t end = trace->records().size();
    const trace::RunMeta &meta = sidecars.meta;
    if (!no_window && meta.loadOnly && meta.loadCompleteIndex != SIZE_MAX)
        end = std::min(end, meta.loadCompleteIndex);
    if (end_override != UINT64_MAX)
        end = std::min<size_t>(end, end_override);
    return end;
}

SessionCache::SessionCache(uint64_t byte_budget, int forward_jobs)
    : budget_(byte_budget), forwardJobs_(forward_jobs)
{
    counters_.byteBudget = byte_budget;
    // The columnar trace decode cache shares the --cache-bytes budget
    // rather than adding its own: a quarter goes to decoded v2 blocks
    // (ranged reads, epoch transcodes), the rest stays with sessions.
    trace::TraceDecodeCache::global().setBudget(byte_budget / 4);
}

std::shared_ptr<Session>
SessionCache::buildSession(const std::string &prefix,
                           std::vector<trace::ArtifactDigest> digests,
                           uint64_t identity) const
{
    // Loader failures must reach the caller as exceptions with the
    // loaders' own file+offset diagnostics, not exit the daemon.
    ScopedFatalCapture capture;
    auto session = std::make_shared<Session>();
    session->prefix = prefix;
    session->identity = identity;
    session->digests = std::move(digests);
    session->sidecars = trace::loadArtifactSidecars(prefix);
    session->trace =
        std::make_unique<trace::MappedTrace>(prefix + ".trc");
    session->cfgs = graph::buildCfgs(session->trace->records(),
                                     session->sidecars.symtab,
                                     forwardJobs_);
    session->deps = graph::buildControlDeps(session->cfgs, forwardJobs_);
    // Seal now: concurrent queries will probe depsOf() from worker
    // threads, and the lazy first-use seal is not race-safe.
    session->deps.ensureSealed();
    session->approxBytes = estimateSessionBytes(*session);
    return session;
}

std::shared_ptr<const Session>
SessionCache::acquire(const std::string &prefix, bool *was_hit)
{
    if (was_hit)
        *was_hit = false;

    // Digest outside the lock: it reads every artifact byte and must
    // not serialize against other lookups.
    auto digests = trace::digestArtifacts(prefix);
    const uint64_t identity = trace::combinedArtifactDigest(digests);

    std::unique_lock<std::mutex> lock(mutex_);
    auto it = entries_.find(prefix);
    if (it != entries_.end()) {
        if (it->second.session->identity == identity) {
            ++counters_.hits;
            cacheCounter("service.cache_hits").add();
            touchLocked(prefix, it->second);
            if (was_hit)
                *was_hit = true;
            return it->second.session;
        }
        // The files changed under the prefix: the entry describes a
        // recording that no longer exists on disk, and so do any plans
        // transcoded from it.
        ++counters_.invalidations;
        cacheCounter("service.cache_invalidations").add();
        dropPlansForIdentityLocked(it->second.session->identity);
        removeLocked(prefix);
    }

    ++counters_.misses;
    cacheCounter("service.cache_misses").add();

    auto inflight = building_.find(identity);
    if (inflight != building_.end()) {
        // Same recording already being prepared: wait for that forward
        // pass instead of running a duplicate.
        ++counters_.openWaits;
        cacheCounter("service.cache_open_waits").add();
        auto build = inflight->second;
        buildDone_.wait(lock, [&] { return build->done; });
        if (build->error)
            std::rethrow_exception(build->error);
        if (entries_.find(prefix) == entries_.end())
            insertLocked(prefix, build->session);
        if (was_hit)
            *was_hit = true; // The forward pass was shared, not re-run.
        return build->session;
    }

    auto build = std::make_shared<Building>();
    building_.emplace(identity, build);
    lock.unlock();

    std::shared_ptr<Session> session;
    try {
        session = buildSession(prefix, std::move(digests), identity);
    } catch (...) {
        std::lock_guard<std::mutex> relock(mutex_);
        building_.erase(identity);
        build->error = std::current_exception();
        build->done = true;
        buildDone_.notify_all();
        throw;
    }

    lock.lock();
    ++counters_.built;
    cacheCounter("service.sessions_built").add();
    insertLocked(prefix, session);
    building_.erase(identity);
    build->session = session;
    build->done = true;
    buildDone_.notify_all();
    return session;
}

void
SessionCache::insertLocked(const std::string &prefix,
                           std::shared_ptr<const Session> session)
{
    // A racing rebuild of the same prefix (files changed while another
    // build was in flight) may have landed first; replace it cleanly
    // so the LRU list and byte ledger stay consistent.
    removeLocked(prefix);
    lru_.push_front(prefix);
    bytes_ += session->approxBytes;
    entries_[prefix] = Entry{std::move(session), lru_.begin()};

    // Over budget, cold plans go before cold sessions: rebuilding a
    // plan is one transcode, rebuilding a session is a forward pass.
    evictPlansLocked(std::string());

    // Evict from the cold end until the budget holds; the entry just
    // inserted is exempt, since a cache that cannot hold the session
    // being served would thrash forever.
    while (bytes_ > budget_ && lru_.size() > 1) {
        const std::string victim = lru_.back();
        ++counters_.evictions;
        cacheCounter("service.cache_evictions").add();
        removeLocked(victim);
    }
    MetricRegistry::global().gauge("service.cache_bytes").set(bytes_);
    MetricRegistry::global().gauge("service.cache_entries")
        .set(entries_.size());
}

void
SessionCache::removeLocked(const std::string &prefix)
{
    auto it = entries_.find(prefix);
    if (it == entries_.end())
        return;
    bytes_ -= it->second.session->approxBytes;
    lru_.erase(it->second.lruIt);
    entries_.erase(it);
    MetricRegistry::global().gauge("service.cache_bytes").set(bytes_);
    MetricRegistry::global().gauge("service.cache_entries")
        .set(entries_.size());
}

void
SessionCache::touchLocked(const std::string &prefix, Entry &entry)
{
    lru_.erase(entry.lruIt);
    lru_.push_front(prefix);
    entry.lruIt = lru_.begin();
}

std::shared_ptr<const slicer::EpochPlan>
SessionCache::acquirePlan(const std::shared_ptr<const Session> &session,
                          size_t window_end, bool *was_hit)
{
    if (was_hit)
        *was_hit = false;
    const std::string key =
        format("%016llx|%llu",
               static_cast<unsigned long long>(session->identity),
               static_cast<unsigned long long>(window_end));

    std::unique_lock<std::mutex> lock(mutex_);
    auto it = planEntries_.find(key);
    if (it != planEntries_.end()) {
        ++counters_.planHits;
        cacheCounter("service.plan_hits").add();
        planLru_.erase(it->second.lruIt);
        planLru_.push_front(key);
        it->second.lruIt = planLru_.begin();
        if (was_hit)
            *was_hit = true;
        return it->second.plan;
    }
    ++counters_.planMisses;
    cacheCounter("service.plan_misses").add();

    auto inflight = planBuilding_.find(key);
    if (inflight != planBuilding_.end()) {
        // Another query over the same window is already transcoding;
        // join that build instead of running a duplicate.
        ++counters_.planWaits;
        cacheCounter("service.plan_waits").add();
        auto build = inflight->second;
        buildDone_.wait(lock, [&] { return build->done; });
        if (build->error)
            std::rethrow_exception(build->error);
        if (was_hit)
            *was_hit = build->plan != nullptr;
        return build->plan;
    }

    auto build = std::make_shared<PlanBuilding>();
    planBuilding_.emplace(key, build);
    lock.unlock();

    std::shared_ptr<const slicer::EpochPlan> plan;
    try {
        ScopedFatalCapture capture;
        slicer::SlicerOptions options;
        options.endIndex = window_end;
        plan = slicer::buildEpochPlan(session->trace->records(),
                                      session->cfgs, session->deps,
                                      options);
    } catch (...) {
        std::lock_guard<std::mutex> relock(mutex_);
        planBuilding_.erase(key);
        build->error = std::current_exception();
        build->done = true;
        buildDone_.notify_all();
        throw;
    }

    lock.lock();
    planBuilding_.erase(key);
    build->plan = plan;
    build->done = true;
    buildDone_.notify_all();
    if (plan) {
        ++counters_.planBuilds;
        cacheCounter("service.plan_builds").add();
        PlanEntry entry;
        entry.plan = plan;
        entry.session = session;
        entry.identity = session->identity;
        entry.bytes = plan->approxBytes();
        insertPlanLocked(key, std::move(entry));
    }
    return plan;
}

void
SessionCache::insertPlanLocked(const std::string &key, PlanEntry entry)
{
    removePlanLocked(key); // racing builds of the same key: last wins
    planLru_.push_front(key);
    entry.lruIt = planLru_.begin();
    bytes_ += entry.bytes;
    planBytes_ += entry.bytes;
    planEntries_[key] = std::move(entry);
    evictPlansLocked(key);
    publishPlanGaugesLocked();
}

void
SessionCache::removePlanLocked(const std::string &key)
{
    auto it = planEntries_.find(key);
    if (it == planEntries_.end())
        return;
    bytes_ -= it->second.bytes;
    planBytes_ -= it->second.bytes;
    planLru_.erase(it->second.lruIt);
    planEntries_.erase(it);
    publishPlanGaugesLocked();
}

void
SessionCache::evictPlansLocked(const std::string &exempt)
{
    // The plan just inserted (if any) is exempt for the same reason the
    // newest session is: a cache that cannot hold what it is serving
    // would thrash forever.
    while (bytes_ > budget_ && !planLru_.empty() &&
           planLru_.back() != exempt) {
        const std::string victim = planLru_.back();
        ++counters_.planEvictions;
        cacheCounter("service.plan_evictions").add();
        removePlanLocked(victim);
    }
}

void
SessionCache::dropPlansForIdentityLocked(uint64_t identity)
{
    std::vector<std::string> victims;
    for (const auto &kv : planEntries_)
        if (kv.second.identity == identity)
            victims.push_back(kv.first);
    for (const auto &key : victims)
        removePlanLocked(key);
}

void
SessionCache::publishPlanGaugesLocked()
{
    MetricRegistry::global().gauge("service.plan_bytes").set(planBytes_);
    MetricRegistry::global().gauge("service.plan_entries")
        .set(planEntries_.size());
    MetricRegistry::global().gauge("service.cache_bytes").set(bytes_);
}

SessionCache::Stats
SessionCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    Stats out = counters_;
    out.entries = entries_.size();
    out.bytes = bytes_;
    out.byteBudget = budget_;
    out.planEntries = planEntries_.size();
    out.planBytes = planBytes_;
    return out;
}

void
SessionCache::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
    lru_.clear();
    planEntries_.clear();
    planLru_.clear();
    bytes_ = 0;
    planBytes_ = 0;
    MetricRegistry::global().gauge("service.cache_bytes").set(0);
    MetricRegistry::global().gauge("service.cache_entries").set(0);
    MetricRegistry::global().gauge("service.plan_bytes").set(0);
    MetricRegistry::global().gauge("service.plan_entries").set(0);
}

} // namespace service
} // namespace webslice
