/**
 * @file
 * The webslice-serve-v1 wire protocol.
 *
 * Transport: length-prefixed JSON frames over a stream socket (Unix
 * domain by default, optionally loopback TCP). A frame is a 4-byte
 * little-endian payload length followed by exactly that many bytes of
 * UTF-8 JSON — one value per frame. Lengths of zero or beyond
 * kMaxFrameBytes are protocol violations and close the connection;
 * nothing in the protocol requires buffering more than one frame.
 *
 * Requests are objects with an "op" member:
 *   {"op":"ping"}
 *   {"op":"stats"}
 *   {"op":"shutdown"}                       — begin graceful drain
 *   {"op":"batch","prefix":P,"queries":[Q…]} — slice queries, see
 *       SliceQuery for the per-query members.
 *
 * A batch answers with one {"op":"result","id":i,…} frame per query —
 * streamed as results become available, in submission order — followed
 * by a closing {"op":"batch_done",…} summary. Every response object
 * carries "schema":"webslice-serve-v1" and "status". Errors never kill
 * the daemon: a malformed request or a failed artifact load turns into
 * a status:"error" response whose "error" string carries the loader's
 * file+offset diagnostic verbatim.
 */

#ifndef WEBSLICE_SERVICE_PROTOCOL_HH
#define WEBSLICE_SERVICE_PROTOCOL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "service/json.hh"
#include "slicer/slicer.hh"

namespace webslice {
namespace service {

/** Schema tag stamped on every response frame. */
constexpr char kServeSchema[] = "webslice-serve-v1";

/** Hard ceiling on a frame payload; beyond it the peer is misbehaving. */
constexpr uint32_t kMaxFrameBytes = 64u << 20;

/** Outcome of one frame read. */
enum class FrameRead
{
    Ok,    ///< A complete frame was read.
    Eof,   ///< The peer closed cleanly between frames.
    Error, ///< I/O error or protocol violation (see error string).
};

/**
 * Read one length-prefixed frame from `fd` into `payload`. A clean EOF
 * before any prefix byte reports Eof; a truncated prefix or payload, a
 * zero length, or a length above `max_bytes` reports Error.
 */
FrameRead readFrame(int fd, std::string &payload, std::string &error,
                    uint32_t max_bytes = kMaxFrameBytes);

/**
 * Write one length-prefixed frame; false (with error) on failure. The
 * validity rules mirror readFrame exactly — empty payloads and payloads
 * beyond `max_bytes` are refused before any byte hits the wire, so a
 * conforming writer can never produce a frame a conforming reader
 * rejects. `errno_out` (optional) receives the errno of a failed
 * write, 0 for a validation refusal — callers use it to tell a
 * vanished peer (EPIPE/ECONNRESET) from a sick socket.
 */
bool writeFrame(int fd, std::string_view payload, std::string &error,
                uint32_t max_bytes = kMaxFrameBytes,
                int *errno_out = nullptr);

/** One slicing criterion of a batch request. */
struct SliceQuery
{
    slicer::CriteriaMode mode = slicer::CriteriaMode::PixelBuffer;

    /** Ignore the metadata load-complete window (profile --no-window). */
    bool noWindow = false;

    /** Extra window cap (exclusive record index); UINT64_MAX = none. */
    uint64_t endIndex = UINT64_MAX;

    /** Backward-pass worker threads for this query (1 = sequential). */
    int backwardJobs = 1;

    /** Queue deadline in milliseconds; 0 = wait however long it takes.
     *  Checked when the query is dequeued, before its run starts. */
    uint64_t timeoutMs = 0;

    /** Test hook: sleep this long at run start (after dequeue, before
     *  the deadline check of the *next* queued job can pass). */
    uint64_t debugSleepMs = 0;

    /**
     * Canonical identity of the work this query requests against one
     * recording; in-flight requests with equal keys are deduplicated.
     * Excludes timeoutMs — a deadline changes when a caller gives up,
     * not what is computed.
     */
    std::string dedupKey(uint64_t session_identity) const;

    Json toJson() const;

    /** Parse a query object; false + error on malformed members. */
    static bool fromJson(const Json &json, SliceQuery &out,
                         std::string &error);
};

/** One query's response, as carried by a "result" frame. */
struct QueryResult
{
    enum class Status
    {
        Ok,
        Error,    ///< Load or analysis failure; `error` explains.
        Rejected, ///< Bounded queue was full (backpressure).
        Timeout,  ///< Deadline passed while queued.
    };

    Status status = Status::Error;
    std::string error;

    /** Fleet identity: which shard computed this result, and that
     *  shard's generation. Empty/0 outside fleet deployments. A
     *  fleet-aware client uses these to attribute results after a
     *  mid-batch failover. */
    std::string shard;
    uint64_t shardEpoch = 0;

    // Scheduling telemetry.
    bool cacheHit = false; ///< Session served from the cache.
    bool planHit = false;  ///< Reused a cached epoch plan (warm query).
    bool deduped = false;  ///< Attached to an identical in-flight query.
    double queueMs = 0.0;
    double runMs = 0.0;
    double sliceMs = 0.0; ///< Backward pass only (inside runMs).

    // Slice summary (valid when status == Ok).
    std::string mode;
    uint64_t records = 0;
    uint64_t windowEnd = 0;
    uint64_t instructionsAnalyzed = 0;
    uint64_t sliceInstructions = 0;
    uint64_t criteriaBytesSeeded = 0;
    double slicePercent = 0.0;
    /** FNV-1a-64 of the per-record verdict bytes — the bit-identity
     *  handle compared against webslice-profile's in_slice_fnv1a. */
    uint64_t inSliceFnv1a = 0;

    // Categorization summary (valid when status == Ok).
    double categoryCoveragePercent = 0.0;
    std::vector<std::pair<std::string, double>> categoryShares;

    static const char *statusName(Status s);

    /** Render as a "result" frame body for query index `id`. */
    Json toJson(size_t id) const;

    /** Parse a "result" frame body (the client's side). */
    static bool fromJson(const Json &json, QueryResult &out,
                         std::string &error);
};

/** Build an error response frame body (non-result, e.g. bad request). */
Json errorResponse(const std::string &message);

} // namespace service
} // namespace webslice

#endif // WEBSLICE_SERVICE_PROTOCOL_HH
