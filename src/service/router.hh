/**
 * @file
 * Fleet-side routing for webslice-served shards.
 *
 * A fleet is N independent webslice-served processes ("shards"), each
 * with its own session cache, listening on its own socket. Nothing is
 * shared between them, so placement is the whole ballgame: the same
 * recording must land on the same shard every time or every shard ends
 * up building every session. ShardRouter makes placement a pure
 * function of the recording's combined artifact digest — the identity
 * the SessionCache already computes — via a consistent-hash ring, so
 * routing is deterministic across client restarts and adding a shard
 * remaps only ~1/N of the keyspace instead of reshuffling everything.
 *
 * FleetClient layers failure handling on top: it routes each batch to
 * the digest's primary shard, streams results, and on a dead or
 * draining shard resends only the unanswered queries to the next
 * replica on the ring. Results are deduplicated by request id, so a
 * failover mid-batch never loses or double-reports a criterion. The
 * replica that would take over is kept warm with advisory "warm" ops.
 */

#ifndef WEBSLICE_SERVICE_ROUTER_HH
#define WEBSLICE_SERVICE_ROUTER_HH

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "service/client.hh"
#include "service/protocol.hh"

namespace webslice {
namespace service {

/**
 * Connect `client` to a fleet endpoint spec: "host:port" (numeric
 * port, no '/') dials loopback TCP, anything else is a Unix socket
 * path. False + error when the dial fails.
 */
bool connectEndpoint(const std::string &spec, ServiceClient &client,
                     std::string &error);

/**
 * Consistent-hash ring over shard endpoints.
 *
 * Each endpoint contributes `virtualNodes` points (FNV-1a-64 of
 * "endpoint#i") so load spreads evenly even with two or three shards.
 * A key's owners are the first distinct live endpoints clockwise from
 * the key's mixed hash — the classic Karger ring, which is what gives
 * the ~1/N remap property when the fleet grows or shrinks.
 *
 * Liveness (setDown/setUp) only filters lookups; the ring itself is
 * built once from the endpoint list and never changes, so two clients
 * configured with the same fleet agree on placement even while they
 * disagree on which shards are currently reachable.
 *
 * Not thread-safe; give each client thread its own router.
 */
class ShardRouter
{
  public:
    explicit ShardRouter(std::vector<std::string> endpoints,
                         int virtualNodes = 64);

    const std::vector<std::string> &endpoints() const
    {
        return endpoints_;
    }

    size_t size() const { return endpoints_.size(); }

    /** Endpoints not currently marked down. */
    size_t liveCount() const;

    void setDown(const std::string &endpoint);
    void setUp(const std::string &endpoint);
    bool isDown(const std::string &endpoint) const;

    /**
     * Up to `count` distinct live endpoints owning `digest`, primary
     * first, in ring order. Fewer (possibly zero) when the fleet is
     * mostly down.
     */
    std::vector<std::string> ownersFor(uint64_t digest,
                                       size_t count) const;

    /** The live primary for `digest`; empty when none is live. */
    std::string primaryFor(uint64_t digest) const;

  private:
    struct Point
    {
        uint64_t hash;
        uint32_t endpoint; ///< Index into endpoints_.
    };

    std::vector<std::string> endpoints_;
    std::vector<bool> down_;
    std::vector<Point> ring_; ///< Sorted by hash.
};

/**
 * A batch client that speaks to a whole fleet instead of one daemon.
 *
 * Mirrors ServiceClient::batch but owns endpoint selection, failover,
 * and result dedup. Artifact digests are computed once per prefix and
 * cached — routing a warm batch costs a hash-map lookup, not four file
 * reads. Not thread-safe; one FleetClient per client thread.
 */
class FleetClient
{
  public:
    struct Options
    {
        /** Owners tried per digest: primary plus (replicas-1) backups. */
        int replicas = 2;

        /** Keep the first backup's session warm with advisory "warm"
         *  ops (sent once per digest+replica) so a failover lands on a
         *  hot cache instead of a cold build. */
        bool warmReplicas = true;
    };

    explicit FleetClient(std::vector<std::string> endpoints);
    FleetClient(std::vector<std::string> endpoints, Options options);

    struct Stats
    {
        uint64_t batches = 0;
        uint64_t failovers = 0;  ///< Re-routes after a shard failure.
        uint64_t duplicates = 0; ///< Dropped already-answered results.
        uint64_t warmsSent = 0;  ///< Advisory replica warms issued.
    };

    /** Combined artifact digest for `prefix` (cached). */
    uint64_t digestFor(const std::string &prefix);

    /** Live owner endpoints for `prefix`, primary first. */
    std::vector<std::string> ownersFor(const std::string &prefix);

    /**
     * Ping every endpoint; unreachable or draining shards are marked
     * down, recovered ones marked up. Returns the live count. Called
     * lazily by batch() after a failure, or explicitly by tools that
     * want to report fleet health.
     */
    size_t discover();

    /**
     * Run `queries` against the fleet. Semantics match
     * ServiceClient::batch, plus failover: if the owning shard dies or
     * starts draining mid-batch, the unanswered remainder is resent to
     * the next replica with request ids remapped back to the caller's
     * numbering, and any result arriving twice is dropped. `on_result`
     * sees each raw frame with its "id" rewritten to the caller's id.
     * False + error only when every replica has been exhausted; the
     * partial results gathered so far stay in `outcome`.
     */
    bool batch(const std::string &prefix,
               const std::vector<SliceQuery> &queries,
               ServiceClient::BatchOutcome &outcome, std::string &error,
               const std::function<void(const Json &)> &on_result = {});

    /** One-shot call (ping/stats/...) against a specific endpoint. */
    bool callOn(const std::string &endpoint, const Json &request,
                Json &response, std::string &error);

    const ShardRouter &router() const { return router_; }
    ShardRouter &router() { return router_; }
    Stats stats() const { return stats_; }

  private:
    void warmReplica(uint64_t digest, const std::string &prefix,
                     const std::string &endpoint);

    ShardRouter router_;
    Options options_;
    Stats stats_;
    std::unordered_map<std::string, uint64_t> digests_;
    std::unordered_set<std::string> warmed_; ///< "digest@endpoint".
};

} // namespace service
} // namespace webslice

#endif // WEBSLICE_SERVICE_ROUTER_HH
