#include "service/scheduler.hh"

#include <algorithm>
#include <thread>

#include "analysis/categorize.hh"
#include "support/logging.hh"
#include "support/metrics.hh"
#include "support/strings.hh"

namespace webslice {
namespace service {

namespace {

double
millisSince(std::chrono::steady_clock::time_point from,
            std::chrono::steady_clock::time_point to)
{
    return std::chrono::duration<double, std::milli>(to - from).count();
}

} // namespace

const QueryResult &
Job::wait() const
{
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return done_; });
    return result_;
}

bool
Job::done() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return done_;
}

Scheduler::Scheduler(SessionCache &cache, const Options &options)
    : cache_(cache),
      pool_(static_cast<unsigned>(std::max(1, options.workers))),
      maxQueue_(std::max<size_t>(1, options.maxQueue)),
      usePlans_(options.usePlans)
{
}

Scheduler::~Scheduler()
{
    drain();
}

Scheduler::Submitted
Scheduler::submit(const std::string &prefix, const SliceQuery &query)
{
    auto &registry = MetricRegistry::global();
    std::shared_ptr<Job> job;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++counters_.submitted;
        registry.counter("service.requests_total").add();

        // Identical in-flight work is joined, not repeated; the key
        // folds the prefix so distinct recordings never collide.
        const std::string key = query.dedupKey(
            fnv1a64(prefix.data(), prefix.size()));
        auto inflight = inflight_.find(key);
        if (inflight != inflight_.end()) {
            if (auto twin = inflight->second.lock()) {
                ++counters_.deduped;
                registry.counter("service.requests_deduped").add();
                twin->waiters_.fetch_add(1, std::memory_order_relaxed);
                return {twin, false, true};
            }
            inflight_.erase(inflight);
        }

        if (inQueue_ >= maxQueue_) {
            // Backpressure: reply immediately instead of queueing
            // without bound — the client can retry or shed load.
            ++counters_.rejected;
            registry.counter("service.requests_rejected").add();
            auto rejected = std::make_shared<Job>();
            rejected->done_ = true;
            rejected->result_.status = QueryResult::Status::Rejected;
            rejected->result_.error = format(
                "queue full (%zu requests in flight)", inQueue_);
            return {rejected, true, false};
        }

        job = std::make_shared<Job>();
        job->prefix_ = prefix;
        job->query_ = query;
        job->dedupKey_ = key;
        job->submitted_ = std::chrono::steady_clock::now();
        if (query.timeoutMs != 0) {
            job->deadline_ = job->submitted_ +
                             std::chrono::milliseconds(query.timeoutMs);
        }
        ++inQueue_;
        counters_.queueDepthPeak =
            std::max<uint64_t>(counters_.queueDepthPeak, inQueue_);
        registry.gauge("service.queue_depth_peak").setMax(inQueue_);
        inflight_[key] = job;
    }
    pool_.post(group_, [this, job] { runJob(job); });
    return {job, false, false};
}

void
Scheduler::abandon(const std::shared_ptr<Job> &job)
{
    if (!job || job->done())
        return;
    job->waiters_.fetch_sub(1, std::memory_order_relaxed);
}

void
Scheduler::warmSession(const std::string &prefix)
{
    MetricRegistry::global().counter("service.warm_requests").add();
    pool_.post(group_, [this, prefix] {
        try {
            ScopedFatalCapture capture;
            bool hit = false;
            cache_.acquire(prefix, &hit);
            if (!hit) {
                MetricRegistry::global()
                    .counter("service.sessions_replicated")
                    .add();
            }
        } catch (const std::exception &) {
            // Advisory build only — nobody is waiting on this result.
        }
    });
}

void
Scheduler::runJob(const std::shared_ptr<Job> &job)
{
    const auto start = std::chrono::steady_clock::now();
    QueryResult result;
    result.queueMs = millisSince(job->submitted_, start);

    // A job whose every waiter hung up while it was queued is cancelled
    // here, not computed-and-discarded: the backward pass it would run
    // can be hundreds of milliseconds of pure waste. (Dedup twins keep
    // the job alive — waiters_ counts every attached connection.)
    if (job->waiters_.load(std::memory_order_relaxed) <= 0) {
        result.status = QueryResult::Status::Error;
        result.error = "abandoned: every waiting client disconnected "
                       "before the query ran";
        finishJob(job, std::move(result), /*abandoned=*/true);
        return;
    }

    if (job->deadline_ != std::chrono::steady_clock::time_point{} &&
        start > job->deadline_) {
        result.status = QueryResult::Status::Timeout;
        result.error = format("deadline of %llu ms passed after %.1f ms "
                              "in queue",
                              static_cast<unsigned long long>(
                                  job->query_.timeoutMs),
                              result.queueMs);
        finishJob(job, std::move(result));
        return;
    }

    if (job->query_.debugSleepMs != 0) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(job->query_.debugSleepMs));
    }

    try {
        // Any fatal() raised by the loaders below must fail this one
        // request with its diagnostic, never the process.
        ScopedFatalCapture capture;
        bool cache_hit = false;
        const auto session = cache_.acquire(job->prefix_, &cache_hit);
        result.cacheHit = cache_hit;

        slicer::SlicerOptions options;
        options.mode = job->query_.mode;
        options.backwardJobs = job->query_.backwardJobs;
        options.endIndex = session->windowEnd(job->query_.noWindow,
                                              job->query_.endIndex);

        // Route through the cached criterion-independent transcode:
        // first query over this (recording, window) builds the plan
        // (singleflight), warm ones skip the transcode pass entirely.
        // The shared_ptr keeps the plan (and the session it points
        // into) alive for the duration of the slice.
        std::shared_ptr<const slicer::EpochPlan> plan;
        bool plan_hit = false;
        if (usePlans_) {
            plan = cache_.acquirePlan(session, options.endIndex,
                                      &plan_hit);
            options.reusePlan = plan.get();
        }
        result.planHit = plan_hit;

        const auto records = session->trace->records();
        const auto slice_start = std::chrono::steady_clock::now();
        const auto slice = slicer::computeSlice(
            records, session->cfgs, session->deps,
            session->sidecars.criteria, options);
        result.sliceMs = millisSince(slice_start,
                                     std::chrono::steady_clock::now());

        result.mode = job->query_.mode ==
                              slicer::CriteriaMode::PixelBuffer
                          ? "pixel-buffer"
                          : "syscalls";
        result.records = records.size();
        result.windowEnd = slice.analyzedWindowEnd;
        result.instructionsAnalyzed = slice.instructionsAnalyzed;
        result.sliceInstructions = slice.sliceInstructions;
        result.criteriaBytesSeeded = slice.criteriaBytesSeeded;
        result.slicePercent = slice.slicePercent();
        result.inSliceFnv1a =
            fnv1a64(slice.inSlice.data(), slice.inSlice.size());

        const auto dist = analysis::categorizeUnnecessary(
            records, slice.inSlice, session->cfgs,
            session->sidecars.symtab,
            analysis::Categorizer::chromiumDefault(),
            slice.analyzedWindowEnd);
        result.categoryCoveragePercent = dist.coveragePercent();
        for (const auto &category :
             analysis::Categorizer::reportOrder()) {
            const double share = dist.sharePercent(category);
            if (share > 0.0)
                result.categoryShares.emplace_back(category, share);
        }
        result.status = QueryResult::Status::Ok;
    } catch (const std::exception &e) {
        result.status = QueryResult::Status::Error;
        result.error = e.what();
    }

    result.runMs = millisSince(start, std::chrono::steady_clock::now());
    finishJob(job, std::move(result));
}

void
Scheduler::finishJob(const std::shared_ptr<Job> &job, QueryResult result,
                     bool abandoned)
{
    auto &registry = MetricRegistry::global();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        --inQueue_;
        ++counters_.completed;
        if (abandoned) {
            ++counters_.abandoned;
            registry.counter("service.requests_abandoned").add();
        } else {
            switch (result.status) {
              case QueryResult::Status::Ok:
                registry.counter("service.requests_ok").add();
                break;
              case QueryResult::Status::Timeout:
                ++counters_.timedOut;
                registry.counter("service.requests_timed_out").add();
                break;
              default:
                ++counters_.failed;
                registry.counter("service.requests_failed").add();
                break;
            }
        }
        auto it = inflight_.find(job->dedupKey_);
        if (it != inflight_.end() && it->second.lock() == job)
            inflight_.erase(it);
    }
    {
        std::lock_guard<std::mutex> lock(job->mutex_);
        job->result_ = std::move(result);
        job->done_ = true;
    }
    job->cv_.notify_all();
}

void
Scheduler::drain()
{
    pool_.drain(group_);
}

Scheduler::Stats
Scheduler::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return counters_;
}

} // namespace service
} // namespace webslice
