/**
 * @file
 * Multi-criteria batch scheduling over cached sessions.
 *
 * Each slicing criterion of a batch becomes one Job run on the shared
 * ThreadPool, so a batch of N criteria against one session executes
 * its backward passes concurrently (each query may additionally use
 * the epoch-parallel slicer internally via backward_jobs). Robustness
 * is part of the contract:
 *
 *  - bounded queue: submissions beyond the configured depth are
 *    rejected immediately (429-style backpressure) instead of growing
 *    an unbounded backlog;
 *  - dedup: an in-flight job with the same (recording identity,
 *    criterion) key absorbs identical submissions — both callers get
 *    the one result;
 *  - timeouts: a query whose queue deadline passed by the time a
 *    worker dequeues it reports Timeout without running;
 *  - isolation: loader/analysis failures are captured per job (see
 *    ScopedFatalCapture) and reported in that job's result only.
 */

#ifndef WEBSLICE_SERVICE_SCHEDULER_HH
#define WEBSLICE_SERVICE_SCHEDULER_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "service/protocol.hh"
#include "service/session_cache.hh"
#include "support/thread_pool.hh"

namespace webslice {
namespace service {

/** Handle to one submitted query; wait() blocks until its result. */
class Job
{
  public:
    /** Block until the job has completed and return its result. */
    const QueryResult &wait() const;

    bool done() const;

  private:
    friend class Scheduler;

    mutable std::mutex mutex_;
    mutable std::condition_variable cv_;
    bool done_ = false;
    QueryResult result_;

    /** Connections still waiting on this job. Starts at one for the
     *  submitter; each dedup twin adds one; Scheduler::abandon takes
     *  one away. A job dequeued with no waiters left is cancelled
     *  instead of computed — its result would be thrown away anyway. */
    std::atomic<int> waiters_{1};

    std::string prefix_;
    SliceQuery query_;
    std::string dedupKey_;
    std::chrono::steady_clock::time_point submitted_;
    std::chrono::steady_clock::time_point deadline_{}; ///< zero = none.
};

class Scheduler
{
  public:
    struct Options
    {
        /** Concurrent query workers (>= 1; clamped). */
        int workers = 2;

        /** Queued + running ceiling before submissions are rejected. */
        size_t maxQueue = 64;

        /**
         * Route queries through cached EpochPlans: the first query over
         * a (recording, window) pays one transcode, every later one
         * skips that pass entirely (plus any epochs its live set
         * provably never reaches). Results are bit-identical either
         * way; off is the cold-path baseline for benchmarks.
         */
        bool usePlans = true;
    };

    Scheduler(SessionCache &cache, const Options &options);
    ~Scheduler();

    Scheduler(const Scheduler &) = delete;
    Scheduler &operator=(const Scheduler &) = delete;

    /** Outcome of submit(): the job plus how it was admitted. */
    struct Submitted
    {
        std::shared_ptr<Job> job;
        bool rejected = false; ///< Bounced off the full queue.
        bool deduped = false;  ///< Attached to an in-flight twin.
    };

    /**
     * Enqueue one query. Never blocks: a full queue yields an already
     * completed Rejected job, and a duplicate of an in-flight query
     * returns that query's job with `deduped` set.
     */
    Submitted submit(const std::string &prefix, const SliceQuery &query);

    /**
     * Declare that a waiter is gone (its connection dropped mid-batch).
     * A queued job whose every waiter abandoned it is cancelled at
     * dequeue time — no backward pass runs for a result nobody will
     * read. Already-running or already-done jobs are unaffected, as are
     * dedup twins still waited on by another connection.
     */
    void abandon(const std::shared_ptr<Job> &job);

    /**
     * Asynchronously build (or refresh) the session for `prefix` on the
     * worker pool without slicing anything — the replication path: a
     * fleet router warms a recording's replica shard so a failover
     * lands on a hot session. Best-effort: load failures are dropped
     * (the real query will surface the loader's diagnostic).
     */
    void warmSession(const std::string &prefix);

    /** Block until every submitted job has completed (graceful drain). */
    void drain();

    struct Stats
    {
        uint64_t submitted = 0;
        uint64_t completed = 0;
        uint64_t rejected = 0;
        uint64_t deduped = 0;
        uint64_t timedOut = 0;
        uint64_t failed = 0;
        uint64_t abandoned = 0; ///< Cancelled unrun: all waiters gone.
        uint64_t queueDepthPeak = 0;
    };

    Stats stats() const;

  private:
    void runJob(const std::shared_ptr<Job> &job);
    void finishJob(const std::shared_ptr<Job> &job, QueryResult result,
                   bool abandoned = false);

    SessionCache &cache_;
    ThreadPool pool_;
    TaskGroup group_;
    const size_t maxQueue_;
    const bool usePlans_;

    mutable std::mutex mutex_;
    size_t inQueue_ = 0; ///< Jobs submitted but not yet finished.
    std::unordered_map<std::string, std::weak_ptr<Job>> inflight_;
    Stats counters_;
};

} // namespace service
} // namespace webslice

#endif // WEBSLICE_SERVICE_SCHEDULER_HH
