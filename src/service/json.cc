#include "service/json.hh"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "support/metrics.hh" // jsonEscape
#include "support/strings.hh"

namespace webslice {
namespace service {

Json
Json::boolean(bool v)
{
    Json j;
    j.kind_ = Kind::Bool;
    j.bool_ = v;
    return j;
}

Json
Json::integer(int64_t v)
{
    Json j;
    j.kind_ = Kind::Int;
    j.int_ = v;
    return j;
}

Json
Json::number(double v)
{
    Json j;
    j.kind_ = Kind::Double;
    j.double_ = v;
    return j;
}

Json
Json::string(std::string v)
{
    Json j;
    j.kind_ = Kind::String;
    j.string_ = std::move(v);
    return j;
}

Json
Json::array()
{
    Json j;
    j.kind_ = Kind::Array;
    return j;
}

Json
Json::object()
{
    Json j;
    j.kind_ = Kind::Object;
    return j;
}

bool
Json::asBool(bool fallback) const
{
    return kind_ == Kind::Bool ? bool_ : fallback;
}

int64_t
Json::asInt(int64_t fallback) const
{
    if (kind_ == Kind::Int)
        return int_;
    if (kind_ == Kind::Double)
        return static_cast<int64_t>(double_);
    return fallback;
}

double
Json::asDouble(double fallback) const
{
    if (kind_ == Kind::Double)
        return double_;
    if (kind_ == Kind::Int)
        return static_cast<double>(int_);
    return fallback;
}

const std::string &
Json::asString() const
{
    static const std::string empty;
    return kind_ == Kind::String ? string_ : empty;
}

const std::vector<Json> &
Json::items() const
{
    static const std::vector<Json> empty;
    return kind_ == Kind::Array ? items_ : empty;
}

const std::vector<std::pair<std::string, Json>> &
Json::members() const
{
    static const std::vector<std::pair<std::string, Json>> empty;
    return kind_ == Kind::Object ? members_ : empty;
}

const Json *
Json::find(const std::string &key) const
{
    if (kind_ != Kind::Object)
        return nullptr;
    for (const auto &member : members_) {
        if (member.first == key)
            return &member.second;
    }
    return nullptr;
}

Json &
Json::push(Json v)
{
    if (kind_ == Kind::Null)
        kind_ = Kind::Array;
    items_.push_back(std::move(v));
    return *this;
}

Json &
Json::set(std::string key, Json v)
{
    if (kind_ == Kind::Null)
        kind_ = Kind::Object;
    for (auto &member : members_) {
        if (member.first == key) {
            member.second = std::move(v);
            return *this;
        }
    }
    members_.emplace_back(std::move(key), std::move(v));
    return *this;
}

namespace {

void
dumpTo(const Json &v, std::string &out)
{
    switch (v.kind()) {
      case Json::Kind::Null:
        out += "null";
        break;
      case Json::Kind::Bool:
        out += v.asBool() ? "true" : "false";
        break;
      case Json::Kind::Int:
        out += format("%lld", static_cast<long long>(v.asInt()));
        break;
      case Json::Kind::Double: {
        const double d = v.asDouble();
        if (std::isfinite(d)) {
            out += format("%.17g", d);
        } else {
            out += "null"; // JSON has no inf/nan
        }
        break;
      }
      case Json::Kind::String:
        out += '"';
        out += jsonEscape(v.asString());
        out += '"';
        break;
      case Json::Kind::Array: {
        out += '[';
        bool first = true;
        for (const Json &item : v.items()) {
            if (!first)
                out += ',';
            first = false;
            dumpTo(item, out);
        }
        out += ']';
        break;
      }
      case Json::Kind::Object: {
        out += '{';
        bool first = true;
        for (const auto &member : v.members()) {
            if (!first)
                out += ',';
            first = false;
            out += '"';
            out += jsonEscape(member.first);
            out += "\":";
            dumpTo(member.second, out);
        }
        out += '}';
        break;
      }
    }
}

/** Strict recursive-descent parser with byte-offset diagnostics. */
class Parser
{
  public:
    Parser(std::string_view text, std::string &error)
        : text_(text), error_(error)
    {
    }

    bool
    parseDocument(Json &out)
    {
        skipSpace();
        if (!parseValue(out, 0))
            return false;
        skipSpace();
        if (pos_ != text_.size())
            return fail("trailing garbage after JSON value");
        return true;
    }

  private:
    static constexpr int kMaxDepth = 64;

    bool
    fail(const std::string &what)
    {
        error_ = format("%s at byte %zu", what.c_str(), pos_);
        return false;
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            ++pos_;
        }
    }

    bool
    literal(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) != word)
            return fail(format("invalid literal (expected '%.*s')",
                               static_cast<int>(word.size()),
                               word.data()));
        pos_ += word.size();
        return true;
    }

    bool
    parseValue(Json &out, int depth)
    {
        if (depth > kMaxDepth)
            return fail("nesting too deep");
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        switch (text_[pos_]) {
          case 'n':
            out = Json::null();
            return literal("null");
          case 't':
            out = Json::boolean(true);
            return literal("true");
          case 'f':
            out = Json::boolean(false);
            return literal("false");
          case '"':
            return parseString(out);
          case '[':
            return parseArray(out, depth);
          case '{':
            return parseObject(out, depth);
          default:
            return parseNumber(out);
        }
    }

    bool
    parseString(Json &out)
    {
        std::string value;
        if (!parseRawString(value))
            return false;
        out = Json::string(std::move(value));
        return true;
    }

    bool
    parseRawString(std::string &value)
    {
        ++pos_; // opening quote (caller checked)
        value.clear();
        while (true) {
            if (pos_ >= text_.size())
                return fail("unterminated string");
            const unsigned char c = text_[pos_];
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (c < 0x20)
                return fail("unescaped control character in string");
            if (c != '\\') {
                value += static_cast<char>(c);
                ++pos_;
                continue;
            }
            ++pos_;
            if (pos_ >= text_.size())
                return fail("unterminated escape");
            const char esc = text_[pos_++];
            switch (esc) {
              case '"': value += '"'; break;
              case '\\': value += '\\'; break;
              case '/': value += '/'; break;
              case 'b': value += '\b'; break;
              case 'f': value += '\f'; break;
              case 'n': value += '\n'; break;
              case 'r': value += '\r'; break;
              case 't': value += '\t'; break;
              case 'u': {
                uint32_t code = 0;
                if (!parseHex4(code))
                    return false;
                appendUtf8(value, code);
                break;
              }
              default:
                --pos_;
                return fail("invalid escape character");
            }
        }
    }

    bool
    parseHex4(uint32_t &code)
    {
        code = 0;
        for (int i = 0; i < 4; ++i) {
            if (pos_ >= text_.size())
                return fail("truncated \\u escape");
            const char c = text_[pos_];
            uint32_t digit;
            if (c >= '0' && c <= '9')
                digit = static_cast<uint32_t>(c - '0');
            else if (c >= 'a' && c <= 'f')
                digit = static_cast<uint32_t>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                digit = static_cast<uint32_t>(c - 'A' + 10);
            else
                return fail("invalid \\u escape digit");
            code = code * 16 + digit;
            ++pos_;
        }
        return true;
    }

    static void
    appendUtf8(std::string &out, uint32_t code)
    {
        // Surrogates and astral planes are passed through as the
        // replacement pattern for lone surrogates; the protocol never
        // sends them, but the parser must not corrupt memory on them.
        if (code < 0x80) {
            out += static_cast<char>(code);
        } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
        } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
        }
    }

    bool
    parseNumber(Json &out)
    {
        const size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        bool integral = true;
        bool any_digit = false;
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c >= '0' && c <= '9') {
                any_digit = true;
                ++pos_;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '+' ||
                       c == '-') {
                integral = false;
                ++pos_;
            } else {
                break;
            }
        }
        if (!any_digit) {
            pos_ = start;
            return fail("invalid value");
        }
        const std::string token(text_.substr(start, pos_ - start));
        // RFC 8259: no leading zeros ("01"), no bare trailing dot.
        const size_t digits = token[0] == '-' ? 1 : 0;
        if (token.size() > digits + 1 && token[digits] == '0' &&
            token[digits + 1] >= '0' && token[digits + 1] <= '9') {
            pos_ = start;
            return fail("leading zero in number");
        }
        errno = 0;
        if (integral) {
            char *end = nullptr;
            const long long v = std::strtoll(token.c_str(), &end, 10);
            if (errno != ERANGE && end && *end == '\0') {
                out = Json::integer(v);
                return true;
            }
            // Fall through to double for out-of-range integers.
        }
        errno = 0;
        char *end = nullptr;
        const double d = std::strtod(token.c_str(), &end);
        if (!end || *end != '\0') {
            pos_ = start;
            return fail("malformed number");
        }
        out = Json::number(d);
        return true;
    }

    bool
    parseArray(Json &out, int depth)
    {
        ++pos_; // '['
        out = Json::array();
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            Json item;
            skipSpace();
            if (!parseValue(item, depth + 1))
                return false;
            out.push(std::move(item));
            skipSpace();
            if (pos_ >= text_.size())
                return fail("unterminated array");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or ']' in array");
        }
    }

    bool
    parseObject(Json &out, int depth)
    {
        ++pos_; // '{'
        out = Json::object();
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipSpace();
            if (pos_ >= text_.size() || text_[pos_] != '"')
                return fail("expected string key in object");
            std::string key;
            if (!parseRawString(key))
                return false;
            skipSpace();
            if (pos_ >= text_.size() || text_[pos_] != ':')
                return fail("expected ':' after object key");
            ++pos_;
            Json value;
            skipSpace();
            if (!parseValue(value, depth + 1))
                return false;
            out.set(std::move(key), std::move(value));
            skipSpace();
            if (pos_ >= text_.size())
                return fail("unterminated object");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or '}' in object");
        }
    }

    std::string_view text_;
    std::string &error_;
    size_t pos_ = 0;
};

} // namespace

std::string
Json::dump() const
{
    std::string out;
    dumpTo(*this, out);
    return out;
}

bool
Json::parse(std::string_view text, Json &out, std::string &error)
{
    Parser parser(text, error);
    return parser.parseDocument(out);
}

} // namespace service
} // namespace webslice
