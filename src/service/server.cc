#include "service/server.hh"

#include <cerrno>
#include <csignal>
#include <cstring>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "support/logging.hh"
#include "support/metrics.hh"
#include "support/strings.hh"

namespace webslice {
namespace service {

namespace {

int
bindUnixSocket(const std::string &path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    fatal_if(path.size() >= sizeof(addr.sun_path),
             "socket path too long: ", path);
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);

    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    fatal_if(fd < 0, "cannot create unix socket: ",
             std::strerror(errno));
    // A previous daemon instance may have left its socket file behind;
    // binding over it is the expected restart path.
    ::unlink(path.c_str());
    fatal_if(::bind(fd, reinterpret_cast<sockaddr *>(&addr),
                    sizeof(addr)) != 0,
             "cannot bind ", path, ": ", std::strerror(errno));
    fatal_if(::listen(fd, 64) != 0, "cannot listen on ", path, ": ",
             std::strerror(errno));
    return fd;
}

int
bindTcpSocket(int port, int &bound_port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    fatal_if(fd < 0, "cannot create tcp socket: ",
             std::strerror(errno));
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(port));
    fatal_if(::bind(fd, reinterpret_cast<sockaddr *>(&addr),
                    sizeof(addr)) != 0,
             "cannot bind 127.0.0.1:", port, ": ", std::strerror(errno));
    fatal_if(::listen(fd, 64) != 0, "cannot listen on tcp port ", port,
             ": ", std::strerror(errno));
    socklen_t len = sizeof(addr);
    fatal_if(::getsockname(fd, reinterpret_cast<sockaddr *>(&addr),
                           &len) != 0,
             "getsockname failed: ", std::strerror(errno));
    bound_port = ntohs(addr.sin_port);
    return fd;
}

} // namespace

Server::Server(const ServerOptions &options)
    : options_(options),
      cache_(options.cacheBytes, options.forwardJobs),
      scheduler_(cache_, Scheduler::Options{options.workers,
                                            options.maxQueue,
                                            options.usePlans})
{
    fatal_if(options_.socketPath.empty(),
             "the server requires a unix socket path");
    // A client hanging up mid-batch turns every further result write
    // into a SIGPIPE; the default disposition would kill the daemon.
    // Writes must fail with EPIPE instead, which handleBatch treats as
    // "abandon this connection's remaining results".
    std::signal(SIGPIPE, SIG_IGN);
    unixFd_ = bindUnixSocket(options_.socketPath);
    if (options_.tcpPort >= 0)
        tcpFd_ = bindTcpSocket(options_.tcpPort, boundTcpPort_);
    fatal_if(::pipe(shutdownPipe_) != 0, "cannot create shutdown pipe: ",
             std::strerror(errno));
}

Server::~Server()
{
    requestShutdown();
    {
        // Handlers are detached; they must all be gone before the
        // members they reference are torn down.
        std::unique_lock<std::mutex> lock(connMutex_);
        for (int fd : connFds_)
            ::shutdown(fd, SHUT_RDWR);
        connsDone_.wait(lock, [&] { return activeConns_ == 0; });
    }
    if (unixFd_ >= 0)
        ::close(unixFd_);
    if (tcpFd_ >= 0)
        ::close(tcpFd_);
    for (int fd : {shutdownPipe_[0], shutdownPipe_[1]})
        if (fd >= 0)
            ::close(fd);
    ::unlink(options_.socketPath.c_str());
}

void
Server::abortConnections()
{
    std::lock_guard<std::mutex> lock(connMutex_);
    for (int fd : connFds_)
        ::shutdown(fd, SHUT_RDWR);
}

void
Server::requestShutdown()
{
    draining_.store(true);
    if (shuttingDown_.exchange(true))
        return;
    // Wake the poll() in run(); ignore a full pipe, one byte is enough.
    const char byte = 's';
    [[maybe_unused]] ssize_t w = ::write(shutdownPipe_[1], &byte, 1);
}

void
Server::run()
{
    inform("webslice-served listening on ", options_.socketPath,
           tcpFd_ >= 0 ? format(" and 127.0.0.1:%d", boundTcpPort_)
                       : std::string());
    while (!shuttingDown_.load()) {
        pollfd fds[3];
        nfds_t nfds = 0;
        fds[nfds++] = {shutdownPipe_[0], POLLIN, 0};
        fds[nfds++] = {unixFd_, POLLIN, 0};
        if (tcpFd_ >= 0)
            fds[nfds++] = {tcpFd_, POLLIN, 0};
        const int ready = ::poll(fds, nfds, -1);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            warn("poll failed: ", std::strerror(errno));
            break;
        }
        if (fds[0].revents != 0)
            break; // Shutdown byte arrived.
        for (nfds_t i = 1; i < nfds; ++i) {
            if (fds[i].revents == 0)
                continue;
            const int client = ::accept(fds[i].fd, nullptr, nullptr);
            if (client < 0) {
                if (errno != EINTR && errno != ECONNABORTED)
                    warn("accept failed: ", std::strerror(errno));
                continue;
            }
            {
                std::lock_guard<std::mutex> lock(connMutex_);
                connFds_.insert(client);
                ++activeConns_;
            }
            std::thread([this, client] { handleConnection(client); })
                .detach();
        }
    }

    shuttingDown_.store(true);
    // Half-close live connections: their readers see EOF once the
    // in-flight frames are answered, so handlers exit cleanly.
    {
        std::unique_lock<std::mutex> lock(connMutex_);
        for (int fd : connFds_)
            ::shutdown(fd, SHUT_RD);
        connsDone_.wait(lock, [&] { return activeConns_ == 0; });
    }
    scheduler_.drain();
    // Close and remove the listening socket now, not in the destructor:
    // once run() returns, the address must be reusable immediately.
    if (unixFd_ >= 0) {
        ::close(unixFd_);
        unixFd_ = -1;
        ::unlink(options_.socketPath.c_str());
    }
    if (tcpFd_ >= 0) {
        ::close(tcpFd_);
        tcpFd_ = -1;
    }
    inform("webslice-served drained and stopping");
}

bool
Server::sendJson(int fd, const Json &body)
{
    std::string error;
    int write_errno = 0;
    if (!writeFrame(fd, body.dump(), error, kMaxFrameBytes,
                    &write_errno)) {
        if (write_errno == EPIPE || write_errno == ECONNRESET) {
            // The peer hung up; routine for a fleet client failing over
            // or a Ctrl-C'd CLI. Count it, don't cry about it.
            MetricRegistry::global()
                .counter("service.client_disconnects")
                .add();
        } else {
            warn("response write failed: ", error);
        }
        return false;
    }
    return true;
}

void
Server::stampIdentity(Json &body) const
{
    if (!options_.shardId.empty()) {
        body.set("shard", Json::string(options_.shardId));
        body.set("shard_epoch",
                 Json::integer(
                     static_cast<int64_t>(options_.shardEpoch)));
    }
    body.set("draining", Json::boolean(draining_.load()));
}

Json
Server::statsResponse() const
{
    Json j = Json::object();
    j.set("schema", Json::string(kServeSchema));
    j.set("op", Json::string("stats"));
    j.set("status", Json::string("ok"));
    stampIdentity(j);

    const auto cache = cache_.stats();
    Json cache_json = Json::object();
    cache_json.set("entries",
                   Json::integer(static_cast<int64_t>(cache.entries)));
    cache_json.set("bytes",
                   Json::integer(static_cast<int64_t>(cache.bytes)));
    cache_json.set("byte_budget",
                   Json::integer(static_cast<int64_t>(cache.byteBudget)));
    cache_json.set("hits",
                   Json::integer(static_cast<int64_t>(cache.hits)));
    cache_json.set("misses",
                   Json::integer(static_cast<int64_t>(cache.misses)));
    cache_json.set("evictions",
                   Json::integer(static_cast<int64_t>(cache.evictions)));
    cache_json.set("invalidations",
                   Json::integer(
                       static_cast<int64_t>(cache.invalidations)));
    cache_json.set("built",
                   Json::integer(static_cast<int64_t>(cache.built)));
    cache_json.set("open_waits",
                   Json::integer(static_cast<int64_t>(cache.openWaits)));
    cache_json.set("plan_entries",
                   Json::integer(static_cast<int64_t>(cache.planEntries)));
    cache_json.set("plan_bytes",
                   Json::integer(static_cast<int64_t>(cache.planBytes)));
    cache_json.set("plan_hits",
                   Json::integer(static_cast<int64_t>(cache.planHits)));
    cache_json.set("plan_misses",
                   Json::integer(static_cast<int64_t>(cache.planMisses)));
    cache_json.set("plan_builds",
                   Json::integer(static_cast<int64_t>(cache.planBuilds)));
    cache_json.set("plan_evictions",
                   Json::integer(
                       static_cast<int64_t>(cache.planEvictions)));
    cache_json.set("plan_waits",
                   Json::integer(static_cast<int64_t>(cache.planWaits)));
    j.set("cache", std::move(cache_json));

    // Slicer-layer counters clients key decisions on, with stable
    // zeros even before the first query touches them — the raw
    // counters section below only lists names that already exist.
    Json slicer_json = Json::object();
    for (const char *name :
         {"slicer.plan_hits", "slicer.plan_misses", "slicer.plan_builds",
          "slicer.memo_hits", "slicer.epochs_planned",
          "slicer.epochs_skipped", "slicer.epoch_elided_records",
          "criteria.epoch_boundary_splits"}) {
        const char *dot = std::strchr(name, '.');
        slicer_json.set(dot + 1,
                        Json::integer(static_cast<int64_t>(
                            MetricRegistry::global().counter(name)
                                .value())));
    }
    j.set("slicer", std::move(slicer_json));

    // Trace-layer I/O counters: on-disk footprint touched, columnar
    // blocks decoded, and value-log checkpoint restores. Same
    // stable-zeros contract as the slicer section.
    Json trace_json = Json::object();
    for (const char *name :
         {"trace.bytes_on_disk", "trace.bytes_decoded",
          "trace.blocks_decoded", "trace.checkpoint_restores",
          "trace.block_cache_hits", "trace.block_cache_misses",
          "trace.block_cache_evictions"}) {
        const char *dot = std::strchr(name, '.');
        trace_json.set(dot + 1,
                       Json::integer(static_cast<int64_t>(
                           MetricRegistry::global().counter(name)
                               .value())));
    }
    j.set("trace", std::move(trace_json));

    const auto sched = scheduler_.stats();
    Json sched_json = Json::object();
    sched_json.set("submitted",
                   Json::integer(static_cast<int64_t>(sched.submitted)));
    sched_json.set("completed",
                   Json::integer(static_cast<int64_t>(sched.completed)));
    sched_json.set("rejected",
                   Json::integer(static_cast<int64_t>(sched.rejected)));
    sched_json.set("deduped",
                   Json::integer(static_cast<int64_t>(sched.deduped)));
    sched_json.set("timed_out",
                   Json::integer(static_cast<int64_t>(sched.timedOut)));
    sched_json.set("failed",
                   Json::integer(static_cast<int64_t>(sched.failed)));
    sched_json.set("abandoned",
                   Json::integer(static_cast<int64_t>(sched.abandoned)));
    sched_json.set("queue_depth_peak",
                   Json::integer(
                       static_cast<int64_t>(sched.queueDepthPeak)));
    j.set("scheduler", std::move(sched_json));

    Json counters = Json::object();
    for (const auto &counter :
         MetricRegistry::global().counterValues())
        counters.set(counter.first,
                     Json::integer(static_cast<int64_t>(counter.second)));
    j.set("counters", std::move(counters));

    Json gauges = Json::object();
    for (const auto &gauge : MetricRegistry::global().gaugeValues())
        gauges.set(gauge.first,
                   Json::integer(static_cast<int64_t>(gauge.second)));
    j.set("gauges", std::move(gauges));
    return j;
}

void
Server::handleBatch(int fd, const Json &request)
{
    const Json *prefix_json = request.find("prefix");
    const Json *queries_json = request.find("queries");
    if (!prefix_json || !prefix_json->isString() ||
        prefix_json->asString().empty()) {
        sendJson(fd, errorResponse(
                         "batch request requires a string 'prefix'"));
        return;
    }
    if (!queries_json || !queries_json->isArray() ||
        queries_json->items().empty()) {
        sendJson(fd, errorResponse("batch request requires a non-empty "
                                   "'queries' array"));
        return;
    }
    const std::string &prefix = prefix_json->asString();

    // Submit everything up front so the batch runs concurrently on the
    // scheduler's workers; then stream results back in submission
    // order as they complete.
    std::vector<Scheduler::Submitted> submitted;
    submitted.reserve(queries_json->items().size());
    size_t id = 0;
    bool parse_failed = false;
    QueryResult bad;
    for (const Json &query_json : queries_json->items()) {
        SliceQuery query;
        std::string error;
        if (!SliceQuery::fromJson(query_json, query, error)) {
            // Report the malformed query in-band at its id, then stop
            // submitting: a half-understood batch must not half-run.
            // The frame goes out after the preceding results so the
            // stream stays in submission order.
            bad.status = QueryResult::Status::Error;
            bad.error = format("query %zu: %s", id, error.c_str());
            parse_failed = true;
            break;
        }
        submitted.push_back(scheduler_.submit(prefix, query));
        ++id;
    }

    size_t ok = 0, errors = 0, rejected = 0, timeouts = 0;
    for (size_t i = 0; i < submitted.size(); ++i) {
        QueryResult result = submitted[i].job->wait();
        result.deduped = result.deduped || submitted[i].deduped;
        result.shard = options_.shardId;
        result.shardEpoch = options_.shardEpoch;
        switch (result.status) {
          case QueryResult::Status::Ok: ++ok; break;
          case QueryResult::Status::Rejected: ++rejected; break;
          case QueryResult::Status::Timeout: ++timeouts; break;
          default: ++errors; break;
        }
        if (!sendJson(fd, result.toJson(i))) {
            // Peer is gone. Withdraw this connection from every result
            // it has not consumed yet: still-queued jobs with no other
            // waiter are cancelled at dequeue instead of computing
            // slices nobody will read.
            for (size_t j = i + 1; j < submitted.size(); ++j)
                scheduler_.abandon(submitted[j].job);
            return;
        }
    }
    if (parse_failed) {
        ++errors;
        bad.shard = options_.shardId;
        bad.shardEpoch = options_.shardEpoch;
        if (!sendJson(fd, bad.toJson(submitted.size())))
            return;
    }

    Json done = Json::object();
    done.set("schema", Json::string(kServeSchema));
    done.set("op", Json::string("batch_done"));
    done.set("status", Json::string(parse_failed ? "error" : "ok"));
    stampIdentity(done);
    done.set("results",
             Json::integer(static_cast<int64_t>(submitted.size())));
    done.set("ok", Json::integer(static_cast<int64_t>(ok)));
    done.set("errors", Json::integer(static_cast<int64_t>(errors)));
    done.set("rejected", Json::integer(static_cast<int64_t>(rejected)));
    done.set("timeouts", Json::integer(static_cast<int64_t>(timeouts)));
    sendJson(fd, done);
}

void
Server::handleConnection(int fd)
{
    std::string payload;
    std::string error;
    while (true) {
        const FrameRead got = readFrame(fd, payload, error);
        if (got == FrameRead::Eof)
            break;
        if (got == FrameRead::Error) {
            // Protocol violation: answer once, then hang up — resync
            // inside a corrupted length-prefixed stream is guesswork.
            sendJson(fd, errorResponse(format("bad frame: %s",
                                              error.c_str())));
            break;
        }
        Json request;
        if (!Json::parse(payload, request, error)) {
            sendJson(fd, errorResponse(format("bad request JSON: %s",
                                              error.c_str())));
            break;
        }
        const Json *op_json = request.find("op");
        const std::string op = op_json ? op_json->asString() : "";
        if (op == "ping") {
            Json pong = Json::object();
            pong.set("schema", Json::string(kServeSchema));
            pong.set("op", Json::string("pong"));
            pong.set("status", Json::string("ok"));
            stampIdentity(pong);
            if (!sendJson(fd, pong))
                break;
        } else if (op == "stats") {
            if (!sendJson(fd, statsResponse()))
                break;
        } else if (op == "drain") {
            // Supervisor-initiated handoff: stop taking batches but keep
            // answering ping/stats so fleet clients see the flag and
            // fail over while in-flight work finishes.
            beginDrain();
            Json ack = Json::object();
            ack.set("schema", Json::string(kServeSchema));
            ack.set("op", Json::string("drain_ack"));
            ack.set("status", Json::string("ok"));
            stampIdentity(ack);
            if (!sendJson(fd, ack))
                break;
        } else if (op == "warm") {
            const Json *prefix_json = request.find("prefix");
            if (!prefix_json || !prefix_json->isString() ||
                prefix_json->asString().empty()) {
                sendJson(fd, errorResponse(
                                 "warm request requires a string "
                                 "'prefix'"));
                break;
            }
            scheduler_.warmSession(prefix_json->asString());
            Json ack = Json::object();
            ack.set("schema", Json::string(kServeSchema));
            ack.set("op", Json::string("warm_ack"));
            ack.set("status", Json::string("ok"));
            stampIdentity(ack);
            if (!sendJson(fd, ack))
                break;
        } else if (op == "shutdown") {
            Json ack = Json::object();
            ack.set("schema", Json::string(kServeSchema));
            ack.set("op", Json::string("shutdown"));
            ack.set("status", Json::string("ok"));
            stampIdentity(ack);
            sendJson(fd, ack);
            requestShutdown();
            break;
        } else if (op == "batch") {
            if (draining_.load()) {
                // Refuse instead of queueing: a draining shard's answer
                // could outlive the shard. The flag in the frame tells a
                // fleet client this is a failover, not a user error.
                Json refusal = errorResponse(
                    "shard is draining; retry against a replica");
                stampIdentity(refusal);
                sendJson(fd, refusal);
                break;
            }
            handleBatch(fd, request);
        } else {
            sendJson(fd, errorResponse(format(
                             "unknown op '%s' (expected ping, stats, "
                             "batch, warm, drain, or shutdown)",
                             op.c_str())));
            break;
        }
    }
    ::close(fd);
    {
        std::lock_guard<std::mutex> lock(connMutex_);
        connFds_.erase(fd);
        --activeConns_;
        connsDone_.notify_all();
    }
}

} // namespace service
} // namespace webslice
