/**
 * @file
 * Minimal JSON value for the service protocol.
 *
 * The daemon and client exchange length-prefixed JSON frames, so unlike
 * the write-only report emitters in support/metrics this module must
 * also *parse* — defensively, since the bytes come off a socket from an
 * arbitrary peer. The parser is a strict recursive-descent reader over
 * RFC 8259 (no comments, no trailing commas, UTF-8 passthrough) that
 * reports the first error with its byte offset instead of dying:
 * malformed requests must become error responses, never daemon exits.
 *
 * Numbers keep an exact int64 when the literal is integral and in
 * range, a double otherwise; object members preserve insertion order so
 * serialized requests are stable for tests and dedup keys.
 */

#ifndef WEBSLICE_SERVICE_JSON_HH
#define WEBSLICE_SERVICE_JSON_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace webslice {
namespace service {

class Json
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Int,
        Double,
        String,
        Array,
        Object,
    };

    /** Defaults to null. */
    Json() = default;

    // Factories; the constructors stay non-ambiguous this way.
    static Json null() { return Json(); }
    static Json boolean(bool v);
    static Json integer(int64_t v);
    static Json number(double v);
    static Json string(std::string v);
    static Json array();
    static Json object();

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isInt() const { return kind_ == Kind::Int; }
    bool isNumber() const
    {
        return kind_ == Kind::Int || kind_ == Kind::Double;
    }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    /** Typed readers; the fallback is returned on any kind mismatch. */
    bool asBool(bool fallback = false) const;
    int64_t asInt(int64_t fallback = 0) const;
    double asDouble(double fallback = 0.0) const;
    const std::string &asString() const; ///< Empty on mismatch.

    /** Array elements (empty span for non-arrays). */
    const std::vector<Json> &items() const;

    /** Object members in insertion order (empty for non-objects). */
    const std::vector<std::pair<std::string, Json>> &members() const;

    /** Member lookup; nullptr when absent or not an object. */
    const Json *find(const std::string &key) const;

    /** Append to an array (converts a null to an array first). */
    Json &push(Json v);

    /** Set an object member (converts a null to an object first). */
    Json &set(std::string key, Json v);

    /** Serialize compactly (no insignificant whitespace). */
    std::string dump() const;

    /**
     * Parse `text` into `out`. On failure returns false and fills
     * `error` with a message that names the byte offset of the first
     * offending character. Trailing non-whitespace after the value is
     * an error — a frame is exactly one JSON value.
     */
    static bool parse(std::string_view text, Json &out,
                      std::string &error);

  private:
    Kind kind_ = Kind::Null;
    bool bool_ = false;
    int64_t int_ = 0;
    double double_ = 0.0;
    std::string string_;
    std::vector<Json> items_;
    std::vector<std::pair<std::string, Json>> members_;
};

} // namespace service
} // namespace webslice

#endif // WEBSLICE_SERVICE_JSON_HH
