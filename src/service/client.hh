/**
 * @file
 * Client side of the webslice-serve-v1 protocol.
 *
 * A thin, blocking connection wrapper used by tools/webslice-client,
 * the service tests, and bench/service_throughput. All failures are
 * reported through return values + error strings (never fatal): the
 * callers decide whether a refused connection is a retry, a test
 * failure, or a dead daemon.
 */

#ifndef WEBSLICE_SERVICE_CLIENT_HH
#define WEBSLICE_SERVICE_CLIENT_HH

#include <functional>
#include <string>
#include <vector>

#include "service/protocol.hh"

namespace webslice {
namespace service {

class ServiceClient
{
  public:
    ServiceClient() = default;
    ~ServiceClient();

    ServiceClient(const ServiceClient &) = delete;
    ServiceClient &operator=(const ServiceClient &) = delete;

    ServiceClient(ServiceClient &&other) noexcept;
    ServiceClient &operator=(ServiceClient &&other) noexcept;

    /** Connect to the daemon's Unix socket. */
    bool connectUnix(const std::string &path, std::string &error);

    /** Connect to the daemon's loopback TCP listener. */
    bool connectTcp(const std::string &host, int port,
                    std::string &error);

    bool connected() const { return fd_ >= 0; }

    void close();

    /**
     * Send one request frame and read one response frame. Suits the
     * single-response ops (ping, stats, shutdown).
     */
    bool call(const Json &request, Json &response, std::string &error);

    /** Outcome summary of one batch round trip. */
    struct BatchOutcome
    {
        std::vector<QueryResult> results; ///< Indexed by query id.
        size_t ok = 0;
        size_t errors = 0;
        size_t rejected = 0;
        size_t timeouts = 0;
    };

    /**
     * Send a batch request for `prefix` and consume the streamed
     * result frames until batch_done. `on_result` (optional) observes
     * each raw streamed frame as it arrives — every result, then the
     * closing batch_done — before it is parsed into the outcome.
     */
    bool batch(const std::string &prefix,
               const std::vector<SliceQuery> &queries,
               BatchOutcome &outcome, std::string &error,
               const std::function<void(const Json &)> &on_result = {});

  private:
    int fd_ = -1;
};

} // namespace service
} // namespace webslice

#endif // WEBSLICE_SERVICE_CLIENT_HH
