#include "service/router.hh"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <utility>

#include "support/metrics.hh"
#include "support/strings.hh"
#include "trace/artifacts.hh"

namespace webslice {
namespace service {

namespace {

/** Scatter a combined artifact digest onto the ring's keyspace. The
 *  raw digest is already well-mixed, but re-hashing keeps lookup keys
 *  and virtual-node points in the same family of positions. */
uint64_t
ringKey(uint64_t digest)
{
    return fnv1a64(&digest, sizeof(digest));
}

} // namespace

bool
connectEndpoint(const std::string &spec, ServiceClient &client,
                std::string &error)
{
    const size_t colon = spec.rfind(':');
    if (spec.find('/') == std::string::npos &&
        colon != std::string::npos && colon + 1 < spec.size()) {
        bool numeric = true;
        for (size_t i = colon + 1; i < spec.size(); ++i)
            numeric = numeric && std::isdigit(
                static_cast<unsigned char>(spec[i])) != 0;
        if (numeric) {
            return client.connectTcp(
                spec.substr(0, colon),
                std::atoi(spec.c_str() + colon + 1), error);
        }
    }
    return client.connectUnix(spec, error);
}

ShardRouter::ShardRouter(std::vector<std::string> endpoints,
                         int virtualNodes)
{
    // Duplicate specs would masquerade as extra replicas; drop them.
    for (auto &endpoint : endpoints) {
        if (std::find(endpoints_.begin(), endpoints_.end(), endpoint) ==
            endpoints_.end())
            endpoints_.push_back(std::move(endpoint));
    }
    down_.assign(endpoints_.size(), false);

    const int points = std::max(1, virtualNodes);
    ring_.reserve(endpoints_.size() * static_cast<size_t>(points));
    for (uint32_t e = 0; e < endpoints_.size(); ++e) {
        for (int i = 0; i < points; ++i) {
            // Points derive from the endpoint string alone, so every
            // client (and every restart) builds the identical ring.
            const std::string node =
                format("%s#%d", endpoints_[e].c_str(), i);
            ring_.push_back({fnv1a64(node.data(), node.size()), e});
        }
    }
    std::sort(ring_.begin(), ring_.end(),
              [](const Point &a, const Point &b) {
                  return a.hash < b.hash ||
                         (a.hash == b.hash && a.endpoint < b.endpoint);
              });
}

size_t
ShardRouter::liveCount() const
{
    size_t live = 0;
    for (bool down : down_)
        live += down ? 0 : 1;
    return live;
}

void
ShardRouter::setDown(const std::string &endpoint)
{
    for (size_t i = 0; i < endpoints_.size(); ++i)
        if (endpoints_[i] == endpoint)
            down_[i] = true;
}

void
ShardRouter::setUp(const std::string &endpoint)
{
    for (size_t i = 0; i < endpoints_.size(); ++i)
        if (endpoints_[i] == endpoint)
            down_[i] = false;
}

bool
ShardRouter::isDown(const std::string &endpoint) const
{
    for (size_t i = 0; i < endpoints_.size(); ++i)
        if (endpoints_[i] == endpoint)
            return down_[i];
    return true;
}

std::vector<std::string>
ShardRouter::ownersFor(uint64_t digest, size_t count) const
{
    std::vector<std::string> owners;
    if (ring_.empty() || count == 0)
        return owners;

    const uint64_t key = ringKey(digest);
    auto it = std::lower_bound(
        ring_.begin(), ring_.end(), key,
        [](const Point &p, uint64_t k) { return p.hash < k; });

    // Walk clockwise collecting distinct live endpoints; one full lap
    // visits every endpoint at least once.
    std::vector<bool> seen(endpoints_.size(), false);
    for (size_t walked = 0;
         walked < ring_.size() && owners.size() < count; ++walked) {
        if (it == ring_.end())
            it = ring_.begin();
        const uint32_t e = it->endpoint;
        if (!seen[e]) {
            seen[e] = true;
            if (!down_[e])
                owners.push_back(endpoints_[e]);
        }
        ++it;
    }
    return owners;
}

std::string
ShardRouter::primaryFor(uint64_t digest) const
{
    auto owners = ownersFor(digest, 1);
    return owners.empty() ? std::string() : owners.front();
}

FleetClient::FleetClient(std::vector<std::string> endpoints)
    : FleetClient(std::move(endpoints), Options())
{
}

FleetClient::FleetClient(std::vector<std::string> endpoints,
                         Options options)
    : router_(std::move(endpoints)), options_(options)
{
}

uint64_t
FleetClient::digestFor(const std::string &prefix)
{
    auto it = digests_.find(prefix);
    if (it != digests_.end())
        return it->second;
    const uint64_t digest =
        trace::combinedArtifactDigest(trace::digestArtifacts(prefix));
    digests_.emplace(prefix, digest);
    return digest;
}

std::vector<std::string>
FleetClient::ownersFor(const std::string &prefix)
{
    return router_.ownersFor(digestFor(prefix),
                             std::max<size_t>(1, static_cast<size_t>(
                                                     options_.replicas)));
}

size_t
FleetClient::discover()
{
    Json ping = Json::object();
    ping.set("op", Json::string("ping"));
    for (const auto &endpoint : router_.endpoints()) {
        ServiceClient client;
        std::string error;
        Json pong;
        const Json *status = nullptr;
        const Json *draining = nullptr;
        const bool healthy =
            connectEndpoint(endpoint, client, error) &&
            client.call(ping, pong, error) &&
            (status = pong.find("status")) != nullptr &&
            status->asString() == "ok" &&
            !((draining = pong.find("draining")) != nullptr &&
              draining->asBool());
        if (healthy)
            router_.setUp(endpoint);
        else
            router_.setDown(endpoint);
    }
    return router_.liveCount();
}

bool
FleetClient::callOn(const std::string &endpoint, const Json &request,
                    Json &response, std::string &error)
{
    ServiceClient client;
    if (!connectEndpoint(endpoint, client, error))
        return false;
    return client.call(request, response, error);
}

void
FleetClient::warmReplica(uint64_t digest, const std::string &prefix,
                         const std::string &endpoint)
{
    const std::string key = format(
        "%016llx@%s", static_cast<unsigned long long>(digest),
        endpoint.c_str());
    if (!warmed_.insert(key).second)
        return; // Already advised this replica about this recording.

    Json warm = Json::object();
    warm.set("op", Json::string("warm"));
    warm.set("prefix", Json::string(prefix));
    Json ack;
    std::string error;
    if (callOn(endpoint, warm, ack, error)) {
        ++stats_.warmsSent;
        MetricRegistry::global().counter("fleet.warms_sent").add();
    }
}

bool
FleetClient::batch(const std::string &prefix,
                   const std::vector<SliceQuery> &queries,
                   ServiceClient::BatchOutcome &outcome,
                   std::string &error,
                   const std::function<void(const Json &)> &on_result)
{
    auto &registry = MetricRegistry::global();
    ++stats_.batches;
    registry.counter("fleet.batches").add();

    outcome = ServiceClient::BatchOutcome();
    outcome.results.resize(queries.size());
    if (queries.empty()) {
        error = "empty batch";
        return false;
    }

    const uint64_t digest = digestFor(prefix);
    std::vector<bool> answered(queries.size(), false);
    size_t remaining = queries.size();
    std::string last_error = "no live shard owns this recording";
    bool refreshed = false;

    // Each failed attempt marks its target down, so this terminates
    // after at most one try per endpoint plus one discover() refresh.
    const size_t max_attempts = router_.size() * 2 + 1;
    for (size_t attempt = 0;
         attempt < max_attempts && remaining > 0; ++attempt) {
        const auto owners = router_.ownersFor(
            digest,
            std::max<size_t>(1,
                             static_cast<size_t>(options_.replicas)));
        if (owners.empty()) {
            // Every shard looks down; re-probe once in case one came
            // back (or was only draining through a restart).
            if (refreshed)
                break;
            refreshed = true;
            discover();
            continue;
        }
        const std::string &target = owners.front();

        // Resend only the unanswered remainder, renumbered from zero
        // on the wire; wire_to_orig maps frames back to caller ids so
        // the caller never sees the renumbering.
        std::vector<size_t> wire_to_orig;
        std::vector<SliceQuery> pending;
        wire_to_orig.reserve(remaining);
        pending.reserve(remaining);
        for (size_t i = 0; i < queries.size(); ++i) {
            if (!answered[i]) {
                wire_to_orig.push_back(i);
                pending.push_back(queries[i]);
            }
        }

        ServiceClient client;
        std::string attempt_error;
        if (!connectEndpoint(target, client, attempt_error)) {
            last_error = format("%s: %s", target.c_str(),
                                attempt_error.c_str());
            router_.setDown(target);
            ++stats_.failovers;
            registry.counter("fleet.failovers").add();
            continue;
        }

        const auto frame_hook = [&](const Json &frame) {
            const Json *op = frame.find("op");
            if (op == nullptr || op->asString() != "result")
                return; // Per-attempt batch_done frames stay internal.
            const Json *id_json = frame.find("id");
            if (id_json == nullptr || !id_json->isInt())
                return;
            const size_t wire =
                static_cast<size_t>(id_json->asInt());
            if (wire >= wire_to_orig.size())
                return;
            const size_t orig = wire_to_orig[wire];
            if (answered[orig]) {
                // A slow shard answered after we failed over; the
                // replica's copy already counted. Never double-report.
                ++stats_.duplicates;
                registry.counter("fleet.duplicate_results").add();
                return;
            }
            QueryResult parsed;
            std::string parse_error;
            if (!QueryResult::fromJson(frame, parsed, parse_error))
                return;
            answered[orig] = true;
            --remaining;
            outcome.results[orig] = std::move(parsed);
            if (on_result) {
                Json remapped = frame;
                remapped.set("id", Json::integer(
                                       static_cast<int64_t>(orig)));
                on_result(remapped);
            }
        };

        ServiceClient::BatchOutcome ignored;
        if (client.batch(prefix, pending, ignored, attempt_error,
                         frame_hook)) {
            if (options_.warmReplicas && owners.size() > 1)
                warmReplica(digest, prefix, owners[1]);
            break;
        }

        // Mid-batch failure: the shard died, refused while draining,
        // or corrupted the stream. Partial results gathered before the
        // failure are already recorded; route the rest elsewhere.
        last_error = format("%s: %s", target.c_str(),
                            attempt_error.c_str());
        router_.setDown(target);
        ++stats_.failovers;
        registry.counter("fleet.failovers").add();
    }

    for (size_t i = 0; i < queries.size(); ++i) {
        if (!answered[i])
            continue;
        switch (outcome.results[i].status) {
          case QueryResult::Status::Ok: ++outcome.ok; break;
          case QueryResult::Status::Rejected: ++outcome.rejected; break;
          case QueryResult::Status::Timeout: ++outcome.timeouts; break;
          case QueryResult::Status::Error: ++outcome.errors; break;
        }
    }

    if (remaining > 0) {
        error = format("%zu of %zu queries unanswered after fleet "
                       "failover (last shard error: %s)",
                       remaining, queries.size(), last_error.c_str());
        return false;
    }
    return true;
}

} // namespace service
} // namespace webslice
