/**
 * @file
 * Control dependence graph (the profiler's forward pass, part 3).
 *
 * Following Ferrante/Ottenstein/Warren: a node t is control-dependent on a
 * branch a iff a has successors s1, s2 such that t postdominates s1 but not
 * s2 — equivalently, for every CFG edge (a, s) where s does not postdominate
 * a, every node on the postdominator-tree path from s up to (exclusive)
 * ipdom(a) is control-dependent on a.
 *
 * We record dependences only on nodes that executed a Branch record; the
 * paper's backward pass needs "which branches must join the slice when this
 * instruction does", and only branches have condition variables to make
 * live.
 *
 * The resulting map can be saved to disk and reused across backward passes
 * with different slicing criteria, as the paper notes.
 */

#ifndef WEBSLICE_GRAPH_CONTROL_DEPS_HH
#define WEBSLICE_GRAPH_CONTROL_DEPS_HH

#include <span>
#include <string>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "graph/cfg.hh"
#include "support/flat_map.hh"

namespace webslice {
namespace graph {

/**
 * (function, pc) -> controlling branch pcs within that function.
 *
 * Queries go through a flat-hash index over a pooled pc array, built
 * lazily on the first depsOf() after a mutation. The backward pass
 * probes this map for every in-slice record — and most probes miss —
 * so the index is a single open-addressing lookup, not a node-based
 * unordered_map walk. Lazy sealing means the first depsOf() after an
 * add()/load() is not safe to race with other depsOf() calls; the
 * profiler's backward pass is single-threaded, which satisfies that.
 */
class ControlDepMap
{
  public:
    /** Branch pcs the instruction at (func, pc) is control-dependent on. */
    std::span<const trace::Pc> depsOf(trace::FuncId func,
                                      trace::Pc pc) const;

    /**
     * depsOf() answered from the node-based map, bypassing the flat
     * index — the pre-optimization lookup path, kept callable so the
     * benchmarks' legacy baseline measures what the seed profiler did.
     */
    std::span<const trace::Pc> depsOfUnindexed(trace::FuncId func,
                                               trace::Pc pc) const;

    /**
     * Force the lazy query index to be built now. depsOf() seals on
     * first use, which is not safe to race from several threads; any
     * driver that will query the map from worker threads (the
     * epoch-parallel slicer's transcode phase) must call this once
     * beforehand from a single thread.
     */
    void ensureSealed() const;

    /**
     * Sorted, deduplicated branch pcs that appear in at least one
     * dependence list. A Branch record whose pc is not in this set can
     * never satisfy a pending-branch entry — pending sets only ever
     * receive pcs from these lists — which is what lets the
     * epoch-parallel transcoder drop such branches as state no-ops.
     */
    std::vector<trace::Pc> branchUniverse() const;

    /** Add one dependence (deduplicated). */
    void add(trace::FuncId func, trace::Pc pc, trace::Pc branch_pc);

    /** Total number of (instruction, branch) dependence pairs. */
    size_t pairCount() const;

    /**
     * Every (func, pc, branch pc) dependence pair, sorted. This is the
     * verification layer's iteration hook: the graph linter diffs the
     * map's full contents against an independently recomputed reference.
     */
    std::vector<std::tuple<trace::FuncId, trace::Pc, trace::Pc>>
    allPairs() const;

    /** Number of instructions with at least one dependence. */
    size_t nodeCount() const { return deps_.size(); }

    /** Persist to a text file so backward passes can reuse it. */
    void save(const std::string &path) const;

    /** Load a map previously written by save(); replaces contents. */
    void load(const std::string &path);

  private:
    static uint64_t
    key(trace::FuncId func, trace::Pc pc)
    {
        return (static_cast<uint64_t>(func) << 32) | pc;
    }

    /** Rebuild the flat query index from deps_. */
    void seal() const;

    std::unordered_map<uint64_t, std::vector<trace::Pc>> deps_;

    // Query-side index: key -> (offset << 20 | length) into pool_.
    mutable bool sealed_ = false;
    mutable FlatMap64 index_;
    mutable std::vector<trace::Pc> pool_;
};

/**
 * Compute control dependences for every CFG in the set.
 *
 * Functions are independent (postdominators and the FOW walk never cross
 * CFGs), so with jobs > 1 the per-function work runs on a thread pool
 * and the per-function results are merged in a deterministic order; the
 * map contents are identical to the serial computation. jobs <= 0 means
 * "all hardware threads".
 */
ControlDepMap buildControlDeps(const CfgSet &cfgs, int jobs = 1);

} // namespace graph
} // namespace webslice

#endif // WEBSLICE_GRAPH_CONTROL_DEPS_HH
