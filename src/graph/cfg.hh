/**
 * @file
 * Dynamic control flow graph reconstruction (the profiler's forward pass,
 * part 1).
 *
 * As in the paper, CFGs must be rebuilt from the dynamic instruction trace:
 * indirect control transfer targets are only known at runtime. Function
 * boundaries are recovered by matching Call and Ret records on a per-thread
 * stack; every static pc observed between a function's Call and its Ret (at
 * the same depth) becomes a node of that function's CFG, and each CFG gets
 * its own virtual entry and exit nodes.
 *
 * Records executed outside any traced function (thread run-loop glue) are
 * attributed to one synthetic "toplevel" function per thread.
 */

#ifndef WEBSLICE_GRAPH_CFG_HH
#define WEBSLICE_GRAPH_CFG_HH

#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "trace/record.hh"
#include "trace/symtab.hh"

namespace webslice {
namespace graph {

/** Dense node index within one function's CFG. */
using NodeId = int32_t;
constexpr NodeId kNoNode = -1;

/** One function's control flow graph at instruction (pc) granularity. */
struct Cfg
{
    /** Conventional node indices. */
    static constexpr NodeId kEntry = 0;
    static constexpr NodeId kExit = 1;

    trace::FuncId func = trace::kNoFunc;

    /** Node -> pc; entry/exit map to kNoPc. */
    std::vector<trace::Pc> nodePc;

    /** pc -> node. */
    std::unordered_map<trace::Pc, NodeId> pcNode;

    std::vector<std::vector<NodeId>> succs;
    std::vector<std::vector<NodeId>> preds;

    /** Nodes whose pc carried a Branch record at least once. */
    std::vector<bool> isBranch;

    /** Get or create the node for a pc. */
    NodeId nodeFor(trace::Pc pc);

    /** Existing node for a pc, or kNoNode. */
    NodeId findNode(trace::Pc pc) const;

    /** Add edge a -> b if not already present. */
    void addEdge(NodeId a, NodeId b);

    size_t nodeCount() const { return nodePc.size(); }
};

/** The full set of per-function CFGs plus per-record attribution. */
struct CfgSet
{
    /**
     * Feed-level totals, defined purely in terms of the record stream so
     * both builders fill them identically. The verification layer's
     * graph linter recomputes each from the raw trace and diffs — a
     * mismatch means the builder dropped or duplicated work.
     */
    struct Stats
    {
        /** Non-pseudo records fed (each drives one CFG transition). */
        uint64_t transitionsObserved = 0;
        /** Call pushes plus synthetic-toplevel frame creations. */
        uint64_t framesOpened = 0;
        /** Ret records that popped a matching frame. */
        uint64_t framesClosed = 0;
        /** Frames still open when finish() closed them out. */
        uint64_t framesOpenAtEnd = 0;
    };

    Stats stats;

    /** CFGs keyed by function id (including synthetic toplevels). */
    std::unordered_map<trace::FuncId, Cfg> byFunc;

    /**
     * Enclosing function of each trace record (parallel to the record
     * array). Pseudo-records inherit their syscall's function.
     */
    std::vector<trace::FuncId> funcOf;

    /** Names of synthetic toplevel functions, keyed by their ids. */
    std::unordered_map<trace::FuncId, std::string> syntheticNames;

    /** First id used for synthetic functions. */
    trace::FuncId firstSynthetic = trace::kNoFunc;

    /** Readable name for any function id this set knows about. */
    std::string functionName(trace::FuncId id,
                             const trace::SymbolTable &symtab) const;

    /**
     * Function ids in a stable order: sorted by the function's entry pc
     * (the first real pc its CFG observed; synthetic toplevels sort by
     * their first executed pc), ties broken by id. byFunc is an
     * unordered_map, so any pass whose output depends on function
     * iteration order (the static fixpoints, --dump-pdg) must walk this
     * instead to be deterministic across runs and library versions.
     */
    std::vector<trace::FuncId> functionsByEntryPc() const;

    /** Entry pc used by functionsByEntryPc() for one function. */
    trace::Pc entryPcOf(trace::FuncId id) const;
};

/**
 * Incremental forward-pass CFG builder: feed records first-to-last, then
 * take the finished CfgSet. Both the in-memory and the file-streaming
 * front ends drive this.
 */
class CfgBuilder
{
  public:
    explicit CfgBuilder(const trace::SymbolTable &symtab);

    /** Consume the next record (records must arrive in trace order). */
    void feed(const trace::Record &record);

    /** Close open frames and return the result; the builder is spent. */
    CfgSet finish();

  private:
    struct Frame
    {
        trace::FuncId func = trace::kNoFunc;
        NodeId lastNode = kNoNode;
    };

    Cfg &cfgFor(trace::FuncId func);
    Frame &topFrame(trace::ThreadId tid);
    trace::FuncId step(trace::ThreadId tid, trace::Pc pc, bool is_branch);

    const trace::SymbolTable &symtab_;
    CfgSet out_;
    std::unordered_map<trace::ThreadId, std::vector<Frame>> threads_;
    trace::FuncId nextSynthetic_;
    bool finished_ = false;
};

/**
 * Incremental forward-pass CFG builder that defers node and edge
 * construction so it can be parallelized across functions.
 *
 * feed() performs only the inherently sequential work (call/return frame
 * matching, synthetic-function assignment, per-record attribution) and
 * records one compact transition per record, grouped by function. A small
 * direct-mapped filter per function drops transitions already seen, so
 * the recorded streams hold roughly the *unique* control-flow edges, not
 * one entry per record — loop-heavy traces shrink by orders of magnitude.
 * finish(jobs) then replays each function's stream independently — on a
 * thread pool when jobs > 1 — producing a CfgSet bit-identical to
 * CfgBuilder's: the filter keeps the first occurrence of every
 * transition in order, so node ids still get assigned in first-use
 * order, and the replay's addEdge() dedups the occasional duplicate a
 * filter collision lets through.
 *
 * For in-memory traces, feedAll() additionally parallelizes the feed
 * itself by sharding the trace into contiguous record ranges. A cheap
 * serial structure pass (only Call/Ret records mutate call stacks)
 * computes each shard's starting stacks and pre-assigns synthetic
 * function ids in exact serial order; the shards then feed their ranges
 * concurrently. The one value a shard cannot know — the last pc its
 * starting top frame executed, which lives in the previous shard — is
 * emitted as a placeholder transition and patched serially afterwards,
 * at most one per (shard, thread). Because shards are contiguous record
 * ranges, concatenating their streams preserves global first-occurrence
 * order, so the output is still bit-identical to CfgBuilder's for every
 * jobs value.
 */
class ParallelCfgBuilder
{
  public:
    explicit ParallelCfgBuilder(const trace::SymbolTable &symtab);

    /** Size the attribution array upfront when the trace length is known. */
    void reserveRecords(size_t count);

    /** Consume the next record (records must arrive in trace order). */
    void feed(const trace::Record &record);

    /**
     * Consume an entire in-memory trace, sharding the feed over `jobs`
     * threads (falls back to the serial feed() loop for small traces,
     * jobs <= 1, or machines without the cores to make the extra
     * structure-pass work pay off). Must be the only feeding call on
     * this builder.
     */
    void feedAll(std::span<const trace::Record> records, int jobs);

    /**
     * Test hook: force feedAll to use exactly this many shards,
     * bypassing the hardware-concurrency and trace-size heuristics so
     * the sharded path can be exercised on any machine. 0 = disabled.
     */
    static size_t shardOverrideForTesting;

    /** Replay transitions (jobs-wide) and return the result. */
    CfgSet finish(int jobs);

  private:
    struct Frame
    {
        trace::FuncId func = trace::kNoFunc;
        trace::Pc lastPc = trace::kNoPc; ///< kNoPc means "at entry".
    };

    /** One CFG-affecting event within a function. */
    struct Transition
    {
        trace::Pc from = trace::kNoPc; ///< kNoPc means the virtual entry.
        trace::Pc to = trace::kNoPc;
        uint8_t flags = 0;
    };

    enum : uint8_t
    {
        kTransBranch = 1 << 0, ///< `to` executed a Branch record.
        kTransRet = 1 << 1,    ///< `to` returns (edge to virtual exit).
        kTransClose = 1 << 2,  ///< Frame left open at end of trace.
    };

    static constexpr size_t kFilterSlots = 4096;

    /**
     * Placeholder for a predecessor pc living in the previous shard;
     * never a real pc (pcs are assigned densely from 1).
     */
    static constexpr trace::Pc kPatchPc = ~trace::Pc{0};

    /** Below this many records, sharded feeding is not worth the setup. */
    static constexpr size_t kMinShardRecords = size_t{1} << 15;

    /** A function's transition stream plus its duplicate filter. */
    struct FuncStream
    {
        std::vector<Transition> steps;
        uint64_t filtered = 0; ///< Duplicate transitions dropped.

        struct FilterEntry
        {
            trace::Pc from = 0;
            trace::Pc to = 0;
            uint8_t flags = 0;
            uint8_t valid = 0;
        };
        std::vector<FilterEntry> filter; ///< Allocated on first emit.

        void
        emit(trace::Pc from, trace::Pc to, uint8_t flags)
        {
            if (filter.empty())
                filter.resize(kFilterSlots);
            const size_t slot = (from * 2654435761u ^ to) &
                                (kFilterSlots - 1);
            FilterEntry &e = filter[slot];
            if (e.valid && e.from == from && e.to == to &&
                e.flags == flags) {
                ++filtered; // transition already recorded
                return;
            }
            e = FilterEntry{from, to, flags, 1};
            steps.push_back(Transition{from, to, flags});
        }
    };

    /** Per-shard feeding state; defined in cfg.cc. */
    struct Shard;

    std::vector<Frame> &stackFor(trace::ThreadId tid);
    Frame &topFrame(trace::ThreadId tid);
    void touchFunc(trace::FuncId func);
    trace::FuncId step(trace::ThreadId tid, trace::Pc pc, bool is_branch);
    void runShard(Shard &shard, std::span<const trace::Record> records,
                  size_t begin, size_t end);

    const trace::SymbolTable &symtab_;
    CfgSet out_;
    std::vector<FuncStream> funcs_;     ///< Indexed by (dense) FuncId.
    std::vector<uint8_t> touched_;      ///< Parallel to funcs_.
    std::vector<trace::FuncId> funcOrder_; ///< First-touch order.
    std::vector<std::vector<Frame>> threads_; ///< Indexed by ThreadId.
    trace::FuncId nextSynthetic_;
    bool finished_ = false;

    // One-entry hot-path cache for the serial feed: traces run long
    // same-thread stretches without calls or returns, so the top frame
    // and its function's stream are the same record after record. The
    // Frame pointer survives growth of threads_ itself (moving an inner
    // vector does not move its heap buffer); any push/pop on the same
    // thread's stack or growth of funcs_ goes through the slow path,
    // which recomputes the cache.
    trace::ThreadId cacheTid_ = 0;
    Frame *cacheFrame_ = nullptr;
    FuncStream *cacheStream_ = nullptr;
};

/**
 * Build per-function CFGs from an in-memory dynamic trace (the forward
 * pass).
 *
 * @param records  the dynamic trace
 * @param symtab   symbol table mapping call targets to functions
 * @param jobs     worker threads for per-function construction; 1 (the
 *                 default) uses the serial CfgBuilder path, <= 0 means
 *                 "all hardware threads". Output is identical either way.
 */
CfgSet buildCfgs(std::span<const trace::Record> records,
                 const trace::SymbolTable &symtab, int jobs = 1);

/**
 * Forward pass over a trace file, streamed in blocks: peak memory is the
 * CFGs plus one per-record function id, not the records themselves.
 */
CfgSet buildCfgsFromFile(const std::string &path,
                         const trace::SymbolTable &symtab, int jobs = 1);

} // namespace graph
} // namespace webslice

#endif // WEBSLICE_GRAPH_CFG_HH
