/**
 * @file
 * Dynamic control flow graph reconstruction (the profiler's forward pass,
 * part 1).
 *
 * As in the paper, CFGs must be rebuilt from the dynamic instruction trace:
 * indirect control transfer targets are only known at runtime. Function
 * boundaries are recovered by matching Call and Ret records on a per-thread
 * stack; every static pc observed between a function's Call and its Ret (at
 * the same depth) becomes a node of that function's CFG, and each CFG gets
 * its own virtual entry and exit nodes.
 *
 * Records executed outside any traced function (thread run-loop glue) are
 * attributed to one synthetic "toplevel" function per thread.
 */

#ifndef WEBSLICE_GRAPH_CFG_HH
#define WEBSLICE_GRAPH_CFG_HH

#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "trace/record.hh"
#include "trace/symtab.hh"

namespace webslice {
namespace graph {

/** Dense node index within one function's CFG. */
using NodeId = int32_t;
constexpr NodeId kNoNode = -1;

/** One function's control flow graph at instruction (pc) granularity. */
struct Cfg
{
    /** Conventional node indices. */
    static constexpr NodeId kEntry = 0;
    static constexpr NodeId kExit = 1;

    trace::FuncId func = trace::kNoFunc;

    /** Node -> pc; entry/exit map to kNoPc. */
    std::vector<trace::Pc> nodePc;

    /** pc -> node. */
    std::unordered_map<trace::Pc, NodeId> pcNode;

    std::vector<std::vector<NodeId>> succs;
    std::vector<std::vector<NodeId>> preds;

    /** Nodes whose pc carried a Branch record at least once. */
    std::vector<bool> isBranch;

    /** Get or create the node for a pc. */
    NodeId nodeFor(trace::Pc pc);

    /** Existing node for a pc, or kNoNode. */
    NodeId findNode(trace::Pc pc) const;

    /** Add edge a -> b if not already present. */
    void addEdge(NodeId a, NodeId b);

    size_t nodeCount() const { return nodePc.size(); }
};

/** The full set of per-function CFGs plus per-record attribution. */
struct CfgSet
{
    /** CFGs keyed by function id (including synthetic toplevels). */
    std::unordered_map<trace::FuncId, Cfg> byFunc;

    /**
     * Enclosing function of each trace record (parallel to the record
     * array). Pseudo-records inherit their syscall's function.
     */
    std::vector<trace::FuncId> funcOf;

    /** Names of synthetic toplevel functions, keyed by their ids. */
    std::unordered_map<trace::FuncId, std::string> syntheticNames;

    /** First id used for synthetic functions. */
    trace::FuncId firstSynthetic = trace::kNoFunc;

    /** Readable name for any function id this set knows about. */
    std::string functionName(trace::FuncId id,
                             const trace::SymbolTable &symtab) const;
};

/**
 * Incremental forward-pass CFG builder: feed records first-to-last, then
 * take the finished CfgSet. Both the in-memory and the file-streaming
 * front ends drive this.
 */
class CfgBuilder
{
  public:
    explicit CfgBuilder(const trace::SymbolTable &symtab);

    /** Consume the next record (records must arrive in trace order). */
    void feed(const trace::Record &record);

    /** Close open frames and return the result; the builder is spent. */
    CfgSet finish();

  private:
    struct Frame
    {
        trace::FuncId func = trace::kNoFunc;
        NodeId lastNode = kNoNode;
    };

    Cfg &cfgFor(trace::FuncId func);
    Frame &topFrame(trace::ThreadId tid);
    trace::FuncId step(trace::ThreadId tid, trace::Pc pc, bool is_branch);

    const trace::SymbolTable &symtab_;
    CfgSet out_;
    std::unordered_map<trace::ThreadId, std::vector<Frame>> threads_;
    trace::FuncId nextSynthetic_;
    bool finished_ = false;
};

/**
 * Build per-function CFGs from an in-memory dynamic trace (the forward
 * pass).
 *
 * @param records  the dynamic trace
 * @param symtab   symbol table mapping call targets to functions
 */
CfgSet buildCfgs(std::span<const trace::Record> records,
                 const trace::SymbolTable &symtab);

/**
 * Forward pass over a trace file, streamed in blocks: peak memory is the
 * CFGs plus one per-record function id, not the records themselves.
 */
CfgSet buildCfgsFromFile(const std::string &path,
                         const trace::SymbolTable &symtab);

} // namespace graph
} // namespace webslice

#endif // WEBSLICE_GRAPH_CFG_HH
