#include "graph/postdom.hh"

#include <algorithm>

#include "support/logging.hh"

namespace webslice {
namespace graph {

namespace {

/**
 * Reverse postorder of the reversed CFG, rooted at exit (iterative DFS;
 * the traversal follows predecessor edges of the original graph).
 */
std::vector<NodeId>
reversedRpo(const Cfg &cfg)
{
    std::vector<NodeId> order;
    std::vector<uint8_t> state(cfg.nodeCount(), 0); // 0 new, 1 open, 2 done
    std::vector<std::pair<NodeId, size_t>> stack;

    stack.emplace_back(Cfg::kExit, 0);
    state[Cfg::kExit] = 1;
    while (!stack.empty()) {
        auto &[node, next] = stack.back();
        const auto &edges = cfg.preds[node];
        if (next < edges.size()) {
            const NodeId child = edges[next++];
            if (state[child] == 0) {
                state[child] = 1;
                stack.emplace_back(child, 0);
            }
        } else {
            state[node] = 2;
            order.push_back(node);
            stack.pop_back();
        }
    }
    std::reverse(order.begin(), order.end());
    return order;
}

} // namespace

std::vector<NodeId>
computePostdoms(const Cfg &cfg)
{
    const size_t n = cfg.nodeCount();
    std::vector<NodeId> ipdom(n, kNoNode);
    if (n == 0)
        return ipdom;

    const std::vector<NodeId> order = reversedRpo(cfg);
    std::vector<int32_t> rpoIndex(n, -1);
    for (size_t i = 0; i < order.size(); ++i)
        rpoIndex[order[i]] = static_cast<int32_t>(i);

    ipdom[Cfg::kExit] = Cfg::kExit;

    // Intersect in the reversed graph's dominance order: higher rpo index
    // means farther from the exit.
    auto intersect = [&](NodeId a, NodeId b) {
        while (a != b) {
            while (rpoIndex[a] > rpoIndex[b])
                a = ipdom[a];
            while (rpoIndex[b] > rpoIndex[a])
                b = ipdom[b];
        }
        return a;
    };

    bool changed = true;
    while (changed) {
        changed = false;
        for (const NodeId node : order) {
            if (node == Cfg::kExit)
                continue;
            // Predecessors in the reversed graph are successors in the
            // original CFG.
            NodeId new_idom = kNoNode;
            for (const NodeId succ : cfg.succs[node]) {
                if (rpoIndex[succ] < 0)
                    continue; // cannot reach exit
                if (ipdom[succ] == kNoNode && succ != Cfg::kExit)
                    continue; // not yet processed
                new_idom = new_idom == kNoNode ? succ
                                               : intersect(new_idom, succ);
            }
            if (new_idom != kNoNode && ipdom[node] != new_idom) {
                ipdom[node] = new_idom;
                changed = true;
            }
        }
    }
    return ipdom;
}

bool
postdominates(const std::vector<NodeId> &ipdom, NodeId a, NodeId b)
{
    // Walk b's postdominator chain towards the exit looking for a.
    NodeId t = b;
    while (true) {
        if (t == a)
            return true;
        if (t == kNoNode || t == ipdom[t])
            return t == a;
        t = ipdom[t];
    }
}

} // namespace graph
} // namespace webslice
