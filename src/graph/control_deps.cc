#include "graph/control_deps.hh"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "graph/postdom.hh"
#include "support/logging.hh"
#include "support/thread_pool.hh"

namespace webslice {
namespace graph {

using trace::FuncId;
using trace::Pc;

std::span<const Pc>
ControlDepMap::depsOf(FuncId func, Pc pc) const
{
    if (!sealed_)
        seal();
    const uint64_t *entry = index_.find(key(func, pc));
    if (!entry)
        return {};
    return {pool_.data() + (*entry >> 20),
            static_cast<size_t>(*entry & 0xFFFFF)};
}

std::span<const Pc>
ControlDepMap::depsOfUnindexed(FuncId func, Pc pc) const
{
    auto it = deps_.find(key(func, pc));
    if (it == deps_.end())
        return {};
    return it->second;
}

void
ControlDepMap::seal() const
{
    index_.clear();
    index_.reserve(deps_.size());
    pool_.clear();
    for (const auto &kv : deps_) {
        const uint64_t offset = pool_.size();
        pool_.insert(pool_.end(), kv.second.begin(), kv.second.end());
        panic_if(kv.second.size() >= (1u << 20),
                 "control-dependence list too long for the index");
        index_.findOrInsert(kv.first) =
            (offset << 20) | kv.second.size();
    }
    sealed_ = true;
}

void
ControlDepMap::ensureSealed() const
{
    if (!sealed_)
        seal();
}

std::vector<Pc>
ControlDepMap::branchUniverse() const
{
    std::vector<Pc> universe;
    universe.reserve(deps_.size());
    for (const auto &kv : deps_)
        universe.insert(universe.end(), kv.second.begin(),
                        kv.second.end());
    std::sort(universe.begin(), universe.end());
    universe.erase(std::unique(universe.begin(), universe.end()),
                   universe.end());
    return universe;
}

void
ControlDepMap::add(FuncId func, Pc pc, Pc branch_pc)
{
    auto &list = deps_[key(func, pc)];
    if (std::find(list.begin(), list.end(), branch_pc) == list.end()) {
        list.push_back(branch_pc);
        sealed_ = false;
    }
}

size_t
ControlDepMap::pairCount() const
{
    size_t total = 0;
    for (const auto &kv : deps_)
        total += kv.second.size();
    return total;
}

std::vector<std::tuple<FuncId, Pc, Pc>>
ControlDepMap::allPairs() const
{
    std::vector<std::tuple<FuncId, Pc, Pc>> out;
    out.reserve(pairCount());
    for (const auto &kv : deps_) {
        const auto func = static_cast<FuncId>(kv.first >> 32);
        const auto pc = static_cast<Pc>(kv.first & 0xFFFFFFFFull);
        for (const Pc branch : kv.second)
            out.emplace_back(func, pc, branch);
    }
    std::sort(out.begin(), out.end());
    return out;
}

void
ControlDepMap::save(const std::string &path) const
{
    std::ofstream out(path);
    fatal_if(!out, "cannot write control-dependence map to ", path);
    out << "webcdg 1\n";
    for (const auto &kv : deps_) {
        out << (kv.first >> 32) << ' '
            << (kv.first & 0xFFFFFFFFull) << ' ' << kv.second.size();
        for (const Pc branch : kv.second)
            out << ' ' << branch;
        out << '\n';
    }
    fatal_if(!out, "short write saving control-dependence map to ", path);
}

void
ControlDepMap::load(const std::string &path)
{
    std::ifstream in(path);
    fatal_if(!in, "cannot read control-dependence map from ", path);

    // Line-based parsing so a malformed entry mid-file fails loudly with
    // its line number instead of silently truncating the map — slicing
    // with a partial CDG drops control dependences and shrinks the slice
    // without any other symptom.
    std::string line;
    size_t lineno = 0;
    fatal_if(!std::getline(in, line),
             "empty control-dependence map ", path);
    ++lineno;
    {
        std::istringstream fields(line);
        std::string magic;
        int version = 0;
        fields >> magic >> version;
        fatal_if(magic != "webcdg" || version != 1,
                 "bad control-dependence map header in ", path,
                 " line 1: '", line, "'");
    }

    deps_.clear();
    sealed_ = false;
    while (std::getline(in, line)) {
        ++lineno;
        std::istringstream fields(line);
        uint64_t func = 0, pc = 0;
        size_t count = 0;
        fields >> func >> pc >> count;
        fatal_if(fields.fail(), "malformed control-dependence entry in ",
                 path, " line ", lineno, ": '", line, "'");
        auto &list = deps_[key(static_cast<FuncId>(func),
                               static_cast<Pc>(pc))];
        list.resize(count);
        for (size_t i = 0; i < count; ++i) {
            fatal_if(!(fields >> list[i]),
                     "truncated branch list in ", path, " line ", lineno,
                     ": '", line, "'");
        }
        std::string extra;
        fatal_if(static_cast<bool>(fields >> extra),
                 "trailing garbage in ", path, " line ", lineno, ": '",
                 line, "'");
    }
    fatal_if(!in.eof(), "read error in control-dependence map ", path,
             " after line ", lineno);
}

namespace {

/**
 * Per-function FOW computation: postdominators plus the dependence walk,
 * delivering (pc, branch pc) pairs to sink in discovery order. Shared by
 * the serial and the parallel driver so both produce the same pairs.
 */
template <typename Sink>
void
collectDeps(const Cfg &cfg, Sink &&sink)
{
    if (cfg.nodeCount() <= 2)
        return;

    const std::vector<NodeId> ipdom = computePostdoms(cfg);

    for (size_t a = 0; a < cfg.nodeCount(); ++a) {
        // Only executed Branch records can control other instructions;
        // multi-successor shapes from merged call paths are noise.
        if (!cfg.isBranch[a] || cfg.succs[a].size() < 2)
            continue;
        const NodeId node_a = static_cast<NodeId>(a);
        const Pc branch_pc = cfg.nodePc[a];

        for (const NodeId succ : cfg.succs[node_a]) {
            // Walk the postdominator tree from succ up to (exclusive)
            // ipdom(a); every node on the way is control-dependent
            // on a.
            NodeId t = succ;
            size_t guard = 0;
            while (t != kNoNode && t != ipdom[node_a] &&
                   t != Cfg::kExit) {
                if (cfg.nodePc[t] != trace::kNoPc) {
                    sink(cfg.nodePc[t], branch_pc);
                }
                t = ipdom[t];
                panic_if(++guard > cfg.nodeCount(),
                         "postdominator walk did not terminate");
            }
        }
    }
}

} // namespace

ControlDepMap
buildControlDeps(const CfgSet &cfgs, int jobs)
{
    ControlDepMap out;
    const unsigned threads = ThreadPool::resolveJobs(jobs);

    if (threads <= 1 || cfgs.byFunc.size() <= 1) {
        for (const auto &kv : cfgs.byFunc) {
            const Cfg &cfg = kv.second;
            collectDeps(cfg, [&out, &cfg](Pc pc, Pc branch_pc) {
                out.add(cfg.func, pc, branch_pc);
            });
        }
        return out;
    }

    // One work item per function, largest CFGs first so the pool is not
    // left waiting on one big function scheduled last.
    std::vector<const Cfg *> work;
    work.reserve(cfgs.byFunc.size());
    for (const auto &kv : cfgs.byFunc)
        work.push_back(&kv.second);
    std::sort(work.begin(), work.end(),
              [](const Cfg *a, const Cfg *b) {
                  if (a->nodeCount() != b->nodeCount())
                      return a->nodeCount() > b->nodeCount();
                  return a->func < b->func;
              });

    std::vector<std::vector<std::pair<Pc, Pc>>> results(work.size());
    ThreadPool pool(threads - 1);
    pool.parallelFor(0, work.size(), [&](size_t i) {
        collectDeps(*work[i], [&results, i](Pc pc, Pc branch_pc) {
            results[i].emplace_back(pc, branch_pc);
        });
    });

    // Merge serially. Each (func, pc) key belongs to exactly one
    // function, and within a function the pairs arrive in the same order
    // the serial path adds them, so the map contents are identical.
    for (size_t i = 0; i < work.size(); ++i) {
        const FuncId func = work[i]->func;
        for (const auto &[pc, branch_pc] : results[i])
            out.add(func, pc, branch_pc);
    }
    return out;
}

} // namespace graph
} // namespace webslice
