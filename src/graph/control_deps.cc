#include "graph/control_deps.hh"

#include <algorithm>
#include <fstream>

#include "graph/postdom.hh"
#include "support/logging.hh"

namespace webslice {
namespace graph {

using trace::FuncId;
using trace::Pc;

std::span<const Pc>
ControlDepMap::depsOf(FuncId func, Pc pc) const
{
    auto it = deps_.find(key(func, pc));
    if (it == deps_.end())
        return {};
    return it->second;
}

void
ControlDepMap::add(FuncId func, Pc pc, Pc branch_pc)
{
    auto &list = deps_[key(func, pc)];
    if (std::find(list.begin(), list.end(), branch_pc) == list.end())
        list.push_back(branch_pc);
}

size_t
ControlDepMap::pairCount() const
{
    size_t total = 0;
    for (const auto &kv : deps_)
        total += kv.second.size();
    return total;
}

void
ControlDepMap::save(const std::string &path) const
{
    std::ofstream out(path);
    fatal_if(!out, "cannot write control-dependence map to ", path);
    out << "webcdg 1\n";
    for (const auto &kv : deps_) {
        out << (kv.first >> 32) << ' '
            << (kv.first & 0xFFFFFFFFull) << ' ' << kv.second.size();
        for (const Pc branch : kv.second)
            out << ' ' << branch;
        out << '\n';
    }
    fatal_if(!out, "short write saving control-dependence map to ", path);
}

void
ControlDepMap::load(const std::string &path)
{
    std::ifstream in(path);
    fatal_if(!in, "cannot read control-dependence map from ", path);
    std::string magic;
    int version = 0;
    in >> magic >> version;
    fatal_if(magic != "webcdg" || version != 1,
             "bad control-dependence map header in ", path);

    deps_.clear();
    uint64_t func = 0, pc = 0;
    size_t count = 0;
    while (in >> func >> pc >> count) {
        auto &list = deps_[key(static_cast<FuncId>(func),
                               static_cast<Pc>(pc))];
        list.resize(count);
        for (size_t i = 0; i < count; ++i)
            in >> list[i];
    }
}

ControlDepMap
buildControlDeps(const CfgSet &cfgs)
{
    ControlDepMap out;

    for (const auto &kv : cfgs.byFunc) {
        const Cfg &cfg = kv.second;
        if (cfg.nodeCount() <= 2)
            continue;

        const std::vector<NodeId> ipdom = computePostdoms(cfg);

        for (size_t a = 0; a < cfg.nodeCount(); ++a) {
            // Only executed Branch records can control other instructions;
            // multi-successor shapes from merged call paths are noise.
            if (!cfg.isBranch[a] || cfg.succs[a].size() < 2)
                continue;
            const NodeId node_a = static_cast<NodeId>(a);
            const Pc branch_pc = cfg.nodePc[a];

            for (const NodeId succ : cfg.succs[node_a]) {
                // Walk the postdominator tree from succ up to (exclusive)
                // ipdom(a); every node on the way is control-dependent
                // on a.
                NodeId t = succ;
                size_t guard = 0;
                while (t != kNoNode && t != ipdom[node_a] &&
                       t != Cfg::kExit) {
                    if (cfg.nodePc[t] != trace::kNoPc) {
                        out.add(cfg.func, cfg.nodePc[t], branch_pc);
                    }
                    t = ipdom[t];
                    panic_if(++guard > cfg.nodeCount(),
                             "postdominator walk did not terminate");
                }
            }
        }
    }
    return out;
}

} // namespace graph
} // namespace webslice
