#include "graph/cfg.hh"

#include <algorithm>
#include <thread>

#include "support/logging.hh"
#include "support/metrics.hh"
#include "support/strings.hh"
#include "support/thread_pool.hh"
#include "trace/trace_file.hh"

namespace webslice {
namespace graph {

using trace::FuncId;
using trace::Pc;
using trace::Record;
using trace::RecordKind;

NodeId
Cfg::nodeFor(Pc pc)
{
    auto it = pcNode.find(pc);
    if (it != pcNode.end())
        return it->second;
    const NodeId id = static_cast<NodeId>(nodePc.size());
    nodePc.push_back(pc);
    pcNode.emplace(pc, id);
    succs.emplace_back();
    preds.emplace_back();
    isBranch.push_back(false);
    return id;
}

NodeId
Cfg::findNode(Pc pc) const
{
    auto it = pcNode.find(pc);
    return it == pcNode.end() ? kNoNode : it->second;
}

void
Cfg::addEdge(NodeId a, NodeId b)
{
    auto &out = succs[a];
    if (std::find(out.begin(), out.end(), b) != out.end())
        return;
    out.push_back(b);
    preds[b].push_back(a);
}

std::string
CfgSet::functionName(FuncId id, const trace::SymbolTable &symtab) const
{
    auto it = syntheticNames.find(id);
    if (it != syntheticNames.end())
        return it->second;
    if (id < symtab.functionCount())
        return symtab.symbol(id).name;
    return format("<unknown:%u>", id);
}

Pc
CfgSet::entryPcOf(FuncId id) const
{
    auto it = byFunc.find(id);
    if (it == byFunc.end())
        return trace::kNoPc;
    const Cfg &cfg = it->second;
    // Node 2 is the first real pc the function ever executed (nodes 0/1
    // are the virtual entry/exit); for symbol-registered functions that
    // is the function's entry pc, for synthetics it is the first glue pc.
    return cfg.nodePc.size() > 2 ? cfg.nodePc[2] : trace::kNoPc;
}

std::vector<FuncId>
CfgSet::functionsByEntryPc() const
{
    std::vector<FuncId> order;
    order.reserve(byFunc.size());
    for (const auto &[id, cfg] : byFunc)
        order.push_back(id);
    std::sort(order.begin(), order.end(), [this](FuncId a, FuncId b) {
        const Pc pa = entryPcOf(a);
        const Pc pb = entryPcOf(b);
        if (pa != pb)
            return pa < pb;
        return a < b;
    });
    return order;
}

// ---- CfgBuilder -------------------------------------------------------------

CfgBuilder::CfgBuilder(const trace::SymbolTable &symtab)
    : symtab_(symtab)
{
    out_.firstSynthetic = static_cast<FuncId>(symtab.functionCount());
    nextSynthetic_ = out_.firstSynthetic;
}

Cfg &
CfgBuilder::cfgFor(FuncId func)
{
    auto [it, inserted] = out_.byFunc.try_emplace(func);
    if (inserted) {
        Cfg &cfg = it->second;
        cfg.func = func;
        // Reserve entry and exit.
        cfg.nodePc.assign(2, trace::kNoPc);
        cfg.succs.assign(2, {});
        cfg.preds.assign(2, {});
        cfg.isBranch.assign(2, false);
    }
    return it->second;
}

CfgBuilder::Frame &
CfgBuilder::topFrame(trace::ThreadId tid)
{
    auto &stack = threads_[tid];
    if (stack.empty()) {
        const FuncId synthetic = nextSynthetic_++;
        out_.syntheticNames[synthetic] = format("<toplevel:tid%u>", tid);
        cfgFor(synthetic);
        stack.push_back(Frame{synthetic, Cfg::kEntry});
        ++out_.stats.framesOpened;
    }
    return stack.back();
}

FuncId
CfgBuilder::step(trace::ThreadId tid, Pc pc, bool is_branch)
{
    Frame &frame = topFrame(tid);
    Cfg &cfg = cfgFor(frame.func);
    const NodeId node = cfg.nodeFor(pc);
    if (is_branch)
        cfg.isBranch[node] = true;
    const NodeId from =
        frame.lastNode == kNoNode ? Cfg::kEntry : frame.lastNode;
    cfg.addEdge(from, node);
    frame.lastNode = node;
    return frame.func;
}

void
CfgBuilder::feed(const Record &rec)
{
    panic_if(finished_, "feed after finish");

    if (rec.isPseudo()) {
        // Inherit the enclosing function of the preceding syscall.
        out_.funcOf.push_back(out_.funcOf.empty() ? trace::kNoFunc
                                                  : out_.funcOf.back());
        return;
    }

    ++out_.stats.transitionsObserved;

    switch (rec.kind) {
      case RecordKind::Call: {
        // The call instruction itself belongs to the caller.
        out_.funcOf.push_back(step(rec.tid, rec.pc, false));

        FuncId callee =
            symtab_.functionAtEntry(static_cast<Pc>(rec.addr));
        if (callee == trace::kNoFunc) {
            // Call into an unregistered target: synthesize a function.
            callee = nextSynthetic_++;
            out_.syntheticNames[callee] = format(
                "<anon:pc%llu>",
                static_cast<unsigned long long>(rec.addr));
        }
        cfgFor(callee);
        threads_[rec.tid].push_back(Frame{callee, kNoNode});
        ++out_.stats.framesOpened;
        break;
      }

      case RecordKind::Ret: {
        auto &stack = threads_[rec.tid];
        if (stack.empty()) {
            // Trace began mid-function; treat as toplevel glue.
            out_.funcOf.push_back(step(rec.tid, rec.pc, false));
            break;
        }
        Frame &frame = stack.back();
        Cfg &cfg = cfgFor(frame.func);
        const NodeId node = cfg.nodeFor(rec.pc);
        const NodeId from =
            frame.lastNode == kNoNode ? Cfg::kEntry : frame.lastNode;
        cfg.addEdge(from, node);
        cfg.addEdge(node, Cfg::kExit);
        out_.funcOf.push_back(frame.func);
        stack.pop_back();
        ++out_.stats.framesClosed;
        break;
      }

      default:
        out_.funcOf.push_back(
            step(rec.tid, rec.pc, rec.kind == RecordKind::Branch));
        break;
    }
}

CfgSet
CfgBuilder::finish()
{
    panic_if(finished_, "finish called twice");
    finished_ = true;

    // Close any frames still open at the end of the trace so every node
    // can reach the virtual exit (postdominators need this).
    for (auto &kv : threads_) {
        out_.stats.framesOpenAtEnd += kv.second.size();
        for (auto it = kv.second.rbegin(); it != kv.second.rend(); ++it) {
            Cfg &cfg = out_.byFunc.at(it->func);
            const NodeId from =
                it->lastNode == kNoNode ? Cfg::kEntry : it->lastNode;
            cfg.addEdge(from, Cfg::kExit);
        }
    }

    // Defensive: any node with no successors (shouldn't happen after the
    // close-out above, but keeps postdominator computation total).
    for (auto &kv : out_.byFunc) {
        Cfg &cfg = kv.second;
        for (size_t n = 0; n < cfg.nodeCount(); ++n) {
            if (n != static_cast<size_t>(Cfg::kExit) &&
                cfg.succs[n].empty()) {
                cfg.addEdge(static_cast<NodeId>(n), Cfg::kExit);
            }
        }
    }

    MetricRegistry::global().counter("cfg.records_fed")
        .add(out_.funcOf.size());

    return std::move(out_);
}

// ---- ParallelCfgBuilder -----------------------------------------------------

size_t ParallelCfgBuilder::shardOverrideForTesting = 0;

ParallelCfgBuilder::ParallelCfgBuilder(const trace::SymbolTable &symtab)
    : symtab_(symtab)
{
    out_.firstSynthetic = static_cast<FuncId>(symtab.functionCount());
    nextSynthetic_ = out_.firstSynthetic;
    // Registered functions are known upfront; synthetics grow the arrays
    // on demand in touchFunc().
    funcs_.resize(symtab.functionCount());
    touched_.resize(symtab.functionCount(), 0);
}

void
ParallelCfgBuilder::reserveRecords(size_t count)
{
    out_.funcOf.reserve(count);
}

void
ParallelCfgBuilder::touchFunc(FuncId func)
{
    if (func >= funcs_.size()) {
        funcs_.resize(func + 1);
        touched_.resize(func + 1, 0);
    }
    if (!touched_[func]) {
        touched_[func] = 1;
        funcOrder_.push_back(func);
    }
}

std::vector<ParallelCfgBuilder::Frame> &
ParallelCfgBuilder::stackFor(trace::ThreadId tid)
{
    if (tid >= threads_.size())
        threads_.resize(tid + 1);
    return threads_[tid];
}

ParallelCfgBuilder::Frame &
ParallelCfgBuilder::topFrame(trace::ThreadId tid)
{
    auto &stack = stackFor(tid);
    if (stack.empty()) {
        const FuncId synthetic = nextSynthetic_++;
        out_.syntheticNames[synthetic] = format("<toplevel:tid%u>", tid);
        touchFunc(synthetic);
        stack.push_back(Frame{synthetic, trace::kNoPc});
        ++out_.stats.framesOpened;
    }
    return stack.back();
}

FuncId
ParallelCfgBuilder::step(trace::ThreadId tid, Pc pc, bool is_branch)
{
    Frame &frame = topFrame(tid);
    funcs_[frame.func].emit(frame.lastPc, pc,
                            is_branch ? uint8_t{kTransBranch}
                                      : uint8_t{0});
    frame.lastPc = pc;
    // topFrame may have grown funcs_ (toplevel creation), so compute the
    // cached pointers only now.
    cacheTid_ = tid;
    cacheFrame_ = &frame;
    cacheStream_ = &funcs_[frame.func];
    return frame.func;
}

void
ParallelCfgBuilder::feed(const Record &rec)
{
    panic_if(finished_, "feed after finish");

    if (rec.isPseudo()) {
        out_.funcOf.push_back(out_.funcOf.empty() ? trace::kNoFunc
                                                  : out_.funcOf.back());
        return;
    }

    ++out_.stats.transitionsObserved;

    switch (rec.kind) {
      case RecordKind::Call: {
        // The call instruction itself belongs to the caller.
        out_.funcOf.push_back(step(rec.tid, rec.pc, false));

        FuncId callee =
            symtab_.functionAtEntry(static_cast<Pc>(rec.addr));
        if (callee == trace::kNoFunc) {
            callee = nextSynthetic_++;
            out_.syntheticNames[callee] = format(
                "<anon:pc%llu>",
                static_cast<unsigned long long>(rec.addr));
        }
        touchFunc(callee);
        threads_[rec.tid].push_back(Frame{callee, trace::kNoPc});
        ++out_.stats.framesOpened;
        cacheTid_ = rec.tid;
        cacheFrame_ = &threads_[rec.tid].back();
        cacheStream_ = &funcs_[callee];
        break;
      }

      case RecordKind::Ret: {
        auto &stack = stackFor(rec.tid);
        if (stack.empty()) {
            // Trace began mid-function; treat as toplevel glue.
            out_.funcOf.push_back(step(rec.tid, rec.pc, false));
            break;
        }
        Frame &frame = stack.back();
        funcs_[frame.func].emit(frame.lastPc, rec.pc, kTransRet);
        out_.funcOf.push_back(frame.func);
        stack.pop_back();
        ++out_.stats.framesClosed;
        cacheTid_ = rec.tid;
        cacheFrame_ = stack.empty() ? nullptr : &stack.back();
        cacheStream_ =
            stack.empty() ? nullptr : &funcs_[stack.back().func];
        break;
      }

      default: {
        if (cacheFrame_ && rec.tid == cacheTid_) {
            Frame &frame = *cacheFrame_;
            cacheStream_->emit(frame.lastPc, rec.pc,
                               rec.kind == RecordKind::Branch
                                   ? uint8_t{kTransBranch}
                                   : uint8_t{0});
            frame.lastPc = rec.pc;
            out_.funcOf.push_back(frame.func);
            break;
        }
        out_.funcOf.push_back(
            step(rec.tid, rec.pc, rec.kind == RecordKind::Branch));
        break;
      }
    }
}

/**
 * One shard of the parallel feed: the starting call stacks (from the
 * structure pass), the synthetic ids the structure pass assigned to
 * events inside this shard's record range, the per-function streams the
 * shard emits, and the placeholder transitions that need their `from` pc
 * patched in from the previous shard.
 */
struct ParallelCfgBuilder::Shard
{
    std::vector<std::vector<Frame>> stacks; ///< Indexed by ThreadId.
    std::vector<FuncStream> funcs;          ///< Indexed by FuncId.
    std::vector<trace::FuncId> preallocated; ///< Synthetics, in order.
    size_t nextPrealloc = 0;

    struct Patch
    {
        trace::FuncId func;
        uint32_t step;
        trace::ThreadId tid;
    };
    std::vector<Patch> patches;
};

void
ParallelCfgBuilder::runShard(Shard &shard,
                             std::span<const Record> records,
                             size_t begin, size_t end)
{
    shard.funcs.resize(funcs_.size());

    // Function of the previous record, for pseudo-record inheritance.
    // Records before the shard's first non-pseudo one are attributed
    // serially afterwards (their predecessor lives in another shard).
    FuncId last_func = trace::kNoFunc;
    bool seeded = false;

    const auto take_synthetic = [&shard]() -> FuncId {
        panic_if(shard.nextPrealloc >= shard.preallocated.size(),
                 "shard ran out of pre-assigned synthetic functions");
        return shard.preallocated[shard.nextPrealloc++];
    };
    const auto stack_of =
        [&shard](trace::ThreadId tid) -> std::vector<Frame> & {
        if (tid >= shard.stacks.size())
            shard.stacks.resize(tid + 1);
        return shard.stacks[tid];
    };
    const auto emit = [&shard](trace::ThreadId tid, FuncId func, Pc from,
                               Pc to, uint8_t flags) {
        panic_if(func >= shard.funcs.size(),
                 "shard touched a function the structure pass missed");
        FuncStream &fs = shard.funcs[func];
        if (from == kPatchPc) {
            // Predecessor pc lives in the previous shard; record the
            // transition unfiltered and patch `from` in serially later.
            shard.patches.push_back(Shard::Patch{
                func, static_cast<uint32_t>(fs.steps.size()), tid});
            fs.steps.push_back(Transition{from, to, flags});
            return;
        }
        fs.emit(from, to, flags);
    };
    const auto step = [&](trace::ThreadId tid, Pc pc,
                          bool is_branch) -> FuncId {
        auto &stack = stack_of(tid);
        if (stack.empty())
            stack.push_back(Frame{take_synthetic(), trace::kNoPc});
        Frame &frame = stack.back();
        emit(tid, frame.func, frame.lastPc, pc,
             is_branch ? uint8_t{kTransBranch} : uint8_t{0});
        frame.lastPc = pc;
        return frame.func;
    };

    for (size_t idx = begin; idx < end; ++idx) {
        const Record &rec = records[idx];

        if (rec.isPseudo()) {
            if (seeded)
                out_.funcOf[idx] = last_func;
            continue;
        }

        switch (rec.kind) {
          case RecordKind::Call: {
            out_.funcOf[idx] = step(rec.tid, rec.pc, false);
            FuncId callee =
                symtab_.functionAtEntry(static_cast<Pc>(rec.addr));
            if (callee == trace::kNoFunc)
                callee = take_synthetic();
            stack_of(rec.tid).push_back(Frame{callee, trace::kNoPc});
            break;
          }

          case RecordKind::Ret: {
            auto &stack = stack_of(rec.tid);
            if (stack.empty()) {
                out_.funcOf[idx] = step(rec.tid, rec.pc, false);
                break;
            }
            Frame &frame = stack.back();
            emit(rec.tid, frame.func, frame.lastPc, rec.pc, kTransRet);
            out_.funcOf[idx] = frame.func;
            stack.pop_back();
            break;
          }

          default:
            out_.funcOf[idx] =
                step(rec.tid, rec.pc, rec.kind == RecordKind::Branch);
            break;
        }

        last_func = out_.funcOf[idx];
        seeded = true;
    }

    panic_if(shard.nextPrealloc != shard.preallocated.size(),
             "shard did not consume every pre-assigned synthetic");
}

void
ParallelCfgBuilder::feedAll(std::span<const Record> records, int jobs)
{
    panic_if(finished_, "feedAll after finish");
    panic_if(!out_.funcOf.empty(), "feedAll requires a fresh builder");

    // Sharding does strictly more total work than the serial feed (the
    // structure pass re-reads the trace), so it only pays off when real
    // cores can run the shards concurrently: clamp to the hardware.
    const unsigned threads = ThreadPool::resolveJobs(jobs);
    size_t shards = std::min<size_t>(
        threads,
        std::max<size_t>(1, records.size() / kMinShardRecords));
    if (const unsigned hw = std::thread::hardware_concurrency())
        shards = std::min<size_t>(shards, hw);
    if (shardOverrideForTesting) {
        shards = std::min(shardOverrideForTesting,
                          std::max<size_t>(1, records.size()));
    }
    if (shards <= 1) {
        // Serial feed, specialized for a known trace length: the same
        // logic as feed(), but the attribution array is sized upfront
        // and written through a raw pointer — per-record push_back
        // bookkeeping is measurable at this loop's throughput.
        out_.funcOf.resize(records.size(), trace::kNoFunc);
        FuncId *const func_of = out_.funcOf.data();
        for (size_t idx = 0; idx < records.size(); ++idx) {
            const Record &rec = records[idx];
            if (rec.isPseudo()) {
                func_of[idx] = idx ? func_of[idx - 1] : trace::kNoFunc;
                continue;
            }
            ++out_.stats.transitionsObserved;
            switch (rec.kind) {
              case RecordKind::Call: {
                func_of[idx] = step(rec.tid, rec.pc, false);
                FuncId callee =
                    symtab_.functionAtEntry(static_cast<Pc>(rec.addr));
                if (callee == trace::kNoFunc) {
                    callee = nextSynthetic_++;
                    out_.syntheticNames[callee] = format(
                        "<anon:pc%llu>",
                        static_cast<unsigned long long>(rec.addr));
                }
                touchFunc(callee);
                threads_[rec.tid].push_back(Frame{callee, trace::kNoPc});
                ++out_.stats.framesOpened;
                cacheTid_ = rec.tid;
                cacheFrame_ = &threads_[rec.tid].back();
                cacheStream_ = &funcs_[callee];
                break;
              }

              case RecordKind::Ret: {
                auto &stack = stackFor(rec.tid);
                if (stack.empty()) {
                    func_of[idx] = step(rec.tid, rec.pc, false);
                    break;
                }
                Frame &frame = stack.back();
                funcs_[frame.func].emit(frame.lastPc, rec.pc, kTransRet);
                func_of[idx] = frame.func;
                stack.pop_back();
                ++out_.stats.framesClosed;
                cacheTid_ = rec.tid;
                cacheFrame_ = stack.empty() ? nullptr : &stack.back();
                cacheStream_ =
                    stack.empty() ? nullptr : &funcs_[stack.back().func];
                break;
              }

              default: {
                if (cacheFrame_ && rec.tid == cacheTid_) {
                    Frame &frame = *cacheFrame_;
                    cacheStream_->emit(frame.lastPc, rec.pc,
                                       rec.kind == RecordKind::Branch
                                           ? uint8_t{kTransBranch}
                                           : uint8_t{0});
                    frame.lastPc = rec.pc;
                    func_of[idx] = frame.func;
                    break;
                }
                func_of[idx] = step(rec.tid, rec.pc,
                                    rec.kind == RecordKind::Branch);
                break;
              }
            }
        }
        return;
    }

    // Pseudo-records at shard boundaries are attributed in the fix-up
    // below; everything else is written by exactly one shard.
    out_.funcOf.assign(records.size(), trace::kNoFunc);

    std::vector<size_t> bounds(shards + 1);
    for (size_t w = 0; w <= shards; ++w)
        bounds[w] = records.size() * w / shards;

    // Structure pass: replay only the stack-shaping events (Call/Ret and
    // toplevel creation) so each shard starts from the right call
    // stacks, and assign synthetic function ids in exact serial order.
    // Top-frame lastPc values are not tracked here — each shard's
    // snapshot gets a placeholder instead, resolved after the shards
    // run.
    std::vector<Shard> shard_states(shards);
    {
        std::vector<std::vector<Frame>> stacks;
        size_t w = 0;

        const auto make_toplevel =
            [&](std::vector<Frame> &stack, trace::ThreadId tid) {
                const FuncId synthetic = nextSynthetic_++;
                out_.syntheticNames[synthetic] =
                    format("<toplevel:tid%u>", tid);
                touchFunc(synthetic);
                shard_states[w].preallocated.push_back(synthetic);
                stack.push_back(Frame{synthetic, trace::kNoPc});
                ++out_.stats.framesOpened;
            };

        for (size_t idx = 0; idx < records.size(); ++idx) {
            if (w + 1 < shards && idx == bounds[w + 1]) {
                ++w;
                auto snapshot = stacks;
                for (auto &stack : snapshot) {
                    if (!stack.empty())
                        stack.back().lastPc = kPatchPc;
                }
                shard_states[w].stacks = std::move(snapshot);
            }

            const Record &rec = records[idx];
            if (rec.isPseudo())
                continue;
            ++out_.stats.transitionsObserved;
            if (rec.tid >= stacks.size())
                stacks.resize(rec.tid + 1);
            auto &stack = stacks[rec.tid];

            switch (rec.kind) {
              case RecordKind::Call: {
                if (stack.empty())
                    make_toplevel(stack, rec.tid);
                stack.back().lastPc = rec.pc;
                FuncId callee =
                    symtab_.functionAtEntry(static_cast<Pc>(rec.addr));
                if (callee == trace::kNoFunc) {
                    callee = nextSynthetic_++;
                    out_.syntheticNames[callee] = format(
                        "<anon:pc%llu>",
                        static_cast<unsigned long long>(rec.addr));
                    shard_states[w].preallocated.push_back(callee);
                }
                touchFunc(callee);
                stack.push_back(Frame{callee, trace::kNoPc});
                ++out_.stats.framesOpened;
                break;
              }

              case RecordKind::Ret:
                if (stack.empty()) {
                    make_toplevel(stack, rec.tid);
                    stack.back().lastPc = rec.pc;
                } else {
                    stack.pop_back();
                    ++out_.stats.framesClosed;
                }
                break;

              default:
                if (stack.empty())
                    make_toplevel(stack, rec.tid);
                break;
            }
        }
    }

    {
        ThreadPool pool(static_cast<unsigned>(shards) - 1);
        pool.parallelFor(0, shards, [&](size_t w) {
            runShard(shard_states[w], records, bounds[w], bounds[w + 1]);
        });
    }

    // Resolve the placeholder predecessors: walk shards in trace order
    // carrying each thread's top-frame lastPc forward. A shard that saw
    // no records of a thread leaves its stacks (and any placeholder)
    // untouched, so the carried value stays correct across it.
    std::vector<Pc> last_pc; // per tid; kPatchPc = not yet known
    for (size_t w = 0; w < shards; ++w) {
        Shard &shard = shard_states[w];
        for (const auto &patch : shard.patches) {
            panic_if(patch.tid >= last_pc.size() ||
                         last_pc[patch.tid] == kPatchPc,
                     "cross-shard predecessor has no source");
            shard.funcs[patch.func].steps[patch.step].from =
                last_pc[patch.tid];
        }
        if (shard.stacks.size() > last_pc.size())
            last_pc.resize(shard.stacks.size(), kPatchPc);
        for (size_t tid = 0; tid < shard.stacks.size(); ++tid) {
            auto &stack = shard.stacks[tid];
            if (stack.empty())
                continue;
            if (stack.back().lastPc == kPatchPc) {
                // Untouched by this shard; inherit for the close-out.
                panic_if(last_pc[tid] == kPatchPc,
                         "cross-shard predecessor has no source");
                stack.back().lastPc = last_pc[tid];
            }
            last_pc[tid] = stack.back().lastPc;
        }
    }

    // Concatenate the shard streams in trace order; contiguous ranges
    // mean this preserves global first-occurrence order exactly.
    for (size_t func = 0; func < funcs_.size(); ++func) {
        auto &dst = funcs_[func].steps;
        for (auto &shard : shard_states) {
            if (func >= shard.funcs.size())
                continue;
            funcs_[func].filtered += shard.funcs[func].filtered;
            auto &src = shard.funcs[func].steps;
            if (dst.empty())
                dst = std::move(src);
            else
                dst.insert(dst.end(), src.begin(), src.end());
        }
    }

    // The final shard's stacks are the frames still open at trace end.
    threads_ = std::move(shard_states.back().stacks);

    // Pseudo-records leading a shard inherit across the boundary.
    for (size_t w = 1; w < shards; ++w) {
        for (size_t idx = bounds[w];
             idx < bounds[w + 1] && records[idx].isPseudo(); ++idx) {
            out_.funcOf[idx] = out_.funcOf[idx - 1];
        }
    }
}

CfgSet
ParallelCfgBuilder::finish(int jobs)
{
    panic_if(finished_, "finish called twice");
    finished_ = true;

    // Close frames still open at the end of the trace (mirrors
    // CfgBuilder::finish so every node can reach the virtual exit).
    for (auto &stack : threads_) {
        out_.stats.framesOpenAtEnd += stack.size();
        for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
            funcs_[it->func].steps.push_back(
                Transition{it->lastPc, trace::kNoPc, kTransClose});
        }
    }

    // Create every Cfg entry serially; the parallel phase below only
    // mutates the per-function values, never the map itself.
    for (const FuncId func : funcOrder_) {
        Cfg &cfg = out_.byFunc[func];
        cfg.func = func;
        cfg.nodePc.assign(2, trace::kNoPc);
        cfg.succs.assign(2, {});
        cfg.preds.assign(2, {});
        cfg.isBranch.assign(2, false);
    }

    // Longest streams first so the pool's work stays balanced even when
    // one function (an interpreter loop, say) dominates the trace.
    std::vector<FuncId> order = funcOrder_;
    std::sort(order.begin(), order.end(),
              [this](FuncId a, FuncId b) {
                  const size_t na = funcs_[a].steps.size();
                  const size_t nb = funcs_[b].steps.size();
                  return na != nb ? na > nb : a < b;
              });

    // Replay each function's transition stream independently. Node ids
    // are assigned in first-use order of the `to` pcs, exactly as the
    // serial builder assigns them, so the result is bit-identical.
    const auto replay = [this, &order](size_t i) {
        const FuncId func = order[i];
        Cfg &cfg = out_.byFunc.at(func);
        for (const Transition &t : funcs_[func].steps) {
            if (t.flags & kTransClose) {
                const NodeId from = t.from == trace::kNoPc
                                        ? Cfg::kEntry
                                        : cfg.nodeFor(t.from);
                cfg.addEdge(from, Cfg::kExit);
                continue;
            }
            const NodeId node = cfg.nodeFor(t.to);
            if (t.flags & kTransBranch)
                cfg.isBranch[node] = true;
            const NodeId from =
                t.from == trace::kNoPc ? Cfg::kEntry : cfg.nodeFor(t.from);
            cfg.addEdge(from, node);
            if (t.flags & kTransRet)
                cfg.addEdge(node, Cfg::kExit);
        }
        // Defensive no-successor fix-up, as in CfgBuilder::finish.
        for (size_t n = 0; n < cfg.nodeCount(); ++n) {
            if (n != static_cast<size_t>(Cfg::kExit) &&
                cfg.succs[n].empty()) {
                cfg.addEdge(static_cast<NodeId>(n), Cfg::kExit);
            }
        }
    };

    const unsigned threads = ThreadPool::resolveJobs(jobs);
    if (threads <= 1) {
        for (size_t i = 0; i < order.size(); ++i)
            replay(i);
    } else {
        ThreadPool pool(threads - 1);
        pool.parallelFor(0, order.size(), replay);
    }

    // Publish the feed's filtering effectiveness: replayed is the unique
    // transitions that survived the duplicate filter, filtered the drops.
    uint64_t replayed = 0, filtered = 0;
    for (const FuncStream &fs : funcs_) {
        replayed += fs.steps.size();
        filtered += fs.filtered;
    }
    auto &registry = MetricRegistry::global();
    registry.counter("cfg.records_fed").add(out_.funcOf.size());
    registry.counter("cfg.transitions_replayed").add(replayed);
    registry.counter("cfg.transitions_filtered").add(filtered);

    funcs_.clear();
    return std::move(out_);
}

CfgSet
buildCfgs(std::span<const Record> records,
          const trace::SymbolTable &symtab, int jobs)
{
    if (jobs == 1) {
        CfgBuilder builder(symtab);
        for (const auto &rec : records)
            builder.feed(rec);
        return builder.finish();
    }
    ParallelCfgBuilder builder(symtab);
    builder.feedAll(records, jobs);
    return builder.finish(jobs);
}

CfgSet
buildCfgsFromFile(const std::string &path,
                  const trace::SymbolTable &symtab, int jobs)
{
    trace::ForwardTraceReader reader(path);
    Record rec;
    if (jobs == 1) {
        CfgBuilder builder(symtab);
        while (reader.next(rec))
            builder.feed(rec);
        return builder.finish();
    }
    ParallelCfgBuilder builder(symtab);
    builder.reserveRecords(reader.count());
    while (reader.next(rec))
        builder.feed(rec);
    return builder.finish(jobs);
}

} // namespace graph
} // namespace webslice
