#include "graph/cfg.hh"

#include <algorithm>

#include "support/logging.hh"
#include "support/strings.hh"
#include "trace/trace_file.hh"

namespace webslice {
namespace graph {

using trace::FuncId;
using trace::Pc;
using trace::Record;
using trace::RecordKind;

NodeId
Cfg::nodeFor(Pc pc)
{
    auto it = pcNode.find(pc);
    if (it != pcNode.end())
        return it->second;
    const NodeId id = static_cast<NodeId>(nodePc.size());
    nodePc.push_back(pc);
    pcNode.emplace(pc, id);
    succs.emplace_back();
    preds.emplace_back();
    isBranch.push_back(false);
    return id;
}

NodeId
Cfg::findNode(Pc pc) const
{
    auto it = pcNode.find(pc);
    return it == pcNode.end() ? kNoNode : it->second;
}

void
Cfg::addEdge(NodeId a, NodeId b)
{
    auto &out = succs[a];
    if (std::find(out.begin(), out.end(), b) != out.end())
        return;
    out.push_back(b);
    preds[b].push_back(a);
}

std::string
CfgSet::functionName(FuncId id, const trace::SymbolTable &symtab) const
{
    auto it = syntheticNames.find(id);
    if (it != syntheticNames.end())
        return it->second;
    if (id < symtab.functionCount())
        return symtab.symbol(id).name;
    return format("<unknown:%u>", id);
}

// ---- CfgBuilder -------------------------------------------------------------

CfgBuilder::CfgBuilder(const trace::SymbolTable &symtab)
    : symtab_(symtab)
{
    out_.firstSynthetic = static_cast<FuncId>(symtab.functionCount());
    nextSynthetic_ = out_.firstSynthetic;
}

Cfg &
CfgBuilder::cfgFor(FuncId func)
{
    auto [it, inserted] = out_.byFunc.try_emplace(func);
    if (inserted) {
        Cfg &cfg = it->second;
        cfg.func = func;
        // Reserve entry and exit.
        cfg.nodePc.assign(2, trace::kNoPc);
        cfg.succs.assign(2, {});
        cfg.preds.assign(2, {});
        cfg.isBranch.assign(2, false);
    }
    return it->second;
}

CfgBuilder::Frame &
CfgBuilder::topFrame(trace::ThreadId tid)
{
    auto &stack = threads_[tid];
    if (stack.empty()) {
        const FuncId synthetic = nextSynthetic_++;
        out_.syntheticNames[synthetic] = format("<toplevel:tid%u>", tid);
        cfgFor(synthetic);
        stack.push_back(Frame{synthetic, Cfg::kEntry});
    }
    return stack.back();
}

FuncId
CfgBuilder::step(trace::ThreadId tid, Pc pc, bool is_branch)
{
    Frame &frame = topFrame(tid);
    Cfg &cfg = cfgFor(frame.func);
    const NodeId node = cfg.nodeFor(pc);
    if (is_branch)
        cfg.isBranch[node] = true;
    const NodeId from =
        frame.lastNode == kNoNode ? Cfg::kEntry : frame.lastNode;
    cfg.addEdge(from, node);
    frame.lastNode = node;
    return frame.func;
}

void
CfgBuilder::feed(const Record &rec)
{
    panic_if(finished_, "feed after finish");

    if (rec.isPseudo()) {
        // Inherit the enclosing function of the preceding syscall.
        out_.funcOf.push_back(out_.funcOf.empty() ? trace::kNoFunc
                                                  : out_.funcOf.back());
        return;
    }

    switch (rec.kind) {
      case RecordKind::Call: {
        // The call instruction itself belongs to the caller.
        out_.funcOf.push_back(step(rec.tid, rec.pc, false));

        FuncId callee =
            symtab_.functionAtEntry(static_cast<Pc>(rec.addr));
        if (callee == trace::kNoFunc) {
            // Call into an unregistered target: synthesize a function.
            callee = nextSynthetic_++;
            out_.syntheticNames[callee] = format(
                "<anon:pc%llu>",
                static_cast<unsigned long long>(rec.addr));
        }
        cfgFor(callee);
        threads_[rec.tid].push_back(Frame{callee, kNoNode});
        break;
      }

      case RecordKind::Ret: {
        auto &stack = threads_[rec.tid];
        if (stack.empty()) {
            // Trace began mid-function; treat as toplevel glue.
            out_.funcOf.push_back(step(rec.tid, rec.pc, false));
            break;
        }
        Frame &frame = stack.back();
        Cfg &cfg = cfgFor(frame.func);
        const NodeId node = cfg.nodeFor(rec.pc);
        const NodeId from =
            frame.lastNode == kNoNode ? Cfg::kEntry : frame.lastNode;
        cfg.addEdge(from, node);
        cfg.addEdge(node, Cfg::kExit);
        out_.funcOf.push_back(frame.func);
        stack.pop_back();
        break;
      }

      default:
        out_.funcOf.push_back(
            step(rec.tid, rec.pc, rec.kind == RecordKind::Branch));
        break;
    }
}

CfgSet
CfgBuilder::finish()
{
    panic_if(finished_, "finish called twice");
    finished_ = true;

    // Close any frames still open at the end of the trace so every node
    // can reach the virtual exit (postdominators need this).
    for (auto &kv : threads_) {
        for (auto it = kv.second.rbegin(); it != kv.second.rend(); ++it) {
            Cfg &cfg = out_.byFunc.at(it->func);
            const NodeId from =
                it->lastNode == kNoNode ? Cfg::kEntry : it->lastNode;
            cfg.addEdge(from, Cfg::kExit);
        }
    }

    // Defensive: any node with no successors (shouldn't happen after the
    // close-out above, but keeps postdominator computation total).
    for (auto &kv : out_.byFunc) {
        Cfg &cfg = kv.second;
        for (size_t n = 0; n < cfg.nodeCount(); ++n) {
            if (n != static_cast<size_t>(Cfg::kExit) &&
                cfg.succs[n].empty()) {
                cfg.addEdge(static_cast<NodeId>(n), Cfg::kExit);
            }
        }
    }

    return std::move(out_);
}

CfgSet
buildCfgs(std::span<const Record> records,
          const trace::SymbolTable &symtab)
{
    CfgBuilder builder(symtab);
    for (const auto &rec : records)
        builder.feed(rec);
    return builder.finish();
}

CfgSet
buildCfgsFromFile(const std::string &path,
                  const trace::SymbolTable &symtab)
{
    CfgBuilder builder(symtab);
    trace::ForwardTraceReader reader(path);
    Record rec;
    while (reader.next(rec))
        builder.feed(rec);
    return builder.finish();
}

} // namespace graph
} // namespace webslice
