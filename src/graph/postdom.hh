/**
 * @file
 * Postdominator computation (the profiler's forward pass, part 2).
 *
 * A node n postdominates m iff every path from m to the CFG's virtual exit
 * passes through n. We compute immediate postdominators with the
 * Cooper–Harvey–Kennedy iterative dominance algorithm applied to the
 * reversed CFG rooted at the exit node.
 */

#ifndef WEBSLICE_GRAPH_POSTDOM_HH
#define WEBSLICE_GRAPH_POSTDOM_HH

#include <vector>

#include "graph/cfg.hh"

namespace webslice {
namespace graph {

/**
 * Immediate postdominator of every node of cfg.
 *
 * @return ipdom indexed by node; ipdom[exit] == exit; nodes that cannot
 *         reach the exit (which buildCfgs prevents) get kNoNode.
 */
std::vector<NodeId> computePostdoms(const Cfg &cfg);

/** True iff a postdominates b under the given ipdom tree. */
bool postdominates(const std::vector<NodeId> &ipdom, NodeId a, NodeId b);

} // namespace graph
} // namespace webslice

#endif // WEBSLICE_GRAPH_POSTDOM_HH
