#include "check/soundness.hh"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "support/rng.hh"
#include "support/strings.hh"

namespace webslice {
namespace check {

using slicer::CriteriaMode;
using trace::Record;
using trace::RecordKind;
using trace::RegId;

namespace {

const char *
kindName(RecordKind kind)
{
    switch (kind) {
      case RecordKind::Alu: return "Alu";
      case RecordKind::LoadImm: return "LoadImm";
      case RecordKind::Load: return "Load";
      case RecordKind::Store: return "Store";
      case RecordKind::Branch: return "Branch";
      case RecordKind::Jump: return "Jump";
      case RecordKind::Call: return "Call";
      case RecordKind::Ret: return "Ret";
      case RecordKind::Syscall: return "Syscall";
      case RecordKind::SyscallRead: return "SyscallRead";
      case RecordKind::SyscallWrite: return "SyscallWrite";
      case RecordKind::Marker: return "Marker";
    }
    return "?";
}

/** Counters filled by the main replay (probes pass nullptr). */
struct ReplayCounters
{
    uint64_t recordsReplayed = 0;
    uint64_t inSliceReplayed = 0;
    uint64_t criteriaBytesChecked = 0;
    uint64_t criteriaBytesPristine = 0;
    uint64_t valueBytesCompared = 0;
};

enum : uint8_t
{
    kRegPristine = 0,
    kRegClean = 1,
    kRegDirty = 2,
};

/**
 * The provenance core. Replays records[0, windowEnd) under the given
 * per-record verdict and returns the number of violations. `findings`
 * and `counters` may be null (minimality probes run silently);
 * `stop_at_first` lets probes bail at the first violation.
 */
class ProvenanceReplay
{
  public:
    ProvenanceReplay(std::span<const Record> records, size_t window_end,
                     const trace::CriteriaSet &criteria, CriteriaMode mode,
                     const uint8_t *verdicts, size_t dropped_index,
                     const trace::ValueLog *values, Findings *findings,
                     ReplayCounters *counters, bool stop_at_first)
        : records_(records), windowEnd_(window_end), criteria_(criteria),
          mode_(mode), verdicts_(verdicts), droppedIndex_(dropped_index),
          values_(values), findings_(findings), counters_(counters),
          stopAtFirst_(stop_at_first)
    {
    }

    uint64_t
    run()
    {
        for (size_t idx = 0; idx < windowEnd_; ++idx) {
            step(idx, records_[idx]);
            if (stopAtFirst_ && violations_ > 0)
                break;
        }
        return violations_;
    }

  private:
    bool
    inSlice(size_t idx) const
    {
        return idx != droppedIndex_ && verdicts_[idx] != 0;
    }

    void
    violate(std::string message)
    {
        ++violations_;
        if (findings_)
            findings_->add(std::move(message));
    }

    std::vector<uint8_t> &
    regStateFor(trace::ThreadId tid)
    {
        if (tid >= regState_.size()) {
            regState_.resize(tid + 1);
            regWriter_.resize(tid + 1);
        }
        return regState_[tid];
    }

    void
    setReg(trace::ThreadId tid, RegId reg, uint8_t state, size_t writer)
    {
        if (reg == trace::kNoReg)
            return;
        auto &regs = regStateFor(tid);
        if (reg >= regs.size()) {
            regs.resize(reg + 1, kRegPristine);
            regWriter_[tid].resize(reg + 1, 0);
        }
        regs[reg] = state;
        regWriter_[tid][reg] = writer;
    }

    /** In-slice read of a register: must not be DIRTY. */
    void
    checkReg(size_t idx, const Record &rec, RegId reg)
    {
        if (reg == trace::kNoReg)
            return;
        auto &regs = regStateFor(rec.tid);
        if (reg >= regs.size() || regs[reg] != kRegDirty)
            return;
        violate(format("record %zu (%s pc%llu): in-slice read of r%u, "
                       "whose last writer (record %zu) is not in the "
                       "slice",
                       idx, kindName(rec.kind),
                       static_cast<unsigned long long>(rec.pc), reg,
                       regWriter_[rec.tid][reg]));
    }

    void
    setMem(size_t idx, uint64_t addr, uint64_t size, bool dirty)
    {
        for (uint64_t i = 0; i < size; ++i) {
            mem_[addr + i] = (static_cast<uint64_t>(idx) << 1) |
                             (dirty ? 1 : 0);
        }
    }

    /**
     * In-slice read of a memory range: no byte may be DIRTY. When
     * `criterion` is set, checked/pristine byte counts accrue.
     */
    void
    checkMem(size_t idx, const Record &rec, uint64_t addr, uint64_t size,
             bool criterion, const char *what)
    {
        uint64_t pristine = 0;
        bool flagged = false;
        for (uint64_t i = 0; i < size; ++i) {
            auto it = mem_.find(addr + i);
            if (it == mem_.end()) {
                ++pristine;
                continue;
            }
            if ((it->second & 1) && !flagged) {
                // One violation per range, naming the first bad byte.
                violate(format(
                    "record %zu (%s pc%llu): %s byte 0x%llx was last "
                    "written by record %zu, which is not in the slice",
                    idx, kindName(rec.kind),
                    static_cast<unsigned long long>(rec.pc), what,
                    static_cast<unsigned long long>(addr + i),
                    static_cast<size_t>(it->second >> 1)));
                flagged = true;
            }
        }
        if (criterion && counters_) {
            counters_->criteriaBytesChecked += size;
            counters_->criteriaBytesPristine += pristine;
        }
    }

    /** In-slice store: materialize the written value into the shadow. */
    void
    writeShadowValue(uint64_t addr, uint64_t size, uint64_t value)
    {
        const uint64_t bytes = std::min<uint64_t>(size, 8);
        for (uint64_t i = 0; i < bytes; ++i)
            shadow_[addr + i] = static_cast<uint8_t>(value >> (8 * i));
    }

    void
    writeShadowBlob(size_t idx, uint64_t addr, uint64_t size)
    {
        const std::vector<uint8_t> *blob = values_->blobAt(idx);
        if (!blob) {
            violate(format("value log has no snapshot for syscall-write "
                           "record %zu", idx));
            return;
        }
        if (blob->size() != size) {
            violate(format("value log snapshot for record %zu holds %zu "
                           "bytes, expected %llu", idx, blob->size(),
                           static_cast<unsigned long long>(size)));
            return;
        }
        for (uint64_t i = 0; i < size; ++i)
            shadow_[addr + i] = (*blob)[i];
    }

    /**
     * Compare a recorded criterion snapshot against the shadow memory
     * wherever provenance is CLEAN (DIRTY bytes were already flagged;
     * PRISTINE bytes were never recomputed, so there is nothing to
     * compare).
     */
    void
    compareBlob(size_t idx, const Record &rec,
                const std::vector<uint8_t> &blob, uint64_t blob_offset,
                uint64_t addr, uint64_t size)
    {
        for (uint64_t i = 0; i < size; ++i) {
            auto it = mem_.find(addr + i);
            if (it == mem_.end() || (it->second & 1))
                continue;
            auto sh = shadow_.find(addr + i);
            if (sh == shadow_.end())
                continue; // store wider than 8 bytes; value untracked
            if (counters_)
                ++counters_->valueBytesCompared;
            if (sh->second != blob[blob_offset + i]) {
                violate(format(
                    "record %zu (%s pc%llu): criterion byte 0x%llx is "
                    "0x%02x in the value log but in-slice replay "
                    "produced 0x%02x (writer record %zu)",
                    idx, kindName(rec.kind),
                    static_cast<unsigned long long>(rec.pc),
                    static_cast<unsigned long long>(addr + i),
                    blob[blob_offset + i], sh->second,
                    static_cast<size_t>(it->second >> 1)));
                return; // one mismatch per snapshot keeps reports pointed
            }
        }
    }

    /** Criterion snapshot lookup with size validation; null when absent. */
    const std::vector<uint8_t> *
    criterionBlob(size_t idx, uint64_t expected_size)
    {
        if (!values_)
            return nullptr;
        const std::vector<uint8_t> *blob = values_->blobAt(idx);
        if (!blob) {
            violate(format("value log has no criterion snapshot for "
                           "record %zu", idx));
            return nullptr;
        }
        if (blob->size() != expected_size) {
            violate(format("criterion snapshot for record %zu holds %zu "
                           "bytes, expected %llu", idx, blob->size(),
                           static_cast<unsigned long long>(
                               expected_size)));
            return nullptr;
        }
        return blob;
    }

    uint8_t
    syscallVerdict(trace::ThreadId tid) const
    {
        return tid < syscallVerdict_.size() ? syscallVerdict_[tid] : 0;
    }

    void
    step(size_t idx, const Record &rec)
    {
        const bool in = inSlice(idx);
        if (counters_) {
            ++counters_->recordsReplayed;
            if (in)
                ++counters_->inSliceReplayed;
        }

        switch (rec.kind) {
          case RecordKind::Alu:
          case RecordKind::LoadImm:
            if (in) {
                checkReg(idx, rec, rec.rr0);
                checkReg(idx, rec, rec.rr1);
                checkReg(idx, rec, rec.rr2);
            }
            setReg(rec.tid, rec.rw, in ? kRegClean : kRegDirty, idx);
            break;

          case RecordKind::Load:
            if (in) {
                checkReg(idx, rec, rec.rr0);
                checkMem(idx, rec, rec.addr, rec.aux, false, "loaded");
            }
            setReg(rec.tid, rec.rw, in ? kRegClean : kRegDirty, idx);
            break;

          case RecordKind::Store:
            if (in) {
                checkReg(idx, rec, rec.rr0);
                checkReg(idx, rec, rec.rr1);
                if (values_)
                    writeShadowValue(rec.addr, rec.aux,
                                     values_->valueAt(idx));
            }
            setMem(idx, rec.addr, rec.aux, !in);
            break;

          case RecordKind::Branch:
            if (in)
                checkReg(idx, rec, rec.rr0);
            break;

          case RecordKind::Jump:
          case RecordKind::Ret:
            break;

          case RecordKind::Call:
            if (in && rec.indirect())
                checkReg(idx, rec, rec.rr0);
            break;

          case RecordKind::Syscall:
            if (rec.tid >= syscallVerdict_.size())
                syscallVerdict_.resize(rec.tid + 1, 0);
            syscallVerdict_[rec.tid] = in ? 1 : 0;
            setReg(rec.tid, rec.rw, in ? kRegClean : kRegDirty, idx);
            if (mode_ == CriteriaMode::Syscalls && !in) {
                violate(format("record %zu (Syscall %u pc%llu): not in "
                               "the slice although every syscall is a "
                               "criterion in syscall mode",
                               idx, rec.aux,
                               static_cast<unsigned long long>(rec.pc)));
            }
            break;

          case RecordKind::SyscallRead:
            if (syscallVerdict(rec.tid)) {
                checkMem(idx, rec, rec.addr, rec.aux,
                         mode_ == CriteriaMode::Syscalls,
                         "syscall-read");
                if (mode_ == CriteriaMode::Syscalls) {
                    if (const auto *blob = criterionBlob(idx, rec.aux))
                        compareBlob(idx, rec, *blob, 0, rec.addr,
                                    rec.aux);
                }
            }
            break;

          case RecordKind::SyscallWrite: {
            const bool sys_in = syscallVerdict(rec.tid) != 0;
            if (sys_in && values_)
                writeShadowBlob(idx, rec.addr, rec.aux);
            setMem(idx, rec.addr, rec.aux, !sys_in);
            break;
          }

          case RecordKind::Marker:
            if (mode_ != CriteriaMode::PixelBuffer)
                break;
            {
                const auto &ranges = criteria_.forMarker(rec.aux);
                if (ranges.empty())
                    break;
                if (!in) {
                    violate(format(
                        "record %zu (Marker %u): carries criterion "
                        "ranges but is not in the slice",
                        idx, rec.aux));
                }
                uint64_t total = 0;
                for (const auto &range : ranges)
                    total += range.size;
                const std::vector<uint8_t> *blob =
                    criterionBlob(idx, total);
                uint64_t offset = 0;
                for (const auto &range : ranges) {
                    checkMem(idx, rec, range.addr, range.size, true,
                             "criterion");
                    if (blob)
                        compareBlob(idx, rec, *blob, offset, range.addr,
                                    range.size);
                    offset += range.size;
                }
            }
            break;
        }
    }

    std::span<const Record> records_;
    size_t windowEnd_;
    const trace::CriteriaSet &criteria_;
    CriteriaMode mode_;
    const uint8_t *verdicts_;
    size_t droppedIndex_;
    const trace::ValueLog *values_;
    Findings *findings_;
    ReplayCounters *counters_;
    bool stopAtFirst_;

    uint64_t violations_ = 0;

    /** byte address -> (last writer record index << 1) | dirty. */
    std::unordered_map<uint64_t, uint64_t> mem_;

    /** Shadow bytes re-materialized from in-slice writes (value log). */
    std::unordered_map<uint64_t, uint8_t> shadow_;

    std::vector<std::vector<uint8_t>> regState_;   ///< [tid][reg]
    std::vector<std::vector<uint64_t>> regWriter_; ///< [tid][reg]
    std::vector<uint8_t> syscallVerdict_;          ///< [tid]
};

} // namespace

SoundnessResult
checkSliceSoundness(std::span<const Record> records,
                    const slicer::SliceResult &slice,
                    const trace::CriteriaSet &criteria,
                    const trace::ValueLog *values,
                    const SoundnessOptions &options)
{
    SoundnessResult result;
    result.findings.cap = options.maxFindings;

    if (slice.inSlice.size() != records.size()) {
        result.findings.add(format(
            "slice carries %zu verdicts for %zu records",
            slice.inSlice.size(), records.size()));
        return result;
    }
    if (values && values->values.size() != records.size()) {
        result.findings.add(format(
            "value log carries %zu entries for %zu records",
            values->values.size(), records.size()));
        return result;
    }
    const size_t window_end = std::min<size_t>(
        slice.analyzedWindowEnd, records.size());

    ReplayCounters counters;
    ProvenanceReplay main_replay(
        records, window_end, criteria, options.mode,
        slice.inSlice.data(), records.size(), values, &result.findings,
        &counters, /*stop_at_first=*/false);
    main_replay.run();
    result.recordsReplayed = counters.recordsReplayed;
    result.inSliceReplayed = counters.inSliceReplayed;
    result.criteriaBytesChecked = counters.criteriaBytesChecked;
    result.criteriaBytesPristine = counters.criteriaBytesPristine;
    result.valueBytesCompared = counters.valueBytesCompared;

    if (options.minimalityProbes == 0)
        return result;

    // Candidates: in-slice data-flow records inside the window. Every
    // such record has a live consumer by construction, so dropping it
    // must surface as a provenance violation — a silent probe means the
    // replay cannot justify the record's membership.
    std::vector<size_t> candidates;
    for (size_t idx = 0; idx < window_end; ++idx) {
        if (!slice.inSlice[idx])
            continue;
        switch (records[idx].kind) {
          case RecordKind::Alu:
          case RecordKind::LoadImm:
          case RecordKind::Load:
          case RecordKind::Store:
            candidates.push_back(idx);
            break;
          default:
            break;
        }
    }

    Rng rng(options.probeSeed);
    const size_t probes =
        std::min(options.minimalityProbes, candidates.size());
    for (size_t p = 0; p < probes; ++p) {
        // Partial Fisher-Yates: candidate p is drawn from [p, end).
        const size_t pick =
            p + static_cast<size_t>(rng.below(candidates.size() - p));
        std::swap(candidates[p], candidates[pick]);
        const size_t dropped = candidates[p];

        ProvenanceReplay probe(
            records, window_end, criteria, options.mode,
            slice.inSlice.data(), dropped, /*values=*/nullptr,
            /*findings=*/nullptr, /*counters=*/nullptr,
            /*stop_at_first=*/true);
        ++result.probesRun;
        if (probe.run() > 0) {
            ++result.probesConfirmed;
        } else {
            result.findings.add(format(
                "minimality probe: dropping in-slice record %zu (%s "
                "pc%llu) left every criterion byte clean — the replay "
                "cannot justify its membership",
                dropped, kindName(records[dropped].kind),
                static_cast<unsigned long long>(records[dropped].pc)));
        }
    }
    return result;
}

} // namespace check
} // namespace webslice
