#include "check/graph_lint.hh"

#include <algorithm>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "graph/postdom.hh"
#include "support/strings.hh"

namespace webslice {
namespace check {

using graph::Cfg;
using graph::CfgSet;
using graph::NodeId;
using graph::kNoNode;
using trace::FuncId;
using trace::Pc;
using trace::Record;
using trace::RecordKind;

namespace {

// The reference replay encodes CFG nodes as plain integers so it shares
// no data structures with the builder it audits: 0 = virtual entry,
// 1 = virtual exit, pc + 2 otherwise.
constexpr uint64_t kRefEntry = 0;
constexpr uint64_t kRefExit = 1;

uint64_t
encodePc(Pc pc)
{
    return static_cast<uint64_t>(pc) + 2;
}

std::string
describeNode(uint64_t node)
{
    if (node == kRefEntry)
        return "<entry>";
    if (node == kRefExit)
        return "<exit>";
    return format("pc%llu", static_cast<unsigned long long>(node - 2));
}

/** One function's CFG as the reference replay sees it. */
struct RefFunc
{
    std::set<uint64_t> nodes;
    std::set<std::pair<uint64_t, uint64_t>> edges;
    std::set<Pc> branchPcs;
};

/** Full output of the reference replay. */
struct Reference
{
    std::map<FuncId, RefFunc> funcs;
    std::vector<FuncId> funcOf;
    std::map<FuncId, std::string> syntheticNames;
    CfgSet::Stats stats;
};

/**
 * Independently re-derive the CFG set from the raw record stream: the
 * same Call/Ret frame-matching semantics as CfgBuilder, written against
 * plain sets so a builder bug cannot hide in shared code.
 */
Reference
replayReference(std::span<const Record> records,
                const trace::SymbolTable &symtab)
{
    Reference ref;
    ref.funcOf.reserve(records.size());

    struct RFrame
    {
        FuncId func;
        uint64_t last; ///< Last node executed; kRefEntry initially.
    };
    std::vector<std::vector<RFrame>> stacks;
    FuncId next_synthetic = static_cast<FuncId>(symtab.functionCount());

    const auto func_ref = [&ref](FuncId func) -> RefFunc & {
        RefFunc &rf = ref.funcs[func];
        rf.nodes.insert(kRefEntry);
        rf.nodes.insert(kRefExit);
        return rf;
    };
    const auto stack_of =
        [&stacks](trace::ThreadId tid) -> std::vector<RFrame> & {
        if (tid >= stacks.size())
            stacks.resize(tid + 1);
        return stacks[tid];
    };
    const auto top = [&](trace::ThreadId tid) -> RFrame & {
        auto &stack = stack_of(tid);
        if (stack.empty()) {
            const FuncId synthetic = next_synthetic++;
            ref.syntheticNames[synthetic] =
                format("<toplevel:tid%u>", tid);
            func_ref(synthetic);
            stack.push_back(RFrame{synthetic, kRefEntry});
            ++ref.stats.framesOpened;
        }
        return stack.back();
    };
    const auto step = [&](trace::ThreadId tid, Pc pc,
                          bool is_branch) -> FuncId {
        RFrame &frame = top(tid);
        RefFunc &rf = func_ref(frame.func);
        const uint64_t node = encodePc(pc);
        rf.nodes.insert(node);
        rf.edges.insert({frame.last, node});
        if (is_branch)
            rf.branchPcs.insert(pc);
        frame.last = node;
        return frame.func;
    };

    for (const Record &rec : records) {
        if (rec.isPseudo()) {
            ref.funcOf.push_back(ref.funcOf.empty() ? trace::kNoFunc
                                                    : ref.funcOf.back());
            continue;
        }
        ++ref.stats.transitionsObserved;

        switch (rec.kind) {
          case RecordKind::Call: {
            ref.funcOf.push_back(step(rec.tid, rec.pc, false));
            FuncId callee =
                symtab.functionAtEntry(static_cast<Pc>(rec.addr));
            if (callee == trace::kNoFunc) {
                callee = next_synthetic++;
                ref.syntheticNames[callee] = format(
                    "<anon:pc%llu>",
                    static_cast<unsigned long long>(rec.addr));
            }
            func_ref(callee);
            stack_of(rec.tid).push_back(RFrame{callee, kRefEntry});
            ++ref.stats.framesOpened;
            break;
          }

          case RecordKind::Ret: {
            auto &stack = stack_of(rec.tid);
            if (stack.empty()) {
                ref.funcOf.push_back(step(rec.tid, rec.pc, false));
                break;
            }
            RFrame &frame = stack.back();
            RefFunc &rf = func_ref(frame.func);
            const uint64_t node = encodePc(rec.pc);
            rf.nodes.insert(node);
            rf.edges.insert({frame.last, node});
            rf.edges.insert({node, kRefExit});
            ref.funcOf.push_back(frame.func);
            stack.pop_back();
            ++ref.stats.framesClosed;
            break;
          }

          default:
            ref.funcOf.push_back(
                step(rec.tid, rec.pc, rec.kind == RecordKind::Branch));
            break;
        }
    }

    // Close frames still open at trace end, then give every remaining
    // successor-less node an edge to the exit — the builders' close-out
    // and defensive fix-up, re-derived.
    for (const auto &stack : stacks) {
        ref.stats.framesOpenAtEnd += stack.size();
        for (const RFrame &frame : stack)
            ref.funcs.at(frame.func).edges.insert({frame.last, kRefExit});
    }
    for (auto &kv : ref.funcs) {
        RefFunc &rf = kv.second;
        std::set<uint64_t> has_succ;
        for (const auto &edge : rf.edges)
            has_succ.insert(edge.first);
        for (const uint64_t node : rf.nodes) {
            if (node != kRefExit && !has_succ.count(node))
                rf.edges.insert({node, kRefExit});
        }
    }
    return ref;
}

/** Encoded node for a Cfg node index. */
uint64_t
encodeNode(const Cfg &cfg, NodeId node)
{
    if (node == Cfg::kEntry)
        return kRefEntry;
    if (node == Cfg::kExit)
        return kRefExit;
    return encodePc(cfg.nodePc[node]);
}

/**
 * Structural well-formedness of one Cfg. Returns true when the basic
 * shape held up; analysis checks (postdoms, CDG) only run on sound CFGs.
 */
bool
checkStructure(const std::string &name, const Cfg &cfg, Findings &findings)
{
    const size_t n = cfg.nodeCount();
    if (n < 2 || cfg.succs.size() != n || cfg.preds.size() != n ||
        cfg.isBranch.size() != n) {
        findings.add(format("%s: inconsistent node arrays (nodePc %zu, "
                            "succs %zu, preds %zu, isBranch %zu)",
                            name.c_str(), n, cfg.succs.size(),
                            cfg.preds.size(), cfg.isBranch.size()));
        return false;
    }

    bool sound = true;
    const auto flag = [&](std::string message) {
        findings.add(std::move(message));
        sound = false;
    };

    if (cfg.nodePc[Cfg::kEntry] != trace::kNoPc ||
        cfg.nodePc[Cfg::kExit] != trace::kNoPc)
        flag(format("%s: virtual entry/exit carry a pc", name.c_str()));
    if (cfg.isBranch[Cfg::kEntry] || cfg.isBranch[Cfg::kExit])
        flag(format("%s: virtual entry/exit marked as branch",
                    name.c_str()));

    // pc <-> node must be a bijection over the non-virtual nodes.
    if (cfg.pcNode.size() != n - 2) {
        flag(format("%s: pcNode has %zu entries for %zu pc nodes",
                    name.c_str(), cfg.pcNode.size(), n - 2));
    }
    for (size_t node = 2; node < n; ++node) {
        const Pc pc = cfg.nodePc[node];
        if (pc == trace::kNoPc) {
            flag(format("%s: node %zu has no pc", name.c_str(), node));
            continue;
        }
        auto it = cfg.pcNode.find(pc);
        if (it == cfg.pcNode.end() ||
            it->second != static_cast<NodeId>(node)) {
            flag(format("%s: pcNode does not map pc%llu back to node %zu",
                        name.c_str(),
                        static_cast<unsigned long long>(pc), node));
        }
    }
    for (const auto &kv : cfg.pcNode) {
        if (kv.second < 2 || static_cast<size_t>(kv.second) >= n ||
            cfg.nodePc[kv.second] != kv.first) {
            flag(format("%s: pcNode entry pc%llu -> node %d is stale",
                        name.c_str(),
                        static_cast<unsigned long long>(kv.first),
                        kv.second));
        }
    }

    // Successor and predecessor lists must mirror each other exactly,
    // without duplicate edges.
    for (size_t a = 0; a < n; ++a) {
        for (const NodeId b : cfg.succs[a]) {
            if (b < 0 || static_cast<size_t>(b) >= n) {
                flag(format("%s: edge from node %zu to out-of-range "
                            "node %d", name.c_str(), a, b));
                continue;
            }
            const auto &out = cfg.succs[a];
            if (std::count(out.begin(), out.end(), b) != 1) {
                flag(format("%s: duplicate edge %s -> %s", name.c_str(),
                            describeNode(encodeNode(cfg,
                                static_cast<NodeId>(a))).c_str(),
                            describeNode(encodeNode(cfg, b)).c_str()));
            }
            const auto &in = cfg.preds[b];
            if (std::count(in.begin(), in.end(),
                           static_cast<NodeId>(a)) != 1) {
                flag(format("%s: edge %s -> %s missing from preds",
                            name.c_str(),
                            describeNode(encodeNode(cfg,
                                static_cast<NodeId>(a))).c_str(),
                            describeNode(encodeNode(cfg, b)).c_str()));
            }
        }
    }
    size_t succ_total = 0, pred_total = 0;
    for (size_t a = 0; a < n; ++a) {
        succ_total += cfg.succs[a].size();
        pred_total += cfg.preds[a].size();
    }
    if (succ_total != pred_total) {
        flag(format("%s: %zu successor entries vs %zu predecessor "
                    "entries", name.c_str(), succ_total, pred_total));
    }

    if (!cfg.preds[Cfg::kEntry].empty())
        flag(format("%s: virtual entry has predecessors", name.c_str()));
    if (!cfg.succs[Cfg::kExit].empty())
        flag(format("%s: virtual exit has successors", name.c_str()));
    for (size_t node = 0; node < n; ++node) {
        if (node != static_cast<size_t>(Cfg::kExit) &&
            cfg.succs[node].empty())
            flag(format("%s: node %s has no successors", name.c_str(),
                        describeNode(encodeNode(cfg,
                            static_cast<NodeId>(node))).c_str()));
        if (node != static_cast<size_t>(Cfg::kEntry) &&
            cfg.preds[node].empty())
            flag(format("%s: node %s has no predecessors", name.c_str(),
                        describeNode(encodeNode(cfg,
                            static_cast<NodeId>(node))).c_str()));
    }

    // Full reachability: entry reaches everything forward, exit reaches
    // everything backward.
    const auto reach = [n](const std::vector<std::vector<NodeId>> &adj,
                           NodeId root) {
        std::vector<uint8_t> seen(n, 0);
        std::vector<NodeId> work{root};
        seen[root] = 1;
        while (!work.empty()) {
            const NodeId cur = work.back();
            work.pop_back();
            for (const NodeId next : adj[cur]) {
                if (next >= 0 && static_cast<size_t>(next) < n &&
                    !seen[next]) {
                    seen[next] = 1;
                    work.push_back(next);
                }
            }
        }
        return seen;
    };
    const auto fwd = reach(cfg.succs, Cfg::kEntry);
    const auto bwd = reach(cfg.preds, Cfg::kExit);
    for (size_t node = 0; node < n; ++node) {
        if (!fwd[node])
            flag(format("%s: node %s unreachable from entry",
                        name.c_str(),
                        describeNode(encodeNode(cfg,
                            static_cast<NodeId>(node))).c_str()));
        if (!bwd[node])
            flag(format("%s: node %s cannot reach exit", name.c_str(),
                        describeNode(encodeNode(cfg,
                            static_cast<NodeId>(node))).c_str()));
    }
    return sound;
}

/**
 * Naive postdominator-set dataflow: pdom(exit) = {exit},
 * pdom(n) = {n} ∪ ⋂ pdom(succ), iterated to a fixpoint on bitsets.
 * Returns one bitset row (words per node) per node.
 */
std::vector<uint64_t>
naivePostdomSets(const Cfg &cfg)
{
    const size_t n = cfg.nodeCount();
    const size_t words = (n + 63) / 64;
    const uint64_t tail_mask =
        (n % 64) ? ((uint64_t{1} << (n % 64)) - 1) : ~uint64_t{0};

    std::vector<uint64_t> sets(n * words, ~uint64_t{0});
    for (size_t node = 0; node < n; ++node)
        sets[node * words + words - 1] &= tail_mask;
    uint64_t *exit_row = sets.data() +
                         static_cast<size_t>(Cfg::kExit) * words;
    std::fill(exit_row, exit_row + words, 0);
    exit_row[static_cast<size_t>(Cfg::kExit) / 64] |=
        uint64_t{1} << (static_cast<size_t>(Cfg::kExit) % 64);

    std::vector<uint64_t> tmp(words);
    bool changed = true;
    while (changed) {
        changed = false;
        for (size_t node = 0; node < n; ++node) {
            if (node == static_cast<size_t>(Cfg::kExit) ||
                cfg.succs[node].empty())
                continue;
            std::fill(tmp.begin(), tmp.end(), ~uint64_t{0});
            tmp[words - 1] &= tail_mask;
            for (const NodeId succ : cfg.succs[node]) {
                const uint64_t *row =
                    sets.data() + static_cast<size_t>(succ) * words;
                for (size_t w = 0; w < words; ++w)
                    tmp[w] &= row[w];
            }
            tmp[node / 64] |= uint64_t{1} << (node % 64);
            uint64_t *row = sets.data() + node * words;
            if (!std::equal(tmp.begin(), tmp.end(), row)) {
                std::copy(tmp.begin(), tmp.end(), row);
                changed = true;
            }
        }
    }
    return sets;
}

/** Immediate postdominators derived from the naive sets. */
std::vector<NodeId>
ipdomFromSets(const Cfg &cfg, const std::vector<uint64_t> &sets,
              const std::string &name, Findings &findings)
{
    const size_t n = cfg.nodeCount();
    const size_t words = (n + 63) / 64;
    const auto popcount = [&](size_t node) {
        uint64_t bits = 0;
        for (size_t w = 0; w < words; ++w)
            bits += static_cast<uint64_t>(
                __builtin_popcountll(sets[node * words + w]));
        return bits;
    };
    const auto contains = [&](size_t node, size_t member) {
        return (sets[node * words + member / 64] >>
                (member % 64)) & 1;
    };

    std::vector<NodeId> ipdom(n, kNoNode);
    ipdom[Cfg::kExit] = Cfg::kExit;
    for (size_t node = 0; node < n; ++node) {
        if (node == static_cast<size_t>(Cfg::kExit))
            continue;
        const uint64_t size = popcount(node);
        bool found = false;
        for (size_t cand = 0; cand < n && !found; ++cand) {
            if (cand == node || !contains(node, cand))
                continue;
            if (popcount(cand) == size - 1) {
                ipdom[node] = static_cast<NodeId>(cand);
                found = true;
            }
        }
        if (!found) {
            findings.add(format(
                "%s: no immediate postdominator derivable for node %s",
                name.c_str(),
                describeNode(encodeNode(cfg,
                    static_cast<NodeId>(node))).c_str()));
        }
    }
    return ipdom;
}

/**
 * The Ferrante-Ottenstein-Warren dependence walk, over the *reference*
 * postdominator tree (same traversal shape as control_deps.cc's
 * collectDeps, but fed by the independent ipdom computation).
 */
std::set<std::pair<Pc, Pc>>
referenceDeps(const Cfg &cfg, const std::vector<NodeId> &ipdom_ref)
{
    std::set<std::pair<Pc, Pc>> expected;
    for (size_t a = 0; a < cfg.nodeCount(); ++a) {
        if (!cfg.isBranch[a] || cfg.succs[a].size() < 2)
            continue;
        const Pc branch_pc = cfg.nodePc[a];
        for (const NodeId succ : cfg.succs[a]) {
            NodeId t = succ;
            size_t guard = 0;
            while (t != kNoNode &&
                   t != ipdom_ref[static_cast<size_t>(a)] &&
                   t != Cfg::kExit) {
                if (cfg.nodePc[t] != trace::kNoPc)
                    expected.insert({cfg.nodePc[t], branch_pc});
                t = ipdom_ref[t];
                if (++guard > cfg.nodeCount())
                    return expected; // malformed tree; already flagged
            }
        }
    }
    return expected;
}

} // namespace

GraphLintResult
lintGraphs(std::span<const Record> records,
           const trace::SymbolTable &symtab, const CfgSet &cfgs,
           const graph::ControlDepMap *deps,
           const GraphLintOptions &options)
{
    GraphLintResult result;
    result.findings.cap = options.maxFindings;
    Findings &findings = result.findings;

    const Reference ref = replayReference(records, symtab);
    result.transitionsReplayed = ref.stats.transitionsObserved;

    // ---- coverage: builder output vs the reference replay ---------------
    for (const auto &kv : ref.funcs) {
        if (!cfgs.byFunc.count(kv.first)) {
            findings.add(format("missing cfg for function %u (%zu "
                                "reference nodes)", kv.first,
                                kv.second.nodes.size()));
        }
    }
    for (const auto &kv : cfgs.byFunc) {
        const FuncId func = kv.first;
        const Cfg &cfg = kv.second;
        const std::string name =
            format("cfg[%s]", cfgs.functionName(func, symtab).c_str());
        ++result.cfgsChecked;
        result.nodesChecked += cfg.nodeCount();

        if (cfg.func != func) {
            findings.add(format("%s: stored func id %u under key %u",
                                name.c_str(), cfg.func, func));
        }

        const bool sound = checkStructure(name, cfg, findings);

        auto ref_it = ref.funcs.find(func);
        if (ref_it == ref.funcs.end()) {
            findings.add(format("%s: not justified by any trace record",
                                name.c_str()));
            continue;
        }
        const RefFunc &rf = ref_it->second;

        // Node and edge sets, decoded to pcs so node numbering cannot
        // mask a diff.
        std::set<uint64_t> actual_nodes;
        std::set<std::pair<uint64_t, uint64_t>> actual_edges;
        std::set<Pc> actual_branches;
        for (size_t node = 0; node < cfg.nodeCount(); ++node) {
            actual_nodes.insert(
                encodeNode(cfg, static_cast<NodeId>(node)));
            if (cfg.isBranch[node] && node >= 2)
                actual_branches.insert(cfg.nodePc[node]);
            for (const NodeId succ : cfg.succs[node]) {
                if (succ >= 0 &&
                    static_cast<size_t>(succ) < cfg.nodeCount()) {
                    actual_edges.insert(
                        {encodeNode(cfg, static_cast<NodeId>(node)),
                         encodeNode(cfg, succ)});
                }
            }
        }
        result.edgesChecked += actual_edges.size();

        for (const uint64_t node : rf.nodes) {
            if (!actual_nodes.count(node))
                findings.add(format("%s: node %s observed in trace but "
                                    "absent", name.c_str(),
                                    describeNode(node).c_str()));
        }
        for (const uint64_t node : actual_nodes) {
            if (!rf.nodes.count(node))
                findings.add(format("%s: node %s not observed in trace",
                                    name.c_str(),
                                    describeNode(node).c_str()));
        }
        for (const auto &edge : rf.edges) {
            if (!actual_edges.count(edge))
                findings.add(format("%s: dynamic transition %s -> %s not "
                                    "covered by an edge", name.c_str(),
                                    describeNode(edge.first).c_str(),
                                    describeNode(edge.second).c_str()));
        }
        for (const auto &edge : actual_edges) {
            if (!rf.edges.count(edge))
                findings.add(format("%s: edge %s -> %s not observed in "
                                    "trace", name.c_str(),
                                    describeNode(edge.first).c_str(),
                                    describeNode(edge.second).c_str()));
        }
        for (const Pc pc : rf.branchPcs) {
            if (!actual_branches.count(pc))
                findings.add(format("%s: pc%llu executed a Branch but is "
                                    "not marked", name.c_str(),
                                    static_cast<unsigned long long>(pc)));
        }
        for (const Pc pc : actual_branches) {
            if (!rf.branchPcs.count(pc))
                findings.add(format("%s: pc%llu marked as branch but "
                                    "never branched", name.c_str(),
                                    static_cast<unsigned long long>(pc)));
        }

        // ---- postdominator + control-dependence reference ----------------
        if (!sound)
            continue;
        if (cfg.nodeCount() > options.postdomNodeLimit) {
            ++result.postdomSkippedCfgs;
            continue;
        }

        const std::vector<uint64_t> sets = naivePostdomSets(cfg);
        const std::vector<NodeId> ipdom_ref =
            ipdomFromSets(cfg, sets, name, findings);
        const std::vector<NodeId> ipdom = graph::computePostdoms(cfg);
        result.postdomNodesDiffed += cfg.nodeCount();
        if (ipdom.size() != cfg.nodeCount()) {
            findings.add(format("%s: computePostdoms returned %zu "
                                "entries for %zu nodes", name.c_str(),
                                ipdom.size(), cfg.nodeCount()));
            continue;
        }
        for (size_t node = 0; node < cfg.nodeCount(); ++node) {
            if (ipdom[node] != ipdom_ref[node]) {
                findings.add(format(
                    "%s: ipdom(%s) is %s but the dataflow reference "
                    "says %s", name.c_str(),
                    describeNode(encodeNode(cfg,
                        static_cast<NodeId>(node))).c_str(),
                    ipdom[node] == kNoNode
                        ? "<none>"
                        : describeNode(encodeNode(cfg,
                              ipdom[node])).c_str(),
                    ipdom_ref[node] == kNoNode
                        ? "<none>"
                        : describeNode(encodeNode(cfg,
                              ipdom_ref[node])).c_str()));
            }
        }

        if (deps) {
            const std::set<std::pair<Pc, Pc>> expected =
                referenceDeps(cfg, ipdom_ref);
            std::set<std::pair<Pc, Pc>> actual;
            for (size_t node = 2; node < cfg.nodeCount(); ++node) {
                for (const Pc branch :
                     deps->depsOf(func, cfg.nodePc[node]))
                    actual.insert({cfg.nodePc[node], branch});
            }
            result.depPairsChecked += actual.size();
            for (const auto &pair : expected) {
                if (!actual.count(pair))
                    findings.add(format(
                        "%s: missing control dependence pc%llu on "
                        "branch pc%llu", name.c_str(),
                        static_cast<unsigned long long>(pair.first),
                        static_cast<unsigned long long>(pair.second)));
            }
            for (const auto &pair : actual) {
                if (!expected.count(pair))
                    findings.add(format(
                        "%s: control dependence pc%llu on branch "
                        "pc%llu not justified by postdominance",
                        name.c_str(),
                        static_cast<unsigned long long>(pair.first),
                        static_cast<unsigned long long>(pair.second)));
            }
        }
    }

    // ---- dependence pairs must reference known nodes ---------------------
    if (deps) {
        for (const auto &[func, pc, branch] : deps->allPairs()) {
            auto it = cfgs.byFunc.find(func);
            if (it == cfgs.byFunc.end()) {
                findings.add(format("control dependence references "
                                    "unknown function %u", func));
                continue;
            }
            const Cfg &cfg = it->second;
            if (cfg.findNode(pc) == kNoNode) {
                findings.add(format(
                    "control dependence in %s references unknown "
                    "pc%llu",
                    cfgs.functionName(func, symtab).c_str(),
                    static_cast<unsigned long long>(pc)));
            }
            const NodeId branch_node = cfg.findNode(branch);
            if (branch_node == kNoNode ||
                branch_node >= static_cast<NodeId>(
                    cfg.isBranch.size()) ||
                !cfg.isBranch[branch_node]) {
                findings.add(format(
                    "control dependence in %s names pc%llu as a "
                    "branch, but it is not one",
                    cfgs.functionName(func, symtab).c_str(),
                    static_cast<unsigned long long>(branch)));
            }
        }
    }

    // ---- attribution, synthetic names, and feed totals -------------------
    if (cfgs.funcOf.size() != records.size()) {
        findings.add(format("funcOf has %zu entries for %zu records",
                            cfgs.funcOf.size(), records.size()));
    } else {
        for (size_t idx = 0; idx < records.size(); ++idx) {
            if (cfgs.funcOf[idx] != ref.funcOf[idx]) {
                findings.add(format(
                    "record %zu attributed to function %u, but the "
                    "replay says %u", idx, cfgs.funcOf[idx],
                    ref.funcOf[idx]));
            }
        }
    }

    for (const auto &kv : ref.syntheticNames) {
        auto it = cfgs.syntheticNames.find(kv.first);
        if (it == cfgs.syntheticNames.end()) {
            findings.add(format("missing synthetic function %u (%s)",
                                kv.first, kv.second.c_str()));
        } else if (it->second != kv.second) {
            findings.add(format("synthetic function %u named '%s', "
                                "expected '%s'", kv.first,
                                it->second.c_str(), kv.second.c_str()));
        }
    }
    for (const auto &kv : cfgs.syntheticNames) {
        if (!ref.syntheticNames.count(kv.first))
            findings.add(format("unexpected synthetic function %u (%s)",
                                kv.first, kv.second.c_str()));
    }

    const CfgSet::Stats &st = cfgs.stats;
    const CfgSet::Stats &rs = ref.stats;
    if (st.transitionsObserved != rs.transitionsObserved ||
        st.framesOpened != rs.framesOpened ||
        st.framesClosed != rs.framesClosed ||
        st.framesOpenAtEnd != rs.framesOpenAtEnd) {
        findings.add(format(
            "builder stats diverge from replay: transitions %llu/%llu, "
            "frames opened %llu/%llu, closed %llu/%llu, open at end "
            "%llu/%llu",
            static_cast<unsigned long long>(st.transitionsObserved),
            static_cast<unsigned long long>(rs.transitionsObserved),
            static_cast<unsigned long long>(st.framesOpened),
            static_cast<unsigned long long>(rs.framesOpened),
            static_cast<unsigned long long>(st.framesClosed),
            static_cast<unsigned long long>(rs.framesClosed),
            static_cast<unsigned long long>(st.framesOpenAtEnd),
            static_cast<unsigned long long>(rs.framesOpenAtEnd)));
    }
    if (st.framesOpened != st.framesClosed + st.framesOpenAtEnd) {
        findings.add(format(
            "call/return frames unbalanced: %llu opened, %llu closed, "
            "%llu open at end",
            static_cast<unsigned long long>(st.framesOpened),
            static_cast<unsigned long long>(st.framesClosed),
            static_cast<unsigned long long>(st.framesOpenAtEnd)));
    }

    return result;
}

} // namespace check
} // namespace webslice
