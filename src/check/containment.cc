#include "check/containment.hh"

#include <algorithm>
#include <sstream>

#include "support/metrics.hh"
#include "support/stopwatch.hh"
#include "support/strings.hh"

namespace webslice {
namespace check {

using trace::Record;
using trace::RecordKind;
using trace::RegId;

namespace {

const char *
kindName(RecordKind kind)
{
    switch (kind) {
    case RecordKind::Alu:
        return "alu";
    case RecordKind::LoadImm:
        return "loadimm";
    case RecordKind::Load:
        return "load";
    case RecordKind::Store:
        return "store";
    case RecordKind::Branch:
        return "branch";
    case RecordKind::Jump:
        return "jump";
    case RecordKind::Call:
        return "call";
    case RecordKind::Ret:
        return "ret";
    case RecordKind::Syscall:
        return "syscall";
    case RecordKind::SyscallRead:
        return "syscall-read";
    case RecordKind::SyscallWrite:
        return "syscall-write";
    case RecordKind::Marker:
        return "marker";
    }
    return "?";
}

/** Does this record read register `reg` when it joins the slice? */
bool
usesReg(const Record &rec, RegId reg)
{
    switch (rec.kind) {
    case RecordKind::Alu:
    case RecordKind::LoadImm:
        return rec.rr0 == reg || rec.rr1 == reg || rec.rr2 == reg;
    case RecordKind::Load:
    case RecordKind::Branch:
    case RecordKind::Call:
        return rec.rr0 == reg;
    case RecordKind::Store:
        return rec.rr0 == reg || rec.rr1 == reg;
    default:
        return false;
    }
}

/** Register this record overwrites, if any. */
RegId
defReg(const Record &rec)
{
    switch (rec.kind) {
    case RecordKind::Alu:
    case RecordKind::LoadImm:
    case RecordKind::Load:
    case RecordKind::Syscall:
        return rec.rw;
    default:
        return trace::kNoReg;
    }
}

bool
overlaps(uint64_t a, uint64_t a_size, uint64_t b, uint64_t b_size)
{
    return a < b + b_size && b < a + a_size;
}

struct Hop
{
    size_t index = 0;
    const char *via = ""; ///< "reg" or "mem".
};

/**
 * Find the next dynamic consumer of record `i`'s product: the first
 * later in-slice record on the chain (same-thread register reader
 * before any redefinition, or any-thread overlapping memory reader).
 */
bool
nextConsumer(std::span<const Record> records, size_t window_end,
             const std::vector<uint8_t> &in_slice, size_t i, size_t limit,
             Hop &hop)
{
    const Record &rec = records[i];
    const RegId product = defReg(rec);
    const bool writes_mem = rec.kind == RecordKind::Store;
    if (product == trace::kNoReg && !writes_mem)
        return false;

    const size_t end = std::min(window_end, i + 1 + limit);
    bool reg_alive = product != trace::kNoReg;
    for (size_t j = i + 1; j < end; ++j) {
        const Record &next = records[j];
        if (next.isPseudo()) {
            // A syscall read of stored bytes consumes through the
            // owning Syscall record, which immediately precedes its
            // pseudo group.
            if (writes_mem && next.kind == RecordKind::SyscallRead &&
                overlaps(rec.addr, rec.aux, next.addr, next.aux)) {
                for (size_t k = j; k-- > i;) {
                    if (records[k].kind == RecordKind::Syscall &&
                        records[k].tid == next.tid && in_slice[k]) {
                        hop = {k, "mem"};
                        return true;
                    }
                }
            }
            continue;
        }
        if (reg_alive && next.tid == rec.tid) {
            if (usesReg(next, product) && in_slice[j]) {
                hop = {j, "reg"};
                return true;
            }
            if (defReg(next) == product)
                reg_alive = false;
        }
        if (writes_mem && next.kind == RecordKind::Load && in_slice[j] &&
            overlaps(rec.addr, rec.aux, next.addr, next.aux)) {
            hop = {j, "mem"};
            return true;
        }
        if (!reg_alive && !writes_mem)
            break;
    }
    return false;
}

} // namespace

ContainmentResult
checkContainment(std::span<const Record> records, const graph::CfgSet &cfgs,
                 const trace::SymbolTable &symtab,
                 const slicer::SliceResult &dynamic_slice,
                 const staticdep::StaticSliceResult &static_slice,
                 const ContainmentOptions &options)
{
    ScopedPhase phase("check-containment");
    ContainmentResult result;
    result.findings.cap = options.maxFindings;

    const size_t window =
        std::min(static_cast<size_t>(dynamic_slice.analyzedWindowEnd),
                 records.size());

    for (size_t i = 0; i < window; ++i) {
        const Record &rec = records[i];
        if (rec.isPseudo())
            continue;
        ++result.instructionsChecked;
        if (!dynamic_slice.inSlice[i])
            continue;
        ++result.inSliceChecked;

        const trace::FuncId func = cfgs.funcOf[i];
        if (static_slice.contains(func, rec.pc))
            continue;
        ++result.violations;

        if (result.findings.messages.size() >= options.maxFindings) {
            result.findings.add(""); // count it, message dropped by cap
            continue;
        }

        // Reconstruct the dynamic dependence chain the static analysis
        // failed to cover: follow the record's product forward until a
        // record whose site is statically included (or the chain dries
        // up).
        std::ostringstream chain;
        chain << "pc" << rec.pc << "(" << kindName(rec.kind) << ")@"
              << cfgs.functionName(func, symtab);
        size_t at = i;
        bool reached_static = false;
        for (size_t hops = 0; hops < options.chainMaxHops; ++hops) {
            Hop hop;
            if (!nextConsumer(records, window, dynamic_slice.inSlice, at,
                              options.chainScanLimit, hop))
                break;
            const Record &next = records[hop.index];
            const trace::FuncId next_func = cfgs.funcOf[hop.index];
            chain << " -" << hop.via << "-> pc" << next.pc << "("
                  << kindName(next.kind) << ")@"
                  << cfgs.functionName(next_func, symtab);
            if (static_slice.contains(next_func, next.pc)) {
                reached_static = true;
                break;
            }
            at = hop.index;
        }
        chain << (reached_static ? " [in static slice]"
                                 : " [chain exhausted]");

        result.findings.add(format(
            "containment: dynamic-slice record %zu pc=%u (%s) in %s "
            "missing from static slice; edge chain: %s",
            i, rec.pc, kindName(rec.kind),
            cfgs.functionName(func, symtab).c_str(),
            chain.str().c_str()));
    }

    MetricRegistry::global()
        .counter("check.containment_instructions")
        .add(result.instructionsChecked);
    MetricRegistry::global()
        .counter("check.containment_violations")
        .add(result.violations);
    return result;
}

} // namespace check
} // namespace webslice
