/**
 * @file
 * The containment invariant: dynamic slice ⊆ static slice.
 *
 * The static slice (staticdep/slice.hh) is a sound over-approximation of
 * the dynamic one computed from the same trace window, so every executed
 * instruction the dynamic slicer marked necessary must map to a site
 * inside the static slice. A violation means one of the analyses is
 * wrong — the static side dropped a dependence edge, or the dynamic side
 * included an instruction through a path the static model does not
 * capture — which makes this a soundness oracle for both.
 *
 * For each reported violation the checker reconstructs a short dynamic
 * edge chain forward from the offending record (who consumed the value
 * it produced, and so on until a record whose site *is* in the static
 * slice), so the report names not just the pc but the dependence path
 * the static analysis failed to cover.
 */

#ifndef WEBSLICE_CHECK_CONTAINMENT_HH
#define WEBSLICE_CHECK_CONTAINMENT_HH

#include <cstdint>
#include <span>

#include "check/findings.hh"
#include "graph/cfg.hh"
#include "slicer/slicer.hh"
#include "staticdep/slice.hh"
#include "trace/record.hh"
#include "trace/symtab.hh"

namespace webslice {
namespace check {

struct ContainmentOptions
{
    /** Keep at most this many violation messages. */
    size_t maxFindings = 8;

    /** Forward-scan bound per chain hop when reconstructing the
     *  dynamic edge chain of a violation. */
    size_t chainScanLimit = size_t{1} << 20;

    /** Maximum hops reported per chain. */
    size_t chainMaxHops = 8;
};

struct ContainmentResult
{
    Findings findings;

    /** Executed (non-pseudo) records inside the window. */
    uint64_t instructionsChecked = 0;

    /** Dynamic-slice members among them. */
    uint64_t inSliceChecked = 0;

    /** Dynamic-slice members missing from the static slice. */
    uint64_t violations = 0;

    bool ok() const { return findings.ok(); }
};

/**
 * Assert the containment invariant over one analyzed window.
 *
 * @param records       the trace both slices were computed from
 * @param cfgs          forward-pass attribution (funcOf per record)
 * @param symtab        names for the report
 * @param dynamic_slice the dynamic slicer's verdicts
 * @param static_slice  the static walk's site set (same criteria mode
 *                      and ablation knobs as the dynamic run)
 */
ContainmentResult
checkContainment(std::span<const trace::Record> records,
                 const graph::CfgSet &cfgs,
                 const trace::SymbolTable &symtab,
                 const slicer::SliceResult &dynamic_slice,
                 const staticdep::StaticSliceResult &static_slice,
                 const ContainmentOptions &options = {});

} // namespace check
} // namespace webslice

#endif // WEBSLICE_CHECK_CONTAINMENT_HH
