/**
 * @file
 * Graph-invariant linter over the forward-pass artifacts.
 *
 * Three layers of checks, each independent of the code it audits:
 *
 *  1. Structural well-formedness of every Cfg: exactly one virtual
 *     entry/exit, consistent node arrays, a pc<->node bijection,
 *     mirrored succ/pred edge lists, and full reachability (entry
 *     reaches every node, every node reaches exit).
 *  2. Dynamic coverage: an independent re-derivation of the CFGs from
 *     the raw record stream (a deliberately naive reimplementation of
 *     the Call/Ret frame-matching semantics) diffed edge-by-edge
 *     against the builder's output, including per-record attribution,
 *     synthetic names, and the builders' frame/transition totals.
 *  3. Analysis consistency: postdominators recomputed with a naive
 *     O(n^2) bitset dataflow reference and diffed against postdom.cc's
 *     Cooper-Harvey-Kennedy result, and the ControlDepMap diffed in
 *     both directions against a Ferrante-Ottenstein-Warren walk over
 *     the reference postdominator tree.
 */

#ifndef WEBSLICE_CHECK_GRAPH_LINT_HH
#define WEBSLICE_CHECK_GRAPH_LINT_HH

#include <cstdint>
#include <span>

#include "check/findings.hh"
#include "graph/cfg.hh"
#include "graph/control_deps.hh"
#include "trace/record.hh"
#include "trace/symtab.hh"

namespace webslice {
namespace check {

struct GraphLintOptions
{
    /** Keep at most this many finding messages. */
    size_t maxFindings = 24;

    /**
     * CFGs with more nodes than this skip the O(n^2) postdominator
     * reference and the CDG diff (their pairs still get the cheap
     * membership checks). The browser workloads top out far below this.
     */
    size_t postdomNodeLimit = 4096;
};

struct GraphLintResult
{
    Findings findings;

    uint64_t cfgsChecked = 0;
    uint64_t nodesChecked = 0;
    uint64_t edgesChecked = 0;
    uint64_t transitionsReplayed = 0;
    uint64_t postdomNodesDiffed = 0;
    uint64_t depPairsChecked = 0;
    uint64_t postdomSkippedCfgs = 0;

    bool ok() const { return findings.ok(); }
};

/**
 * Lint the forward-pass artifacts against the raw trace.
 *
 * @param records  the dynamic trace the CfgSet was built from
 * @param symtab   the symbol table used during construction
 * @param cfgs     the builder output under audit
 * @param deps     the control-dependence map under audit; nullptr skips
 *                 the CDG checks
 */
GraphLintResult lintGraphs(std::span<const trace::Record> records,
                           const trace::SymbolTable &symtab,
                           const graph::CfgSet &cfgs,
                           const graph::ControlDepMap *deps,
                           const GraphLintOptions &options = {});

} // namespace check
} // namespace webslice

#endif // WEBSLICE_CHECK_GRAPH_LINT_HH
