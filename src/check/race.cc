#include "check/race.hh"

#include <algorithm>
#include <set>
#include <unordered_map>
#include <vector>

#include "support/strings.hh"

namespace webslice {
namespace check {

using trace::Record;
using trace::RecordKind;
using trace::ThreadId;

namespace {

// Linux AMD64 syscall numbers; the detector keys synchronization off the
// raw trace, independent of the simulator's headers.
constexpr uint32_t kFutexNr = 202;
constexpr uint32_t kSendtoNr = 44;
constexpr uint32_t kRecvfromNr = 45;
constexpr uint32_t kSendmsgNr = 46;
constexpr uint32_t kRecvmsgNr = 47;

using VectorClock = std::vector<uint64_t>;

void
joinInto(VectorClock &dst, const VectorClock &src)
{
    if (src.size() > dst.size())
        dst.resize(src.size(), 0);
    for (size_t i = 0; i < src.size(); ++i)
        dst[i] = std::max(dst[i], src[i]);
}

/** One recorded access epoch: (tid, clock) plus provenance for reports. */
struct Epoch
{
    ThreadId tid = 0;
    uint64_t clk = 0;
    size_t idx = 0;
    trace::Pc pc = trace::kNoPc;
    bool valid = false;
};

/** Shadow state of one 8-byte granule. */
struct Granule
{
    Epoch lastWrite;
    std::vector<Epoch> lastReads; ///< At most one entry per thread.
};

class Detector
{
  public:
    Detector(std::span<const Record> records, const RaceOptions &options,
             RaceResult &result)
        : records_(records), options_(options), result_(result)
    {
        result_.findings.cap = options.maxFindings;
    }

    void
    run()
    {
        const size_t end =
            std::min<size_t>(options_.windowEnd, records_.size());
        for (size_t idx = 0; idx < end; ++idx)
            step(idx, records_[idx]);
        result_.granulesTracked = shadow_.size();
        result_.racyPcPairs = racyPairs_.size();
    }

  private:
    VectorClock &
    clockOf(ThreadId tid)
    {
        if (tid >= clocks_.size())
            clocks_.resize(tid + 1);
        VectorClock &vc = clocks_[tid];
        if (vc.size() <= tid)
            vc.resize(tid + 1, 0);
        if (vc[tid] == 0)
            vc[tid] = 1; // thread birth
        return vc;
    }

    void
    tick(ThreadId tid)
    {
        ++clockOf(tid)[tid];
    }

    /** True iff epoch (e.tid, e.clk) happened before tid's present. */
    bool
    ordered(const VectorClock &vc, const Epoch &e) const
    {
        return e.tid < vc.size() && vc[e.tid] >= e.clk;
    }

    void
    report(const char *what, uint64_t granule, const Epoch &prev,
           size_t idx, const Record &rec, uint64_t &counter)
    {
        ++counter;
        const auto pair = std::make_pair(prev.pc, rec.pc);
        if (!racyPairs_.insert(pair).second)
            return; // keep one sample per static pair
        if (result_.samples.size() < options_.maxFindings) {
            result_.samples.push_back(format(
                "%s race on bytes [0x%llx, +8): record %zu (pc%llu, "
                "tid %u) vs record %zu (pc%llu, tid %u), unordered by "
                "any futex or channel",
                what,
                static_cast<unsigned long long>(granule << 3), prev.idx,
                static_cast<unsigned long long>(prev.pc), prev.tid, idx,
                static_cast<unsigned long long>(rec.pc), rec.tid));
        }
    }

    void
    access(size_t idx, const Record &rec, uint64_t addr, uint64_t size,
           bool is_write)
    {
        if (size == 0)
            return;
        ++result_.accessesChecked;
        VectorClock &vc = clockOf(rec.tid);
        const Epoch self{rec.tid, vc[rec.tid], idx, rec.pc, true};
        const uint64_t first = addr >> 3;
        const uint64_t last = (addr + size - 1) >> 3;
        for (uint64_t g = first; g <= last; ++g) {
            Granule &gran = shadow_[g];
            const Epoch &w = gran.lastWrite;
            if (w.valid && w.tid != rec.tid && !ordered(vc, w)) {
                report(is_write ? "write/write" : "read/write", g, w,
                       idx, rec,
                       is_write ? result_.writeWriteRaces
                                : result_.readWriteRaces);
            }
            if (is_write) {
                for (const Epoch &r : gran.lastReads) {
                    if (r.tid != rec.tid && !ordered(vc, r))
                        report("read/write", g, r, idx, rec,
                               result_.readWriteRaces);
                }
                gran.lastWrite = self;
                gran.lastReads.clear();
            } else {
                bool replaced = false;
                for (Epoch &r : gran.lastReads) {
                    if (r.tid == rec.tid) {
                        r = self;
                        replaced = true;
                        break;
                    }
                }
                if (!replaced)
                    gran.lastReads.push_back(self);
            }
        }
    }

    /** Lock-style synchronization object keyed by address or channel. */
    void
    acquireRelease(ThreadId tid, VectorClock &sync)
    {
        VectorClock &vc = clockOf(tid);
        joinInto(vc, sync);
        sync = vc;
        ++vc[tid];
        ++result_.acquires;
        ++result_.releases;
    }

    void
    step(size_t idx, const Record &rec)
    {
        switch (rec.kind) {
          case RecordKind::Load:
            access(idx, rec, rec.addr, rec.aux, false);
            break;

          case RecordKind::Store:
            access(idx, rec, rec.addr, rec.aux, true);
            break;

          case RecordKind::Call:
          case RecordKind::Ret:
            tick(rec.tid);
            break;

          case RecordKind::Syscall:
            if (rec.tid >= pendingFutex_.size())
                pendingFutex_.resize(rec.tid + 1, 0);
            pendingFutex_[rec.tid] = (rec.aux == kFutexNr);
            switch (rec.aux) {
              case kSendtoNr:
              case kSendmsgNr: {
                // Release onto the channel shared with the matching
                // receive syscall (numbers pair as send = recv & ~1).
                VectorClock &vc = clockOf(rec.tid);
                joinInto(channels_[rec.aux], vc);
                ++vc[rec.tid];
                ++result_.releases;
                break;
              }
              case kRecvfromNr:
              case kRecvmsgNr: {
                VectorClock &vc = clockOf(rec.tid);
                joinInto(vc, channels_[rec.aux & ~1u]);
                ++vc[rec.tid];
                ++result_.acquires;
                break;
              }
              default:
                break;
            }
            break;

          case RecordKind::SyscallRead:
            if (rec.tid < pendingFutex_.size() &&
                pendingFutex_[rec.tid]) {
                // The futex word's address identifies the lock; wait
                // and wake both pass through it, so lock semantics
                // (join, publish, tick) order the two sides.
                acquireRelease(rec.tid, futexes_[rec.addr]);
                pendingFutex_[rec.tid] = 0;
            }
            access(idx, rec, rec.addr, rec.aux, false);
            break;

          case RecordKind::SyscallWrite:
            access(idx, rec, rec.addr, rec.aux, true);
            break;

          default:
            break;
        }

        // Pseudo-records must trail a syscall of the same thread.
        if (rec.tid >= inEffectRun_.size())
            inEffectRun_.resize(rec.tid + 1, 0);
        if (rec.isPseudo()) {
            if (!inEffectRun_[rec.tid]) {
                result_.findings.add(format(
                    "record %zu: %s pseudo-record with no preceding "
                    "syscall on tid %u",
                    idx,
                    rec.kind == RecordKind::SyscallRead ? "SyscallRead"
                                                        : "SyscallWrite",
                    rec.tid));
            }
        } else {
            inEffectRun_[rec.tid] = rec.kind == RecordKind::Syscall;
        }
    }

    std::span<const Record> records_;
    const RaceOptions &options_;
    RaceResult &result_;

    std::vector<VectorClock> clocks_;             ///< [tid]
    std::unordered_map<uint64_t, Granule> shadow_; ///< granule -> state
    std::unordered_map<uint64_t, VectorClock> futexes_;
    std::unordered_map<uint32_t, VectorClock> channels_;
    std::vector<uint8_t> pendingFutex_; ///< [tid]
    std::vector<uint8_t> inEffectRun_;  ///< [tid] syscall/pseudo run
    std::set<std::pair<trace::Pc, trace::Pc>> racyPairs_;
};

} // namespace

RaceResult
detectRaces(std::span<const Record> records, const RaceOptions &options)
{
    RaceResult result;
    Detector detector(records, options, result);
    detector.run();
    return result;
}

} // namespace check
} // namespace webslice
