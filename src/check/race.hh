/**
 * @file
 * Trace race detector: vector-clock happens-before over the record
 * streams.
 *
 * The paper serializes thread execution when replaying slices, implicitly
 * assuming the recorded interleaving is the only ordering evidence
 * available. This pass quantifies that assumption: it runs a
 * FastTrack-style happens-before analysis over the per-thread streams,
 * using the trace's only visible synchronization — futex system calls
 * (lock semantics on the futex word's address) and socket send/receive
 * pairs (release/acquire on a per-direction channel) — plus a per-thread
 * logical tick at every Call and Ret.
 *
 * Conflicting accesses not ordered by that relation are reported at
 * 8-byte granule granularity. Races here are *evidence*, not necessarily
 * bugs: the simulated browser's mutexes intentionally spin on plain
 * loads/stores and only fall back to futex occasionally, so unordered
 * conflicts are expected — which is exactly why downstream consumers must
 * treat the trace as one serialized interleaving rather than reordering
 * it, supporting the paper's single-core replay assumption.
 */

#ifndef WEBSLICE_CHECK_RACE_HH
#define WEBSLICE_CHECK_RACE_HH

#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "check/findings.hh"
#include "trace/record.hh"

namespace webslice {
namespace check {

struct RaceOptions
{
    /** Keep at most this many race samples and malformed-trace findings. */
    size_t maxFindings = 16;

    /** Analyze records [0, windowEnd) only. */
    size_t windowEnd = std::numeric_limits<size_t>::max();
};

struct RaceResult
{
    /** Malformed-trace problems only (orphan pseudo-records and the
     *  like); data races are reported through the fields below. */
    Findings findings;

    /** Representative race reports, one per distinct (pc, pc) pair. */
    std::vector<std::string> samples;

    uint64_t accessesChecked = 0;
    uint64_t granulesTracked = 0;
    uint64_t acquires = 0;
    uint64_t releases = 0;
    uint64_t writeWriteRaces = 0;
    uint64_t readWriteRaces = 0;

    /** Distinct unordered (writer pc, accessor pc) pairs. */
    uint64_t racyPcPairs = 0;

    bool anyRaces() const
    {
        return writeWriteRaces + readWriteRaces > 0;
    }

    bool ok() const { return findings.ok(); }
};

/** Run the happens-before analysis over the trace. */
RaceResult detectRaces(std::span<const trace::Record> records,
                       const RaceOptions &options = {});

} // namespace check
} // namespace webslice

#endif // WEBSLICE_CHECK_RACE_HH
