/**
 * @file
 * Slice soundness checker: forward provenance replay.
 *
 * A backward slice is sound when re-executing only the in-slice
 * instructions reproduces every criterion value bit-identically. Rather
 * than literally re-executing (suppressed instructions would desynchronize
 * the machine), the checker replays the trace forward tracking, for every
 * byte and register, whether its last writer was in the slice:
 *
 *   PRISTINE  never written inside the analyzed window,
 *   CLEAN     last writer was in the slice,
 *   DIRTY     last writer was dropped from the slice.
 *
 * If no in-slice instruction ever reads a DIRTY location, and no criterion
 * byte (pixel-buffer contents at a Marker, or an in-slice syscall's read
 * ranges) is DIRTY when consumed, then by induction the filtered
 * re-execution computes exactly the recorded values — the slice is sound.
 * Every violation message names the out-of-slice writer record, so a bad
 * verdict is a one-hop diagnosis.
 *
 * With a value log recorded alongside the trace, the checker additionally
 * re-materializes in-slice stores and syscall writes into a shadow memory
 * and compares criterion snapshots byte-for-byte wherever provenance is
 * CLEAN — a defense against corrupted artifacts that provenance alone
 * (which trusts the recorded values) cannot see.
 *
 * The optional minimality probe drops one randomly chosen in-slice
 * instruction and re-runs the provenance core, expecting a violation: if
 * dropping an instruction leaves every criterion clean, the slicer
 * included it for no reason the replay can observe. Probes only sample
 * data-flow kinds (Alu, LoadImm, Load, Store); a dropped branch is not
 * guaranteed to surface through data provenance.
 */

#ifndef WEBSLICE_CHECK_SOUNDNESS_HH
#define WEBSLICE_CHECK_SOUNDNESS_HH

#include <cstdint>
#include <span>

#include "check/findings.hh"
#include "slicer/slicer.hh"
#include "trace/criteria.hh"
#include "trace/record.hh"
#include "trace/value_log.hh"

namespace webslice {
namespace check {

struct SoundnessOptions
{
    /** Criteria mode the slice was computed under. */
    slicer::CriteriaMode mode = slicer::CriteriaMode::PixelBuffer;

    /** Keep at most this many finding messages. */
    size_t maxFindings = 24;

    /** Number of drop-one minimality probes to run (0 = none). */
    size_t minimalityProbes = 0;

    /** Seed for the probe sampler (deterministic for a given seed). */
    uint64_t probeSeed = 0x9e3779b97f4a7c15ull;
};

struct SoundnessResult
{
    Findings findings;

    /** Records replayed in the analyzed window. */
    uint64_t recordsReplayed = 0;

    /** Window records the slice marked in-slice. */
    uint64_t inSliceReplayed = 0;

    /** Criterion bytes whose provenance was checked. */
    uint64_t criteriaBytesChecked = 0;

    /** Criterion bytes never written inside the window (environment
     *  state; trusted by assumption, counted for visibility). */
    uint64_t criteriaBytesPristine = 0;

    /** Criterion bytes additionally compared against the value log. */
    uint64_t valueBytesCompared = 0;

    uint64_t probesRun = 0;

    /** Probes whose dropped instruction was detected by the replay. */
    uint64_t probesConfirmed = 0;

    bool ok() const { return findings.ok(); }
};

/**
 * Verify `slice` against the trace it was computed from.
 *
 * @param records   the dynamic trace (full array; the checker replays
 *                  the slice's analyzed window prefix)
 * @param slice     the backward-pass output under audit
 * @param criteria  the criteria sidecar the slice was computed with
 * @param values    optional recorded value log for bit-exact criterion
 *                  comparison; nullptr checks provenance only
 */
SoundnessResult checkSliceSoundness(std::span<const trace::Record> records,
                                    const slicer::SliceResult &slice,
                                    const trace::CriteriaSet &criteria,
                                    const trace::ValueLog *values = nullptr,
                                    const SoundnessOptions &options = {});

} // namespace check
} // namespace webslice

#endif // WEBSLICE_CHECK_SOUNDNESS_HH
