/**
 * @file
 * Shared finding accumulator for the verification passes.
 *
 * Every checker counts all violations it sees but keeps only the first
 * `cap` messages: a corrupted artifact typically breaks thousands of
 * invariants at once, and the report needs the pointed first few, not a
 * megabyte of repetition.
 */

#ifndef WEBSLICE_CHECK_FINDINGS_HH
#define WEBSLICE_CHECK_FINDINGS_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace webslice {
namespace check {

/** Bounded list of human-readable violations. */
struct Findings
{
    uint64_t total = 0;
    size_t cap = 24;
    std::vector<std::string> messages;

    void
    add(std::string message)
    {
        ++total;
        if (messages.size() < cap)
            messages.push_back(std::move(message));
    }

    bool ok() const { return total == 0; }
};

} // namespace check
} // namespace webslice

#endif // WEBSLICE_CHECK_FINDINGS_HH
