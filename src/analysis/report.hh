/**
 * @file
 * One-call report rendering: the complete standard analysis (overall and
 * per-thread slice, waste categorization, hottest functions) written to a
 * stream. This is the library-level equivalent of what the
 * webslice-profile tool prints, so downstream embedders can produce the
 * paper's analysis with a single call.
 */

#ifndef WEBSLICE_ANALYSIS_REPORT_HH
#define WEBSLICE_ANALYSIS_REPORT_HH

#include <ostream>
#include <span>
#include <string>

#include "analysis/categorize.hh"
#include "graph/cfg.hh"
#include "slicer/slicer.hh"
#include "trace/record.hh"
#include "trace/symtab.hh"

namespace webslice {
namespace analysis {

/** Report configuration. */
struct ReportOptions
{
    /** Only records before this index are reported. */
    size_t endIndex = SIZE_MAX;

    /** Rows in the hottest-functions section (0 disables it). */
    size_t topFunctions = 10;

    /** Thread names indexed by tid (missing entries print as tidN). */
    std::span<const std::string> threadNames;

    /** Namespace table for the categorization section. */
    const Categorizer *categorizer = nullptr; ///< nullptr = default

    /**
     * When set, append the static-vs-dynamic contrast section (the
     * Figure-5-style removable/dynamically-only breakdown with
     * data/control sub-counts). Must come from the same trace window,
     * criteria mode, and ablation knobs as `slice`.
     */
    const staticdep::StaticSliceResult *staticSlice = nullptr;
};

/**
 * Render just the static-vs-dynamic contrast section (shared between
 * renderReport, webslice-profile --static-compare, and webslice-static).
 */
void renderContrast(std::ostream &os, const ContrastBreakdown &contrast);

/**
 * Render the full analysis of one sliced trace to `os`: headline slice
 * percentage, per-thread breakdown, unnecessary-computation categories
 * with coverage, and the hottest functions with their slice shares.
 */
void renderReport(std::ostream &os,
                  std::span<const trace::Record> records,
                  const slicer::SliceResult &slice,
                  const graph::CfgSet &cfgs,
                  const trace::SymbolTable &symtab,
                  const ReportOptions &options = {});

} // namespace analysis
} // namespace webslice

#endif // WEBSLICE_ANALYSIS_REPORT_HH
