/**
 * @file
 * One-call report rendering: the complete standard analysis (overall and
 * per-thread slice, waste categorization, hottest functions) written to a
 * stream. This is the library-level equivalent of what the
 * webslice-profile tool prints, so downstream embedders can produce the
 * paper's analysis with a single call.
 */

#ifndef WEBSLICE_ANALYSIS_REPORT_HH
#define WEBSLICE_ANALYSIS_REPORT_HH

#include <ostream>
#include <span>
#include <string>

#include "analysis/categorize.hh"
#include "graph/cfg.hh"
#include "slicer/slicer.hh"
#include "trace/record.hh"
#include "trace/symtab.hh"

namespace webslice {
namespace analysis {

/** Report configuration. */
struct ReportOptions
{
    /** Only records before this index are reported. */
    size_t endIndex = SIZE_MAX;

    /** Rows in the hottest-functions section (0 disables it). */
    size_t topFunctions = 10;

    /** Thread names indexed by tid (missing entries print as tidN). */
    std::span<const std::string> threadNames;

    /** Namespace table for the categorization section. */
    const Categorizer *categorizer = nullptr; ///< nullptr = default
};

/**
 * Render the full analysis of one sliced trace to `os`: headline slice
 * percentage, per-thread breakdown, unnecessary-computation categories
 * with coverage, and the hottest functions with their slice shares.
 */
void renderReport(std::ostream &os,
                  std::span<const trace::Record> records,
                  const slicer::SliceResult &slice,
                  const graph::CfgSet &cfgs,
                  const trace::SymbolTable &symtab,
                  const ReportOptions &options = {});

} // namespace analysis
} // namespace webslice

#endif // WEBSLICE_ANALYSIS_REPORT_HH
