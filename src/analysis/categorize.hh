/**
 * @file
 * Namespace-based categorization of potentially unnecessary computations —
 * the data behind the paper's Figure 5.
 *
 * Like the paper, we look up each non-slice instruction's enclosing
 * function and use the function's C++ namespace as the category key. Not
 * every function has a namespace (leaf library helpers, synthetic toplevel
 * glue), so a fraction of non-slice instructions stays uncategorized — the
 * paper reports 53–74% coverage across its benchmarks.
 */

#ifndef WEBSLICE_ANALYSIS_CATEGORIZE_HH
#define WEBSLICE_ANALYSIS_CATEGORIZE_HH

#include <map>
#include <span>
#include <string>
#include <vector>

#include "graph/cfg.hh"
#include "staticdep/slice.hh"
#include "trace/record.hh"
#include "trace/symtab.hh"

namespace webslice {
namespace analysis {

/**
 * Maps function namespaces to the paper's categories. The default table
 * mirrors Chromium's layout: v8 -> JavaScript, cc -> Compositing, and so
 * on.
 */
class Categorizer
{
  public:
    /** Construct with the paper's default namespace table. */
    static Categorizer chromiumDefault();

    /** Register namespace_path (e.g. "base::threading") -> category. */
    void addRule(std::string namespace_path, std::string category);

    /**
     * Category for a qualified function name, or "" when the name carries
     * no mapped namespace. Deeper (more specific) rules win.
     */
    std::string categoryOf(std::string_view qualified_name) const;

    /** The fixed order categories are reported in (the paper's legend). */
    static const std::vector<std::string> &reportOrder();

  private:
    /** namespace path -> category, deepest path matched first. */
    std::map<std::string, std::string, std::greater<>> rules_;
};

/** Distribution of non-slice instructions over categories. */
struct CategoryDistribution
{
    /** Category -> non-slice instruction count. */
    std::map<std::string, uint64_t> counts;

    /** Non-slice instructions whose function had no mapped namespace. */
    uint64_t uncategorized = 0;

    /** All non-slice instructions examined. */
    uint64_t totalUnnecessary = 0;

    /** Fraction of non-slice instructions that fell into a category. */
    double
    coveragePercent() const
    {
        if (totalUnnecessary == 0)
            return 0.0;
        return 100.0 *
               static_cast<double>(totalUnnecessary - uncategorized) /
               static_cast<double>(totalUnnecessary);
    }

    /** Share of category c among categorized instructions, percent. */
    double sharePercent(const std::string &category) const;
};

/**
 * Categorize every executed instruction that is NOT in the slice.
 *
 * @param records   the dynamic trace
 * @param in_slice  per-record verdicts from the backward pass
 * @param cfgs      forward-pass output (per-record enclosing function)
 * @param symtab    function names
 * @param categorizer namespace table
 * @param end_index only records before this index are examined
 */
CategoryDistribution
categorizeUnnecessary(std::span<const trace::Record> records,
                      std::span<const uint8_t> in_slice,
                      const graph::CfgSet &cfgs,
                      const trace::SymbolTable &symtab,
                      const Categorizer &categorizer,
                      size_t end_index = SIZE_MAX);

/**
 * The Figure-5-style static-vs-dynamic contrast: every executed
 * instruction lands in one of three bins —
 *
 *  - necessary (in the dynamic slice), sub-split by how the static PDG
 *    reached its site: through data edges only, or needing at least one
 *    control edge;
 *  - dynamically-only unnecessary (in the static slice but not the
 *    dynamic one — dependences that could have mattered but did not on
 *    this run), sub-split the same way;
 *  - statically removable (outside even the static over-approximation —
 *    work no sound whole-input analysis could tie to the criteria),
 *    sub-split by instruction character: control transfers vs data
 *    computation.
 *
 * Necessary instructions whose site is missing from the static slice are
 * containment violations (see check/containment.hh) and are counted
 * separately rather than binned.
 */
struct ContrastBreakdown
{
    uint64_t analyzed = 0;

    uint64_t necessary = 0;
    uint64_t necessaryDataOnly = 0;
    uint64_t necessaryViaControl = 0;

    uint64_t dynamicOnly = 0;
    uint64_t dynamicOnlyDataOnly = 0;
    uint64_t dynamicOnlyViaControl = 0;

    uint64_t staticallyRemovable = 0;
    uint64_t removableDataKind = 0;
    uint64_t removableControlKind = 0;

    uint64_t containmentViolations = 0;

    /** Per-category split of the unnecessary bins (the key "" collects
     *  instructions whose function had no mapped namespace). */
    struct CategorySplit
    {
        uint64_t removable = 0;
        uint64_t dynamicOnly = 0;
    };
    std::map<std::string, CategorySplit> categories;

    double
    percentOfAnalyzed(uint64_t n) const
    {
        if (analyzed == 0)
            return 0.0;
        return 100.0 * static_cast<double>(n) /
               static_cast<double>(analyzed);
    }
};

/**
 * Bin every executed instruction in the window against both slices.
 * `static_slice` must have been computed with the same criteria mode and
 * ablation knobs as the dynamic one for the bins to be meaningful.
 */
ContrastBreakdown
contrastSlices(std::span<const trace::Record> records,
               std::span<const uint8_t> in_slice,
               const staticdep::StaticSliceResult &static_slice,
               const graph::CfgSet &cfgs, const trace::SymbolTable &symtab,
               const Categorizer &categorizer, size_t end_index = SIZE_MAX);

} // namespace analysis
} // namespace webslice

#endif // WEBSLICE_ANALYSIS_CATEGORIZE_HH
