#include "analysis/progress.hh"

#include "support/logging.hh"

namespace webslice {
namespace analysis {

std::vector<ProgressPoint>
computeBackwardProgress(std::span<const trace::Record> records,
                        std::span<const uint8_t> in_slice,
                        size_t sample_count,
                        std::optional<trace::ThreadId> tid_filter)
{
    panic_if(records.size() != in_slice.size(),
             "records and slice verdicts must be parallel arrays");
    if (sample_count == 0)
        sample_count = 1;

    // Count matching instructions to space the samples evenly.
    uint64_t matching = 0;
    for (const auto &rec : records) {
        if (rec.isPseudo())
            continue;
        if (tid_filter && rec.tid != *tid_filter)
            continue;
        ++matching;
    }

    std::vector<ProgressPoint> series;
    if (matching == 0)
        return series;

    const uint64_t stride = std::max<uint64_t>(1, matching / sample_count);

    uint64_t analyzed = 0;
    uint64_t sliced = 0;
    for (size_t idx = records.size(); idx-- > 0;) {
        const auto &rec = records[idx];
        if (rec.isPseudo())
            continue;
        if (tid_filter && rec.tid != *tid_filter)
            continue;
        ++analyzed;
        if (in_slice[idx])
            ++sliced;
        if (analyzed % stride == 0 || analyzed == matching) {
            ProgressPoint point;
            point.analyzed = analyzed;
            point.slicePercent = 100.0 * static_cast<double>(sliced) /
                                 static_cast<double>(analyzed);
            series.push_back(point);
        }
    }
    return series;
}

} // namespace analysis
} // namespace webslice
