#include "analysis/categorize.hh"

#include <algorithm>
#include <unordered_map>

#include "support/logging.hh"
#include "support/strings.hh"

namespace webslice {
namespace analysis {

Categorizer
Categorizer::chromiumDefault()
{
    Categorizer c;
    c.addRule("v8", "JavaScript");
    c.addRule("debug", "Debugging");
    c.addRule("ipc", "IPC");
    c.addRule("base::threading", "Multi-threading");
    c.addRule("cc", "Compositing");
    c.addRule("gfx", "Graphics");
    c.addRule("css", "CSS");
    c.addRule("style", "CSS");
    c.addRule("scheduler", "Other");
    c.addRule("net", "Other");
    return c;
}

void
Categorizer::addRule(std::string namespace_path, std::string category)
{
    rules_[std::move(namespace_path)] = std::move(category);
}

std::string
Categorizer::categoryOf(std::string_view qualified_name) const
{
    // Try progressively shallower namespace paths: "a::b::c::f" checks
    // "a::b::c", then "a::b", then "a".
    const size_t last_sep = qualified_name.rfind("::");
    if (last_sep == std::string_view::npos)
        return {};
    std::string_view path = qualified_name.substr(0, last_sep);
    while (!path.empty()) {
        auto it = rules_.find(std::string(path));
        if (it != rules_.end())
            return it->second;
        const size_t sep = path.rfind("::");
        if (sep == std::string_view::npos)
            break;
        path = path.substr(0, sep);
    }
    return {};
}

const std::vector<std::string> &
Categorizer::reportOrder()
{
    static const std::vector<std::string> order = {
        "JavaScript",     "Debugging", "IPC", "Multi-threading",
        "Compositing",    "Graphics",  "CSS", "Other",
    };
    return order;
}

double
CategoryDistribution::sharePercent(const std::string &category) const
{
    const uint64_t categorized = totalUnnecessary - uncategorized;
    if (categorized == 0)
        return 0.0;
    auto it = counts.find(category);
    const uint64_t n = it == counts.end() ? 0 : it->second;
    return 100.0 * static_cast<double>(n) /
           static_cast<double>(categorized);
}

CategoryDistribution
categorizeUnnecessary(std::span<const trace::Record> records,
                      std::span<const uint8_t> in_slice,
                      const graph::CfgSet &cfgs,
                      const trace::SymbolTable &symtab,
                      const Categorizer &categorizer,
                      size_t end_index)
{
    panic_if(records.size() != in_slice.size(),
             "records and slice verdicts must be parallel arrays");

    CategoryDistribution out;

    // Function id -> category, computed lazily (ids are dense enough to
    // make a flat cache worthwhile).
    std::vector<int8_t> cached; // -2 unknown, -1 uncategorized, else index
    std::vector<std::string> category_names;
    auto categoryIndex = [&](trace::FuncId func) -> int {
        if (func == trace::kNoFunc)
            return -1;
        if (func >= cached.size())
            cached.resize(func + 1, -2);
        if (cached[func] != -2)
            return cached[func];

        const std::string name = cfgs.functionName(func, symtab);
        const std::string category = categorizer.categoryOf(name);
        int idx = -1;
        if (!category.empty()) {
            auto it = std::find(category_names.begin(),
                                category_names.end(), category);
            if (it == category_names.end()) {
                category_names.push_back(category);
                idx = static_cast<int>(category_names.size()) - 1;
            } else {
                idx = static_cast<int>(it - category_names.begin());
            }
        }
        panic_if(idx > 126, "too many categories for the i8 cache");
        cached[func] = static_cast<int8_t>(idx);
        return idx;
    };

    std::vector<uint64_t> counts;
    const size_t end = std::min(end_index, records.size());
    for (size_t i = 0; i < end; ++i) {
        if (records[i].isPseudo() || in_slice[i])
            continue;
        ++out.totalUnnecessary;
        const int idx = categoryIndex(cfgs.funcOf[i]);
        if (idx < 0) {
            ++out.uncategorized;
        } else {
            if (counts.size() <= static_cast<size_t>(idx))
                counts.resize(idx + 1, 0);
            ++counts[idx];
        }
    }

    for (size_t i = 0; i < counts.size(); ++i)
        out.counts[category_names[i]] = counts[i];
    return out;
}

ContrastBreakdown
contrastSlices(std::span<const trace::Record> records,
               std::span<const uint8_t> in_slice,
               const staticdep::StaticSliceResult &static_slice,
               const graph::CfgSet &cfgs, const trace::SymbolTable &symtab,
               const Categorizer &categorizer, size_t end_index)
{
    panic_if(records.size() != in_slice.size(),
             "records and slice verdicts must be parallel arrays");

    ContrastBreakdown out;
    std::unordered_map<trace::FuncId, std::string> category_of;
    auto categoryFor = [&](trace::FuncId func) -> const std::string & {
        auto [it, fresh] = category_of.try_emplace(func);
        if (fresh)
            it->second =
                categorizer.categoryOf(cfgs.functionName(func, symtab));
        return it->second;
    };

    const size_t end = std::min(end_index, records.size());
    for (size_t i = 0; i < end; ++i) {
        const trace::Record &rec = records[i];
        if (rec.isPseudo())
            continue;
        ++out.analyzed;
        const trace::FuncId func = cfgs.funcOf[i];
        const uint8_t reason = static_slice.reasonOf(func, rec.pc);

        if (in_slice[i]) {
            ++out.necessary;
            if (reason == 0)
                ++out.containmentViolations;
            else if (reason & staticdep::kReachControl)
                ++out.necessaryViaControl;
            else
                ++out.necessaryDataOnly;
            continue;
        }

        if (reason != 0) {
            // In the static slice but not the dynamic one: a dependence
            // path exists in the program, but this run never exercised
            // it — only a dynamic analysis can call this unnecessary.
            ++out.dynamicOnly;
            if (reason & staticdep::kReachControl)
                ++out.dynamicOnlyViaControl;
            else
                ++out.dynamicOnlyDataOnly;
            ++out.categories[categoryFor(func)].dynamicOnly;
        } else {
            // Outside even the static over-approximation: removable
            // without running the page.
            ++out.staticallyRemovable;
            if (rec.isControl())
                ++out.removableControlKind;
            else
                ++out.removableDataKind;
            ++out.categories[categoryFor(func)].removable;
        }
    }
    return out;
}

} // namespace analysis
} // namespace webslice
