/**
 * @file
 * Per-thread slice statistics — the data behind the paper's Table II
 * (pixels-slice percentage and total instructions for All / Main /
 * Compositor / Rasterizer threads).
 */

#ifndef WEBSLICE_ANALYSIS_THREAD_STATS_HH
#define WEBSLICE_ANALYSIS_THREAD_STATS_HH

#include <span>
#include <string>
#include <vector>

#include "trace/record.hh"

namespace webslice {
namespace analysis {

/** Instruction totals for one thread. */
struct ThreadSliceStats
{
    trace::ThreadId tid = 0;
    std::string name;
    uint64_t totalInstructions = 0;
    uint64_t sliceInstructions = 0;

    double
    slicePercent() const
    {
        if (totalInstructions == 0)
            return 0.0;
        return 100.0 * static_cast<double>(sliceInstructions) /
               static_cast<double>(totalInstructions);
    }
};

/** Aggregate over all threads plus the per-thread breakdown. */
struct SliceBreakdown
{
    ThreadSliceStats all;
    std::vector<ThreadSliceStats> perThread; ///< Indexed by tid.
};

/**
 * Tally per-thread instruction and slice counts.
 *
 * @param records      the dynamic trace
 * @param in_slice     per-record verdicts from the backward pass
 * @param thread_names optional names indexed by tid (shorter is fine)
 * @param end_index    only records before this index are counted
 */
SliceBreakdown
computeThreadStats(std::span<const trace::Record> records,
                   std::span<const uint8_t> in_slice,
                   std::span<const std::string> thread_names = {},
                   size_t end_index = SIZE_MAX);

} // namespace analysis
} // namespace webslice

#endif // WEBSLICE_ANALYSIS_THREAD_STATS_HH
