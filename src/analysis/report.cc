#include "analysis/report.hh"

#include "analysis/function_stats.hh"
#include "analysis/thread_stats.hh"
#include "support/strings.hh"
#include "support/table.hh"

namespace webslice {
namespace analysis {

void
renderReport(std::ostream &os, std::span<const trace::Record> records,
             const slicer::SliceResult &slice, const graph::CfgSet &cfgs,
             const trace::SymbolTable &symtab,
             const ReportOptions &options)
{
    const size_t window = std::min(options.endIndex, records.size());

    os << format("pixel slice: %s of %s instructions (%.1f%%)\n",
                 withCommas(slice.sliceInstructions).c_str(),
                 withCommas(slice.instructionsAnalyzed).c_str(),
                 slice.slicePercent());

    // ---- per thread --------------------------------------------------------
    const auto stats = computeThreadStats(records, slice.inSlice,
                                          options.threadNames, window);
    TextTable threads;
    threads.setHeader({"thread", "instructions", "slice"});
    for (const auto &thread : stats.perThread) {
        if (thread.totalInstructions == 0)
            continue;
        threads.addRow({thread.name.empty()
                            ? format("tid%u", thread.tid)
                            : thread.name,
                        withCommas(thread.totalInstructions),
                        format("%.1f%%", thread.slicePercent())});
    }
    os << '\n';
    threads.render(os);

    // ---- categorization -------------------------------------------------------
    const Categorizer default_categorizer =
        Categorizer::chromiumDefault();
    const Categorizer &categorizer =
        options.categorizer ? *options.categorizer : default_categorizer;
    const auto dist = categorizeUnnecessary(
        records, slice.inSlice, cfgs, symtab, categorizer, window);
    os << format("\nunnecessary computations (%.0f%% categorizable):\n",
                 dist.coveragePercent());
    for (const auto &category : Categorizer::reportOrder()) {
        const double share = dist.sharePercent(category);
        if (share >= 0.05)
            os << format("  %-16s %5.1f%%\n", category.c_str(), share);
    }

    // ---- hottest functions ------------------------------------------------------
    if (options.topFunctions == 0)
        return;
    const auto functions = computeFunctionStats(
        {records.data(), window}, {slice.inSlice.data(), window}, cfgs,
        symtab);
    os << "\nhottest functions:\n";
    for (size_t i = 0;
         i < functions.size() && i < options.topFunctions; ++i) {
        os << format("  %-48s %10s instr  %5.1f%% in slice\n",
                     functions[i].name.c_str(),
                     withCommas(functions[i].totalInstructions).c_str(),
                     functions[i].slicePercent());
    }
}

} // namespace analysis
} // namespace webslice
