#include "analysis/report.hh"

#include "analysis/function_stats.hh"
#include "analysis/thread_stats.hh"
#include "support/strings.hh"
#include "support/table.hh"

namespace webslice {
namespace analysis {

void
renderContrast(std::ostream &os, const ContrastBreakdown &contrast)
{
    os << format("static vs dynamic slicing (%s instructions):\n",
                 withCommas(contrast.analyzed).c_str());
    os << format(
        "  necessary (dynamic slice)     %12s  %5.1f%%  "
        "(data-only %s, via-control %s)\n",
        withCommas(contrast.necessary).c_str(),
        contrast.percentOfAnalyzed(contrast.necessary),
        withCommas(contrast.necessaryDataOnly).c_str(),
        withCommas(contrast.necessaryViaControl).c_str());
    os << format(
        "  dynamically-only unnecessary  %12s  %5.1f%%  "
        "(data-only %s, via-control %s)\n",
        withCommas(contrast.dynamicOnly).c_str(),
        contrast.percentOfAnalyzed(contrast.dynamicOnly),
        withCommas(contrast.dynamicOnlyDataOnly).c_str(),
        withCommas(contrast.dynamicOnlyViaControl).c_str());
    os << format(
        "  statically removable          %12s  %5.1f%%  "
        "(data %s, control transfers %s)\n",
        withCommas(contrast.staticallyRemovable).c_str(),
        contrast.percentOfAnalyzed(contrast.staticallyRemovable),
        withCommas(contrast.removableDataKind).c_str(),
        withCommas(contrast.removableControlKind).c_str());
    if (contrast.containmentViolations != 0)
        os << format("  CONTAINMENT VIOLATIONS        %12s\n",
                     withCommas(contrast.containmentViolations).c_str());

    bool header = false;
    for (const auto &[category, split] : contrast.categories) {
        if (category.empty())
            continue;
        if (split.removable + split.dynamicOnly == 0)
            continue;
        if (!header) {
            os << "  per category (removable / dynamic-only):\n";
            header = true;
        }
        os << format("    %-16s %12s / %s\n", category.c_str(),
                     withCommas(split.removable).c_str(),
                     withCommas(split.dynamicOnly).c_str());
    }
}

void
renderReport(std::ostream &os, std::span<const trace::Record> records,
             const slicer::SliceResult &slice, const graph::CfgSet &cfgs,
             const trace::SymbolTable &symtab,
             const ReportOptions &options)
{
    const size_t window = std::min(options.endIndex, records.size());

    os << format("pixel slice: %s of %s instructions (%.1f%%)\n",
                 withCommas(slice.sliceInstructions).c_str(),
                 withCommas(slice.instructionsAnalyzed).c_str(),
                 slice.slicePercent());

    // ---- per thread --------------------------------------------------------
    const auto stats = computeThreadStats(records, slice.inSlice,
                                          options.threadNames, window);
    TextTable threads;
    threads.setHeader({"thread", "instructions", "slice"});
    for (const auto &thread : stats.perThread) {
        if (thread.totalInstructions == 0)
            continue;
        threads.addRow({thread.name.empty()
                            ? format("tid%u", thread.tid)
                            : thread.name,
                        withCommas(thread.totalInstructions),
                        format("%.1f%%", thread.slicePercent())});
    }
    os << '\n';
    threads.render(os);

    // ---- categorization -------------------------------------------------------
    const Categorizer default_categorizer =
        Categorizer::chromiumDefault();
    const Categorizer &categorizer =
        options.categorizer ? *options.categorizer : default_categorizer;
    const auto dist = categorizeUnnecessary(
        records, slice.inSlice, cfgs, symtab, categorizer, window);
    os << format("\nunnecessary computations (%.0f%% categorizable):\n",
                 dist.coveragePercent());
    for (const auto &category : Categorizer::reportOrder()) {
        const double share = dist.sharePercent(category);
        if (share >= 0.05)
            os << format("  %-16s %5.1f%%\n", category.c_str(), share);
    }

    // ---- static-vs-dynamic contrast ---------------------------------------------
    if (options.staticSlice) {
        const auto contrast =
            contrastSlices(records, slice.inSlice, *options.staticSlice,
                           cfgs, symtab, categorizer, window);
        os << '\n';
        renderContrast(os, contrast);
    }

    // ---- hottest functions ------------------------------------------------------
    if (options.topFunctions == 0)
        return;
    const auto functions = computeFunctionStats(
        {records.data(), window}, {slice.inSlice.data(), window}, cfgs,
        symtab);
    os << "\nhottest functions:\n";
    for (size_t i = 0;
         i < functions.size() && i < options.topFunctions; ++i) {
        os << format("  %-48s %10s instr  %5.1f%% in slice\n",
                     functions[i].name.c_str(),
                     withCommas(functions[i].totalInstructions).c_str(),
                     functions[i].slicePercent());
    }
}

} // namespace analysis
} // namespace webslice
