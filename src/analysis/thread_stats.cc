#include "analysis/thread_stats.hh"

#include <algorithm>

#include "support/logging.hh"

namespace webslice {
namespace analysis {

SliceBreakdown
computeThreadStats(std::span<const trace::Record> records,
                   std::span<const uint8_t> in_slice,
                   std::span<const std::string> thread_names,
                   size_t end_index)
{
    panic_if(records.size() != in_slice.size(),
             "records and slice verdicts must be parallel arrays");

    SliceBreakdown out;
    out.all.name = "All";

    const size_t end = std::min(end_index, records.size());
    for (size_t i = 0; i < end; ++i) {
        const auto &rec = records[i];
        if (rec.isPseudo())
            continue;
        if (rec.tid >= out.perThread.size()) {
            out.perThread.resize(rec.tid + 1);
            for (size_t t = 0; t < out.perThread.size(); ++t) {
                out.perThread[t].tid = static_cast<trace::ThreadId>(t);
                if (t < thread_names.size())
                    out.perThread[t].name = thread_names[t];
            }
        }
        auto &stats = out.perThread[rec.tid];
        ++stats.totalInstructions;
        ++out.all.totalInstructions;
        if (in_slice[i]) {
            ++stats.sliceInstructions;
            ++out.all.sliceInstructions;
        }
    }
    return out;
}

} // namespace analysis
} // namespace webslice
