#include "analysis/function_stats.hh"

#include <algorithm>
#include <unordered_map>

#include "support/logging.hh"

namespace webslice {
namespace analysis {

std::vector<FunctionSliceStats>
computeFunctionStats(std::span<const trace::Record> records,
                     std::span<const uint8_t> in_slice,
                     const graph::CfgSet &cfgs,
                     const trace::SymbolTable &symtab)
{
    panic_if(records.size() != in_slice.size(),
             "records and slice verdicts must be parallel arrays");

    std::unordered_map<std::string, FunctionSliceStats> by_name;
    for (size_t i = 0; i < records.size(); ++i) {
        if (records[i].isPseudo())
            continue;
        const trace::FuncId func = cfgs.funcOf[i];
        const std::string name = cfgs.functionName(func, symtab);
        auto &stats = by_name[name];
        if (stats.totalInstructions == 0) {
            stats.func = func;
            stats.name = name;
        }
        ++stats.totalInstructions;
        stats.sliceInstructions += in_slice[i] ? 1 : 0;
    }

    std::vector<FunctionSliceStats> out;
    out.reserve(by_name.size());
    for (auto &kv : by_name)
        out.push_back(std::move(kv.second));
    std::sort(out.begin(), out.end(),
              [](const FunctionSliceStats &a, const FunctionSliceStats &b) {
                  return a.totalInstructions > b.totalInstructions;
              });
    return out;
}

} // namespace analysis
} // namespace webslice
