/**
 * @file
 * Backward-pass progress series — the data behind the paper's Figure 4
 * ("Changes of slicing percentage over the backward pass"): x = 0 is the
 * end of the trace (page loaded / session done), the last point is the
 * beginning (URL entered), and y is the cumulative slice percentage of the
 * instructions analyzed so far.
 */

#ifndef WEBSLICE_ANALYSIS_PROGRESS_HH
#define WEBSLICE_ANALYSIS_PROGRESS_HH

#include <optional>
#include <span>
#include <vector>

#include "trace/record.hh"

namespace webslice {
namespace analysis {

/** One sampled point of the backward pass. */
struct ProgressPoint
{
    /** Instructions analyzed so far (from the end of the trace). */
    uint64_t analyzed = 0;
    /** Cumulative slice percentage among them. */
    double slicePercent = 0.0;
};

/**
 * Sample the cumulative slice percentage at even intervals of the
 * backward pass.
 *
 * @param records     the dynamic trace
 * @param in_slice    per-record verdicts
 * @param sample_count number of points in the returned series
 * @param tid_filter  when set, restrict to one thread's instructions
 *                    (Figure 4's "Main thread" panels)
 */
std::vector<ProgressPoint>
computeBackwardProgress(std::span<const trace::Record> records,
                        std::span<const uint8_t> in_slice,
                        size_t sample_count = 100,
                        std::optional<trace::ThreadId> tid_filter = {});

} // namespace analysis
} // namespace webslice

#endif // WEBSLICE_ANALYSIS_PROGRESS_HH
