/**
 * @file
 * Per-function slice attribution: for every traced function, how many of
 * its dynamic instructions joined the slice. This is the function-level
 * "distribution of instructions of the slice" output the paper's profiler
 * design (Section III) lists, and the main debugging lens on dependence
 * chains.
 */

#ifndef WEBSLICE_ANALYSIS_FUNCTION_STATS_HH
#define WEBSLICE_ANALYSIS_FUNCTION_STATS_HH

#include <span>
#include <string>
#include <vector>

#include "graph/cfg.hh"
#include "trace/record.hh"
#include "trace/symtab.hh"

namespace webslice {
namespace analysis {

/** Instruction totals for one function. */
struct FunctionSliceStats
{
    trace::FuncId func = trace::kNoFunc;
    std::string name;
    uint64_t totalInstructions = 0;
    uint64_t sliceInstructions = 0;

    double
    slicePercent() const
    {
        if (totalInstructions == 0)
            return 0.0;
        return 100.0 * static_cast<double>(sliceInstructions) /
               static_cast<double>(totalInstructions);
    }
};

/**
 * Tally per-function totals, sorted by total instructions descending.
 * Functions with the same qualified name (e.g. per-tag mutex instances)
 * are merged.
 */
std::vector<FunctionSliceStats>
computeFunctionStats(std::span<const trace::Record> records,
                     std::span<const uint8_t> in_slice,
                     const graph::CfgSet &cfgs,
                     const trace::SymbolTable &symtab);

} // namespace analysis
} // namespace webslice

#endif // WEBSLICE_ANALYSIS_FUNCTION_STATS_HH
