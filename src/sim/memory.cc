#include "sim/memory.hh"

#include <cstring>

#include "support/logging.hh"

namespace webslice {
namespace sim {

SimMemory::Page &
SimMemory::pageFor(uint64_t addr)
{
    auto &slot = pages_[addr / kPageBytes];
    if (!slot) {
        slot = std::make_unique<Page>();
        slot->fill(0);
    }
    return *slot;
}

const SimMemory::Page *
SimMemory::pageIfPresent(uint64_t addr) const
{
    auto it = pages_.find(addr / kPageBytes);
    return it == pages_.end() ? nullptr : it->second.get();
}

uint64_t
SimMemory::read(uint64_t addr, unsigned size) const
{
    panic_if(size < 1 || size > 8, "bad scalar read size ", size);
    uint64_t value = 0;
    readBytes(addr, &value, size);
    return value;
}

void
SimMemory::write(uint64_t addr, unsigned size, uint64_t value)
{
    panic_if(size < 1 || size > 8, "bad scalar write size ", size);
    writeBytes(addr, &value, size);
}

void
SimMemory::readBytes(uint64_t addr, void *out, uint64_t size) const
{
    uint8_t *dst = static_cast<uint8_t *>(out);
    while (size > 0) {
        const uint64_t offset = addr % kPageBytes;
        const uint64_t span = std::min(size, kPageBytes - offset);
        if (const Page *page = pageIfPresent(addr)) {
            std::memcpy(dst, page->data() + offset, span);
        } else {
            std::memset(dst, 0, span);
        }
        addr += span;
        dst += span;
        size -= span;
    }
}

void
SimMemory::writeBytes(uint64_t addr, const void *in, uint64_t size)
{
    const uint8_t *src = static_cast<const uint8_t *>(in);
    while (size > 0) {
        const uint64_t offset = addr % kPageBytes;
        const uint64_t span = std::min(size, kPageBytes - offset);
        std::memcpy(pageFor(addr).data() + offset, src, span);
        addr += span;
        src += span;
        size -= span;
    }
}

uint64_t
SimAllocator::alloc(uint64_t size, const char *tag)
{
    if (size == 0)
        size = 1;
    const uint64_t rounded = (size + 15) & ~15ull;

    auto it = freeBySize_.find(rounded);
    if (it != freeBySize_.end() && !it->second.empty()) {
        const uint64_t addr = it->second.back();
        it->second.pop_back();
        if (it->second.empty())
            freeBySize_.erase(it);
        Block &block = blocks_[addr];
        block.tag = tag;
        block.live = true;
        liveBytes_ += block.size;
        ++reuseCount_;
        return addr;
    }

    const uint64_t addr = next_;
    next_ += rounded;
    blocks_[addr] = Block{rounded, tag, true};
    liveBytes_ += rounded;
    return addr;
}

void
SimAllocator::free(uint64_t addr)
{
    auto it = blocks_.find(addr);
    panic_if(it == blocks_.end(), "free of unallocated address ", addr);
    panic_if(!it->second.live, "double free of address ", addr);
    it->second.live = false;
    liveBytes_ -= it->second.size;
    freeBySize_[it->second.size].push_back(addr);
}

} // namespace sim
} // namespace webslice
