/**
 * @file
 * The simulated 64-bit address space.
 *
 * Unlike a pure trace generator, the simulated machine keeps real values
 * behind every address: the browser substrate computes genuine pixel
 * values from genuine style/layout/JS data, so the data-dependence chains
 * the slicer discovers are real, not scripted.
 *
 * Storage is sparse (4 KiB pages allocated on first touch). A simple
 * region-tagged allocator hands out heap addresses; address reuse through
 * the free list is deliberate — it exercises the slicer's kill rule the
 * same way real allocator reuse does.
 */

#ifndef WEBSLICE_SIM_MEMORY_HH
#define WEBSLICE_SIM_MEMORY_HH

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace webslice {
namespace sim {

/** Sparse byte-addressable memory with little-endian scalar access. */
class SimMemory
{
  public:
    static constexpr uint64_t kPageBytes = 4096;

    /** Read size bytes (1..8) at addr as a little-endian scalar. */
    uint64_t read(uint64_t addr, unsigned size) const;

    /** Write the low size bytes (1..8) of value at addr. */
    void write(uint64_t addr, unsigned size, uint64_t value);

    /** Bulk copy out of simulated memory. */
    void readBytes(uint64_t addr, void *out, uint64_t size) const;

    /** Bulk copy into simulated memory. */
    void writeBytes(uint64_t addr, const void *in, uint64_t size);

    /** Number of touched pages (diagnostics). */
    size_t pageCount() const { return pages_.size(); }

  private:
    using Page = std::array<uint8_t, kPageBytes>;

    Page &pageFor(uint64_t addr);
    const Page *pageIfPresent(uint64_t addr) const;

    std::unordered_map<uint64_t, std::unique_ptr<Page>> pages_;
};

/**
 * Heap allocator over the simulated address space: bump allocation with a
 * size-class free list, 16-byte alignment, and per-allocation tags kept for
 * diagnostics.
 */
class SimAllocator
{
  public:
    explicit SimAllocator(uint64_t base = 0x10000000ull) : next_(base) {}

    /** Allocate size bytes; returns the simulated address. */
    uint64_t alloc(uint64_t size, const char *tag = "");

    /** Return a block to the free list for reuse. */
    void free(uint64_t addr);

    /** Bytes handed out and not yet freed. */
    uint64_t liveBytes() const { return liveBytes_; }

    /** High-water mark of the bump pointer. */
    uint64_t bumpTop() const { return next_; }

    /** Allocations served from the free list (reuse count). */
    uint64_t reuseCount() const { return reuseCount_; }

  private:
    struct Block
    {
        uint64_t size = 0;
        const char *tag = "";
        bool live = false;
    };

    uint64_t next_;
    uint64_t liveBytes_ = 0;
    uint64_t reuseCount_ = 0;
    std::unordered_map<uint64_t, Block> blocks_;
    std::map<uint64_t, std::vector<uint64_t>> freeBySize_;
};

} // namespace sim
} // namespace webslice

#endif // WEBSLICE_SIM_MEMORY_HH
