/**
 * @file
 * Syscall numbers and effect helpers for the simulated OS boundary.
 *
 * The numbers mirror the Linux x86-64 table for the calls the paper says
 * Chromium makes; what matters to the profiler is each call's memory
 * effect (which user buffers the kernel reads or writes), which is what
 * the paper's authors derived from the Linux manual pages. The helpers
 * below emit a syscall record with exactly those effects.
 */

#ifndef WEBSLICE_SIM_SYSCALLS_HH
#define WEBSLICE_SIM_SYSCALLS_HH

#include <cstdint>

#include "sim/machine.hh"
#include "trace/criteria.hh"

namespace webslice {
namespace sim {

/** Linux x86-64 syscall numbers used by the browser substrate. */
enum SyscallNumber : uint32_t
{
    kSysRead = 0,
    kSysWrite = 1,
    kSysMmap = 9,
    kSysSendto = 44,
    kSysRecvfrom = 45,
    kSysSendmsg = 46,
    kSysRecvmsg = 47,
    kSysFutex = 202,
    kSysClockGettime = 228,
};

/**
 * sendto(sockfd, buf, len, ...): the kernel reads [buf, buf+len).
 * Returns the syscall's result value (bytes sent).
 */
inline Value
sysSendto(Ctx &ctx, uint64_t buf, uint64_t len,
          std::source_location loc = std::source_location::current())
{
    const trace::MemRange reads[] = {{buf, len}};
    return ctx.syscall(kSysSendto, len, reads, {}, loc);
}

/**
 * recvfrom(sockfd, buf, len, ...): the kernel writes the received payload
 * into [buf, buf+len). The caller must have placed the payload bytes into
 * simulated memory (the kernel-side copy is not traced, matching Pin's
 * user-level-only view).
 */
inline Value
sysRecvfrom(Ctx &ctx, uint64_t buf, uint64_t len,
            std::source_location loc = std::source_location::current())
{
    const trace::MemRange writes[] = {{buf, len}};
    return ctx.syscall(kSysRecvfrom, len, {}, writes, loc);
}

/** write(fd, buf, len): the kernel reads [buf, buf+len). */
inline Value
sysWrite(Ctx &ctx, uint64_t buf, uint64_t len,
         std::source_location loc = std::source_location::current())
{
    const trace::MemRange reads[] = {{buf, len}};
    return ctx.syscall(kSysWrite, len, reads, {}, loc);
}

/** futex(uaddr, op, ...): the kernel reads the 4-byte futex word. */
inline Value
sysFutex(Ctx &ctx, uint64_t uaddr,
         std::source_location loc = std::source_location::current())
{
    const trace::MemRange reads[] = {{uaddr, 4}};
    return ctx.syscall(kSysFutex, 0, reads, {}, loc);
}

/** clock_gettime(clk, tp): the kernel writes a 16-byte timespec. */
inline Value
sysClockGettime(Ctx &ctx, uint64_t tp, uint64_t now,
                std::source_location loc = std::source_location::current())
{
    const trace::MemRange writes[] = {{tp, 16}};
    return ctx.syscall(kSysClockGettime, now, {}, writes, loc);
}

} // namespace sim
} // namespace webslice

#endif // WEBSLICE_SIM_SYSCALLS_HH
