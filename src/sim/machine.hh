/**
 * @file
 * The traced virtual machine.
 *
 * This is the reproduction's substitute for "x86-64 + Intel Pin": a small
 * RISC-like CPU whose every executed operation appends a trace::Record.
 * The browser substrate is written against this API, so the traces the
 * profiler consumes contain real data- and control-dependence structure:
 *
 *  - Static pcs are derived from C++ call sites (std::source_location), so
 *    the same source site always produces the same pc — the property the
 *    forward pass needs to rebuild CFGs from a dynamic trace.
 *  - Values are RAII register handles; per-thread virtual registers are
 *    recycled, exercising the slicer's register kill/gen logic the same way
 *    real register reuse does.
 *  - branchIf() emits a conditional branch reading the condition value's
 *    register and returns the concrete boolean for the C++ side, so traced
 *    control flow and native control flow cannot diverge.
 *  - Threads are cooperative event loops serialized into a single trace
 *    stream, mirroring the paper's affinity-pinned tab process.
 *  - Syscalls carry explicit memory-effect pseudo-records, the equivalent
 *    of the paper's Linux-manual-derived effect annotations.
 */

#ifndef WEBSLICE_SIM_MACHINE_HH
#define WEBSLICE_SIM_MACHINE_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <queue>
#include <source_location>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/memory.hh"
#include "support/stats.hh"
#include "trace/criteria.hh"
#include "trace/record.hh"
#include "trace/symtab.hh"
#include "trace/value_log.hh"

namespace webslice {
namespace sim {

class Machine;
class Ctx;

/** Machine construction parameters. */
struct MachineConfig
{
    /** Virtual cycles per utilization-timeline bucket (Figure 2). */
    uint64_t timelineBucket = 20000;
    /** Hard cap on trace length; exceeding it is a panic (runaway guard). */
    uint64_t maxRecords = 400ull * 1000 * 1000;
};

/**
 * RAII handle for a per-thread virtual register holding a concrete 64-bit
 * value. Move-only; the register returns to the thread's free pool on
 * destruction.
 */
class Value
{
  public:
    Value() = default;
    Value(Value &&other) noexcept { moveFrom(other); }

    Value &
    operator=(Value &&other) noexcept
    {
        if (this != &other) {
            release();
            moveFrom(other);
        }
        return *this;
    }

    Value(const Value &) = delete;
    Value &operator=(const Value &) = delete;

    ~Value() { release(); }

    /** True when this handle owns a register. */
    bool valid() const { return machine_ != nullptr; }

    /** The concrete runtime value. */
    uint64_t get() const { return concrete_; }

    /** The virtual register id backing this value. */
    trace::RegId reg() const { return reg_; }

    trace::ThreadId tid() const { return tid_; }

  private:
    friend class Machine;
    friend class Ctx;

    Value(Machine *machine, trace::ThreadId tid, trace::RegId reg,
          uint64_t concrete)
        : machine_(machine), tid_(tid), reg_(reg), concrete_(concrete)
    {}

    void moveFrom(Value &other);
    void release();

    Machine *machine_ = nullptr;
    trace::ThreadId tid_ = 0;
    trace::RegId reg_ = trace::kNoReg;
    uint64_t concrete_ = 0;
};

/** A unit of work executed on one simulated thread. */
using Task = std::function<void(Ctx &)>;

/**
 * Execution context bound to (machine, thread). All traced operations are
 * issued through a Ctx; the scheduler passes one to every task.
 */
class Ctx
{
  public:
    Ctx(Machine &machine, trace::ThreadId tid)
        : machine_(machine), tid_(tid)
    {}

    Machine &machine() const { return machine_; }
    trace::ThreadId tid() const { return tid_; }

    using Loc = std::source_location;

    // ---- value producers -------------------------------------------------

    /** Load an immediate constant (no dependencies). */
    Value imm(uint64_t v, Loc loc = Loc::current());

    /** Register-to-register copy. */
    Value copy(const Value &a, Loc loc = Loc::current());

    /** Generic one-operand ALU op with a caller-computed result. */
    Value alu1(const Value &a, uint64_t result, Loc loc = Loc::current());

    /** Generic two-operand ALU op with a caller-computed result. */
    Value alu2(const Value &a, const Value &b, uint64_t result,
               Loc loc = Loc::current());

    /** Generic three-operand ALU op with a caller-computed result. */
    Value alu3(const Value &a, const Value &b, const Value &c,
               uint64_t result, Loc loc = Loc::current());

    // Named arithmetic wrappers (all emit a single Alu record).
    Value add(const Value &a, const Value &b, Loc loc = Loc::current());
    Value sub(const Value &a, const Value &b, Loc loc = Loc::current());
    Value mul(const Value &a, const Value &b, Loc loc = Loc::current());
    Value udiv(const Value &a, const Value &b, Loc loc = Loc::current());
    Value umod(const Value &a, const Value &b, Loc loc = Loc::current());
    Value band(const Value &a, const Value &b, Loc loc = Loc::current());
    Value bor(const Value &a, const Value &b, Loc loc = Loc::current());
    Value bxor(const Value &a, const Value &b, Loc loc = Loc::current());
    Value shl(const Value &a, const Value &b, Loc loc = Loc::current());
    Value shr(const Value &a, const Value &b, Loc loc = Loc::current());

    // Immediate-operand forms (single register dependency).
    Value addi(const Value &a, int64_t k, Loc loc = Loc::current());
    Value muli(const Value &a, uint64_t k, Loc loc = Loc::current());
    Value andi(const Value &a, uint64_t k, Loc loc = Loc::current());
    Value shli(const Value &a, unsigned k, Loc loc = Loc::current());
    Value shri(const Value &a, unsigned k, Loc loc = Loc::current());

    // Comparisons producing 0/1.
    Value eq(const Value &a, const Value &b, Loc loc = Loc::current());
    Value ne(const Value &a, const Value &b, Loc loc = Loc::current());
    Value ltu(const Value &a, const Value &b, Loc loc = Loc::current());
    Value leu(const Value &a, const Value &b, Loc loc = Loc::current());
    Value gtu(const Value &a, const Value &b, Loc loc = Loc::current());
    Value geu(const Value &a, const Value &b, Loc loc = Loc::current());
    Value eqi(const Value &a, uint64_t k, Loc loc = Loc::current());
    Value ltui(const Value &a, uint64_t k, Loc loc = Loc::current());
    Value isZero(const Value &a, Loc loc = Loc::current());

    /** cond ? a : b as a single three-operand select. */
    Value select(const Value &cond, const Value &a, const Value &b,
                 Loc loc = Loc::current());

    // ---- memory ----------------------------------------------------------

    /** Load size bytes from an absolute simulated address. */
    Value load(uint64_t addr, unsigned size, Loc loc = Loc::current());

    /** Load through a traced pointer: addr = base.get() + offset. */
    Value loadVia(const Value &base, int64_t offset, unsigned size,
                  Loc loc = Loc::current());

    /** Store a value to an absolute simulated address. */
    void store(uint64_t addr, unsigned size, const Value &v,
               Loc loc = Loc::current());

    /** Store through a traced pointer: addr = base.get() + offset. */
    void storeVia(const Value &base, int64_t offset, unsigned size,
                  const Value &v, Loc loc = Loc::current());

    // ---- control flow ----------------------------------------------------

    /**
     * Emit a conditional branch on cond and return its concrete outcome.
     * Browser code must route every data-dependent C++ decision through
     * this so the trace's control dependences are faithful.
     */
    bool branchIf(const Value &cond, Loc loc = Loc::current());

    // ---- OS boundary -----------------------------------------------------

    /**
     * Emit a syscall record followed by its memory-effect pseudo-records.
     * @param number  syscall number (see sim/syscalls.hh)
     * @param reads   memory the kernel reads on the process's behalf
     * @param writes  memory the kernel writes on the process's behalf
     * @return the syscall's register result (e.g. byte count), as a Value.
     */
    Value syscall(uint32_t number, uint64_t result,
                  std::span<const trace::MemRange> reads,
                  std::span<const trace::MemRange> writes,
                  Loc loc = Loc::current());

    /**
     * Emit the slicing-criteria marker (the paper's "xchg %r13w,%r13w")
     * and register the given ranges under its fresh ordinal in the
     * machine's criteria set.
     * @return the marker ordinal.
     */
    uint32_t marker(std::span<const trace::MemRange> ranges,
                    Loc loc = Loc::current());

  private:
    friend class TracedScope;

    Machine &machine_;
    trace::ThreadId tid_;
};

/**
 * RAII scope that brackets a traced function's body with Call/Ret records
 * and keeps the machine's per-thread function stack (used to attribute
 * emitted pcs to their enclosing function) in sync.
 */
class TracedScope
{
  public:
    /** Direct call. */
    TracedScope(Ctx &ctx, trace::FuncId callee,
                std::source_location loc = std::source_location::current());

    /**
     * Indirect call: the target came out of a register (e.g. a JS dispatch
     * through a function object); the Call record reads target's register.
     */
    TracedScope(Ctx &ctx, trace::FuncId callee, const Value &target,
                std::source_location loc = std::source_location::current());

    ~TracedScope();

    TracedScope(const TracedScope &) = delete;
    TracedScope &operator=(const TracedScope &) = delete;

  private:
    Machine &machine_;
    trace::ThreadId tid_;
    trace::FuncId callee_;
};

/** The machine: memory + threads + scheduler + trace sink. */
class Machine
{
  public:
    explicit Machine(MachineConfig config = {});

    // ---- setup -----------------------------------------------------------

    /** Create a simulated thread; ids are dense from 0. */
    trace::ThreadId addThread(std::string name);

    const std::string &threadName(trace::ThreadId tid) const;
    size_t threadCount() const { return threads_.size(); }

    /** Register a traced function by qualified name; allocates entry pc. */
    trace::FuncId registerFunction(std::string qualified_name);

    /** Entry pc of a registered function. */
    trace::Pc functionEntry(trace::FuncId id) const;

    // ---- scheduling ------------------------------------------------------

    /** Queue a task on a thread, runnable immediately. */
    void post(trace::ThreadId tid, Task task);

    /** Queue a task runnable after delay virtual cycles. */
    void postDelayed(trace::ThreadId tid, uint64_t delay, Task task);

    /** Run tasks (round-robin across threads) until all queues drain. */
    void run();

    /** Current virtual time in cycles (1 cycle per instruction). */
    uint64_t now() const { return clock_; }

    // ---- memory (host-side / "kernel" view, untraced) ---------------------

    SimMemory &mem() { return memory_; }
    const SimMemory &mem() const { return memory_; }

    uint64_t alloc(uint64_t size, const char *tag = "")
    {
        return allocator_.alloc(size, tag);
    }

    void free(uint64_t addr) { allocator_.free(addr); }

    SimAllocator &allocator() { return allocator_; }

    // ---- outputs ---------------------------------------------------------

    const std::vector<trace::Record> &records() const { return records_; }
    trace::SymbolTable &symtab() { return symtab_; }
    const trace::SymbolTable &symtab() const { return symtab_; }
    trace::CriteriaSet &pixelCriteria() { return pixelCriteria_; }
    const trace::CriteriaSet &pixelCriteria() const { return pixelCriteria_; }

    /** Executed-instruction count (pseudo-records excluded). */
    uint64_t instructionCount() const { return instructionCount_; }

    /**
     * Capture per-record concrete values and effect-range bytes into a
     * trace::ValueLog (the replay oracle's ground truth). Must be
     * enabled before the first record is emitted; off by default, since
     * the log costs 8 bytes per record plus the effect blobs.
     */
    void enableValueLog();

    /** The captured value log, or nullptr when not enabled. */
    const trace::ValueLog *valueLog() const { return valueLog_.get(); }

    /** Per-thread instructions-per-bucket series (drives Figure 2). */
    const TimeSeries &threadTimeline(trace::ThreadId tid) const;

    uint64_t timelineBucket() const { return config_.timelineBucket; }

  private:
    friend class Ctx;
    friend class Value;
    friend class TracedScope;

    struct Thread
    {
        std::string name;
        std::deque<Task> runQueue;
        std::vector<trace::RegId> freeRegs;
        trace::RegId nextReg = 0;
        std::vector<trace::FuncId> funcStack;
        TimeSeries timeline;
    };

    struct DelayedTask
    {
        uint64_t readyAt;
        uint64_t seq;
        trace::ThreadId tid;
    };

    struct DelayedOrder
    {
        bool
        operator()(const DelayedTask &a, const DelayedTask &b) const
        {
            if (a.readyAt != b.readyAt)
                return a.readyAt > b.readyAt;
            return a.seq > b.seq;
        }
    };

    trace::RegId allocReg(trace::ThreadId tid);
    void freeReg(trace::ThreadId tid, trace::RegId reg);

    /** Stable static pc for a source site. */
    trace::Pc sitePc(const std::source_location &loc);

    /** Append a record; advances the clock for executed instructions. */
    void emit(trace::Record rec);

    /** Attach the concrete value of the most recently emitted record. */
    void noteValue(uint64_t v);

    /** Append a memory snapshot to the last emitted record's blob. */
    void noteBytes(uint64_t addr, uint64_t size);

    Thread &thread(trace::ThreadId tid);

    MachineConfig config_;
    SimMemory memory_;
    SimAllocator allocator_;
    std::vector<Thread> threads_;

    // Site -> pc. Keyed by (file pointer, line, column): file_name()
    // returns a stable pointer per translation unit.
    struct SiteKey
    {
        const char *file;
        uint32_t line;
        uint32_t column;

        bool operator==(const SiteKey &) const = default;
    };

    struct SiteKeyHash
    {
        size_t
        operator()(const SiteKey &k) const
        {
            size_t h = std::hash<const void *>()(k.file);
            h = h * 1000003u + k.line;
            h = h * 1000003u + k.column;
            return h;
        }
    };

    std::unordered_map<SiteKey, trace::Pc, SiteKeyHash> sites_;
    trace::Pc nextPc_ = 0x1000;

    std::vector<trace::Record> records_;
    std::unique_ptr<trace::ValueLog> valueLog_;
    uint64_t instructionCount_ = 0;
    uint64_t clock_ = 0;

    trace::SymbolTable symtab_;
    std::vector<trace::Pc> funcRetPc_;
    trace::CriteriaSet pixelCriteria_;
    uint32_t nextMarker_ = 0;

    std::priority_queue<DelayedTask, std::vector<DelayedTask>, DelayedOrder>
        delayed_;
    std::unordered_map<uint64_t, Task> delayedBodies_;
    uint64_t delayedSeq_ = 0;
    size_t rrCursor_ = 0;
};

} // namespace sim
} // namespace webslice

#endif // WEBSLICE_SIM_MACHINE_HH
