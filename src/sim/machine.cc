#include "sim/machine.hh"

#include "support/logging.hh"

namespace webslice {
namespace sim {

using trace::kNoReg;
using trace::Record;
using trace::RecordKind;

// ---- Value -----------------------------------------------------------------

void
Value::moveFrom(Value &other)
{
    machine_ = other.machine_;
    tid_ = other.tid_;
    reg_ = other.reg_;
    concrete_ = other.concrete_;
    other.machine_ = nullptr;
    other.reg_ = kNoReg;
}

void
Value::release()
{
    if (machine_) {
        machine_->freeReg(tid_, reg_);
        machine_ = nullptr;
        reg_ = kNoReg;
    }
}

// ---- Machine ---------------------------------------------------------------

Machine::Machine(MachineConfig config) : config_(config)
{
    records_.reserve(1 << 20);
}

trace::ThreadId
Machine::addThread(std::string name)
{
    const auto tid = static_cast<trace::ThreadId>(threads_.size());
    Thread thread;
    thread.name = std::move(name);
    thread.timeline = TimeSeries(config_.timelineBucket);
    threads_.push_back(std::move(thread));
    return tid;
}

const std::string &
Machine::threadName(trace::ThreadId tid) const
{
    panic_if(tid >= threads_.size(), "bad thread id ", tid);
    return threads_[tid].name;
}

Machine::Thread &
Machine::thread(trace::ThreadId tid)
{
    panic_if(tid >= threads_.size(), "bad thread id ", tid);
    return threads_[tid];
}

trace::FuncId
Machine::registerFunction(std::string qualified_name)
{
    const trace::Pc entry = nextPc_;
    nextPc_ += 4;
    const trace::Pc ret = nextPc_;
    nextPc_ += 4;
    const trace::FuncId id =
        symtab_.addFunction(entry, std::move(qualified_name));
    panic_if(id != funcRetPc_.size(), "function id sequence broken");
    funcRetPc_.push_back(ret);
    symtab_.assignPc(ret, id);
    return id;
}

trace::Pc
Machine::functionEntry(trace::FuncId id) const
{
    return symtab_.symbol(id).entryPc;
}

void
Machine::post(trace::ThreadId tid, Task task)
{
    thread(tid).runQueue.push_back(std::move(task));
}

void
Machine::postDelayed(trace::ThreadId tid, uint64_t delay, Task task)
{
    const uint64_t seq = delayedSeq_++;
    delayed_.push(DelayedTask{clock_ + delay, seq, tid});
    delayedBodies_[seq] = std::move(task);
}

void
Machine::run()
{
    while (true) {
        // Release delayed tasks whose time has come into their thread's
        // run queue.
        while (!delayed_.empty() && delayed_.top().readyAt <= clock_) {
            const DelayedTask top = delayed_.top();
            delayed_.pop();
            auto it = delayedBodies_.find(top.seq);
            thread(top.tid).runQueue.push_back(std::move(it->second));
            delayedBodies_.erase(it);
        }

        // Round-robin across threads with runnable tasks.
        bool ran = false;
        for (size_t i = 0; i < threads_.size(); ++i) {
            const size_t idx = (rrCursor_ + i) % threads_.size();
            auto &queue = threads_[idx].runQueue;
            if (queue.empty())
                continue;
            Task task = std::move(queue.front());
            queue.pop_front();
            rrCursor_ = idx + 1;
            Ctx ctx(*this, static_cast<trace::ThreadId>(idx));
            task(ctx);
            ran = true;
            break;
        }
        if (ran)
            continue;

        // Nothing runnable: jump the clock to the next delayed task, or
        // stop when there is none (this models the idle gaps visible in
        // the paper's Figure 2 utilization plot).
        if (delayed_.empty())
            break;
        clock_ = std::max(clock_, delayed_.top().readyAt);
    }
}

trace::RegId
Machine::allocReg(trace::ThreadId tid)
{
    Thread &t = thread(tid);
    if (!t.freeRegs.empty()) {
        const trace::RegId reg = t.freeRegs.back();
        t.freeRegs.pop_back();
        return reg;
    }
    panic_if(t.nextReg == kNoReg - 1,
             "thread ", tid, " exhausted its virtual registers");
    return t.nextReg++;
}

void
Machine::freeReg(trace::ThreadId tid, trace::RegId reg)
{
    thread(tid).freeRegs.push_back(reg);
}

trace::Pc
Machine::sitePc(const std::source_location &loc)
{
    const SiteKey key{loc.file_name(), loc.line(), loc.column()};
    auto it = sites_.find(key);
    if (it != sites_.end())
        return it->second;
    const trace::Pc pc = nextPc_;
    nextPc_ += 4;
    sites_.emplace(key, pc);
    return pc;
}

void
Machine::emit(Record rec)
{
    panic_if(records_.size() >= config_.maxRecords,
             "trace exceeded the configured record cap");
    Thread &t = thread(rec.tid);
    if (!t.funcStack.empty())
        symtab_.assignPc(rec.pc, t.funcStack.back());
    if (!rec.isPseudo()) {
        ++instructionCount_;
        t.timeline.add(clock_, 1.0);
        ++clock_;
    }
    records_.push_back(rec);
    if (valueLog_)
        valueLog_->values.push_back(0);
}

void
Machine::enableValueLog()
{
    panic_if(!records_.empty(),
             "value log must be enabled before the first record");
    valueLog_ = std::make_unique<trace::ValueLog>();
}

void
Machine::noteValue(uint64_t v)
{
    if (valueLog_)
        valueLog_->values.back() = v;
}

void
Machine::noteBytes(uint64_t addr, uint64_t size)
{
    if (!valueLog_)
        return;
    auto &blob = valueLog_->blobs[valueLog_->values.size() - 1];
    const size_t offset = blob.size();
    blob.resize(offset + size);
    memory_.readBytes(addr, blob.data() + offset, size);
}

const TimeSeries &
Machine::threadTimeline(trace::ThreadId tid) const
{
    panic_if(tid >= threads_.size(), "bad thread id ", tid);
    return threads_[tid].timeline;
}

// ---- Ctx -------------------------------------------------------------------

namespace {

Record
baseRecord(trace::ThreadId tid, trace::Pc pc, RecordKind kind)
{
    Record rec;
    rec.tid = tid;
    rec.pc = pc;
    rec.kind = kind;
    return rec;
}

} // namespace

Value
Ctx::imm(uint64_t v, Loc loc)
{
    const trace::RegId rw = machine_.allocReg(tid_);
    Record rec = baseRecord(tid_, machine_.sitePc(loc), RecordKind::LoadImm);
    rec.rw = rw;
    machine_.emit(rec);
    machine_.noteValue(v);
    return Value(&machine_, tid_, rw, v);
}

Value
Ctx::copy(const Value &a, Loc loc)
{
    return alu1(a, a.get(), loc);
}

Value
Ctx::alu1(const Value &a, uint64_t result, Loc loc)
{
    const trace::RegId rw = machine_.allocReg(tid_);
    Record rec = baseRecord(tid_, machine_.sitePc(loc), RecordKind::Alu);
    rec.rr0 = a.reg();
    rec.rw = rw;
    machine_.emit(rec);
    machine_.noteValue(result);
    return Value(&machine_, tid_, rw, result);
}

Value
Ctx::alu2(const Value &a, const Value &b, uint64_t result, Loc loc)
{
    const trace::RegId rw = machine_.allocReg(tid_);
    Record rec = baseRecord(tid_, machine_.sitePc(loc), RecordKind::Alu);
    rec.rr0 = a.reg();
    rec.rr1 = b.reg();
    rec.rw = rw;
    machine_.emit(rec);
    machine_.noteValue(result);
    return Value(&machine_, tid_, rw, result);
}

Value
Ctx::alu3(const Value &a, const Value &b, const Value &c, uint64_t result,
          Loc loc)
{
    const trace::RegId rw = machine_.allocReg(tid_);
    Record rec = baseRecord(tid_, machine_.sitePc(loc), RecordKind::Alu);
    rec.rr0 = a.reg();
    rec.rr1 = b.reg();
    rec.rr2 = c.reg();
    rec.rw = rw;
    machine_.emit(rec);
    machine_.noteValue(result);
    return Value(&machine_, tid_, rw, result);
}

Value
Ctx::add(const Value &a, const Value &b, Loc loc)
{
    return alu2(a, b, a.get() + b.get(), loc);
}

Value
Ctx::sub(const Value &a, const Value &b, Loc loc)
{
    return alu2(a, b, a.get() - b.get(), loc);
}

Value
Ctx::mul(const Value &a, const Value &b, Loc loc)
{
    return alu2(a, b, a.get() * b.get(), loc);
}

Value
Ctx::udiv(const Value &a, const Value &b, Loc loc)
{
    return alu2(a, b, b.get() ? a.get() / b.get() : 0, loc);
}

Value
Ctx::umod(const Value &a, const Value &b, Loc loc)
{
    return alu2(a, b, b.get() ? a.get() % b.get() : 0, loc);
}

Value
Ctx::band(const Value &a, const Value &b, Loc loc)
{
    return alu2(a, b, a.get() & b.get(), loc);
}

Value
Ctx::bor(const Value &a, const Value &b, Loc loc)
{
    return alu2(a, b, a.get() | b.get(), loc);
}

Value
Ctx::bxor(const Value &a, const Value &b, Loc loc)
{
    return alu2(a, b, a.get() ^ b.get(), loc);
}

Value
Ctx::shl(const Value &a, const Value &b, Loc loc)
{
    return alu2(a, b, a.get() << (b.get() & 63), loc);
}

Value
Ctx::shr(const Value &a, const Value &b, Loc loc)
{
    return alu2(a, b, a.get() >> (b.get() & 63), loc);
}

Value
Ctx::addi(const Value &a, int64_t k, Loc loc)
{
    return alu1(a, a.get() + static_cast<uint64_t>(k), loc);
}

Value
Ctx::muli(const Value &a, uint64_t k, Loc loc)
{
    return alu1(a, a.get() * k, loc);
}

Value
Ctx::andi(const Value &a, uint64_t k, Loc loc)
{
    return alu1(a, a.get() & k, loc);
}

Value
Ctx::shli(const Value &a, unsigned k, Loc loc)
{
    return alu1(a, a.get() << (k & 63), loc);
}

Value
Ctx::shri(const Value &a, unsigned k, Loc loc)
{
    return alu1(a, a.get() >> (k & 63), loc);
}

Value
Ctx::eq(const Value &a, const Value &b, Loc loc)
{
    return alu2(a, b, a.get() == b.get() ? 1 : 0, loc);
}

Value
Ctx::ne(const Value &a, const Value &b, Loc loc)
{
    return alu2(a, b, a.get() != b.get() ? 1 : 0, loc);
}

Value
Ctx::ltu(const Value &a, const Value &b, Loc loc)
{
    return alu2(a, b, a.get() < b.get() ? 1 : 0, loc);
}

Value
Ctx::leu(const Value &a, const Value &b, Loc loc)
{
    return alu2(a, b, a.get() <= b.get() ? 1 : 0, loc);
}

Value
Ctx::gtu(const Value &a, const Value &b, Loc loc)
{
    return alu2(a, b, a.get() > b.get() ? 1 : 0, loc);
}

Value
Ctx::geu(const Value &a, const Value &b, Loc loc)
{
    return alu2(a, b, a.get() >= b.get() ? 1 : 0, loc);
}

Value
Ctx::eqi(const Value &a, uint64_t k, Loc loc)
{
    return alu1(a, a.get() == k ? 1 : 0, loc);
}

Value
Ctx::ltui(const Value &a, uint64_t k, Loc loc)
{
    return alu1(a, a.get() < k ? 1 : 0, loc);
}

Value
Ctx::isZero(const Value &a, Loc loc)
{
    return alu1(a, a.get() == 0 ? 1 : 0, loc);
}

Value
Ctx::select(const Value &cond, const Value &a, const Value &b, Loc loc)
{
    return alu3(cond, a, b, cond.get() ? a.get() : b.get(), loc);
}

Value
Ctx::load(uint64_t addr, unsigned size, Loc loc)
{
    const uint64_t value = machine_.mem().read(addr, size);
    const trace::RegId rw = machine_.allocReg(tid_);
    Record rec = baseRecord(tid_, machine_.sitePc(loc), RecordKind::Load);
    rec.addr = addr;
    rec.aux = size;
    rec.rw = rw;
    machine_.emit(rec);
    machine_.noteValue(value);
    return Value(&machine_, tid_, rw, value);
}

Value
Ctx::loadVia(const Value &base, int64_t offset, unsigned size, Loc loc)
{
    const uint64_t addr = base.get() + static_cast<uint64_t>(offset);
    const uint64_t value = machine_.mem().read(addr, size);
    const trace::RegId rw = machine_.allocReg(tid_);
    Record rec = baseRecord(tid_, machine_.sitePc(loc), RecordKind::Load);
    rec.addr = addr;
    rec.aux = size;
    rec.rr0 = base.reg();
    rec.rw = rw;
    machine_.emit(rec);
    machine_.noteValue(value);
    return Value(&machine_, tid_, rw, value);
}

void
Ctx::store(uint64_t addr, unsigned size, const Value &v, Loc loc)
{
    machine_.mem().write(addr, size, v.get());
    Record rec = baseRecord(tid_, machine_.sitePc(loc), RecordKind::Store);
    rec.addr = addr;
    rec.aux = size;
    rec.rr0 = v.reg();
    machine_.emit(rec);
    machine_.noteValue(v.get());
}

void
Ctx::storeVia(const Value &base, int64_t offset, unsigned size,
              const Value &v, Loc loc)
{
    const uint64_t addr = base.get() + static_cast<uint64_t>(offset);
    machine_.mem().write(addr, size, v.get());
    Record rec = baseRecord(tid_, machine_.sitePc(loc), RecordKind::Store);
    rec.addr = addr;
    rec.aux = size;
    rec.rr0 = v.reg();
    rec.rr1 = base.reg();
    machine_.emit(rec);
    machine_.noteValue(v.get());
}

bool
Ctx::branchIf(const Value &cond, Loc loc)
{
    const bool taken = cond.get() != 0;
    Record rec = baseRecord(tid_, machine_.sitePc(loc), RecordKind::Branch);
    rec.rr0 = cond.reg();
    if (taken)
        rec.flags |= trace::kFlagTaken;
    machine_.emit(rec);
    machine_.noteValue(taken ? 1 : 0);
    return taken;
}

Value
Ctx::syscall(uint32_t number, uint64_t result,
             std::span<const trace::MemRange> reads,
             std::span<const trace::MemRange> writes, Loc loc)
{
    const trace::RegId rw = machine_.allocReg(tid_);
    Record rec = baseRecord(tid_, machine_.sitePc(loc), RecordKind::Syscall);
    rec.aux = number;
    rec.rw = rw;
    machine_.emit(rec);
    machine_.noteValue(result);

    for (const auto &range : reads) {
        Record eff =
            baseRecord(tid_, rec.pc, RecordKind::SyscallRead);
        eff.addr = range.addr;
        eff.aux = static_cast<uint32_t>(range.size);
        machine_.emit(eff);
        machine_.noteBytes(range.addr, range.size);
    }
    for (const auto &range : writes) {
        Record eff =
            baseRecord(tid_, rec.pc, RecordKind::SyscallWrite);
        eff.addr = range.addr;
        eff.aux = static_cast<uint32_t>(range.size);
        machine_.emit(eff);
        machine_.noteBytes(range.addr, range.size);
    }
    return Value(&machine_, tid_, rw, result);
}

uint32_t
Ctx::marker(std::span<const trace::MemRange> ranges, Loc loc)
{
    const uint32_t ordinal = machine_.nextMarker_++;
    Record rec = baseRecord(tid_, machine_.sitePc(loc), RecordKind::Marker);
    rec.aux = ordinal;
    machine_.emit(rec);
    for (const auto &range : ranges)
        machine_.pixelCriteria_.add(ordinal, range.addr, range.size);
    // Snapshot the criterion bytes as the merged criteria set reports
    // them, so replay and recording agree on the blob layout.
    for (const auto &range : machine_.pixelCriteria_.forMarker(ordinal))
        machine_.noteBytes(range.addr, range.size);
    return ordinal;
}

// ---- TracedScope -----------------------------------------------------------

TracedScope::TracedScope(Ctx &ctx, trace::FuncId callee,
                         std::source_location loc)
    : machine_(ctx.machine()), tid_(ctx.tid()), callee_(callee)
{
    Record rec = baseRecord(tid_, machine_.sitePc(loc), RecordKind::Call);
    rec.addr = machine_.functionEntry(callee);
    machine_.emit(rec);
    machine_.thread(tid_).funcStack.push_back(callee);
}

TracedScope::TracedScope(Ctx &ctx, trace::FuncId callee, const Value &target,
                         std::source_location loc)
    : machine_(ctx.machine()), tid_(ctx.tid()), callee_(callee)
{
    Record rec = baseRecord(tid_, machine_.sitePc(loc), RecordKind::Call);
    rec.addr = machine_.functionEntry(callee);
    rec.flags |= trace::kFlagIndirect;
    rec.rr0 = target.reg();
    machine_.emit(rec);
    machine_.thread(tid_).funcStack.push_back(callee);
}

TracedScope::~TracedScope()
{
    auto &stack = machine_.thread(tid_).funcStack;
    panic_if(stack.empty() || stack.back() != callee_,
             "unbalanced traced function scopes");
    Record rec = baseRecord(tid_, machine_.funcRetPc_[callee_],
                            RecordKind::Ret);
    machine_.emit(rec);
    stack.pop_back();
}

} // namespace sim
} // namespace webslice
