#include "staticdep/dataflow.hh"

#include <algorithm>
#include <deque>

#include "support/logging.hh"
#include "support/metrics.hh"

namespace webslice {
namespace staticdep {

using graph::Cfg;
using graph::NodeId;
using trace::FuncId;
using trace::RegId;

namespace {

void
mergeSorted(std::vector<RegId> &into, const std::vector<RegId> &from)
{
    if (from.empty())
        return;
    std::vector<RegId> merged;
    merged.reserve(into.size() + from.size());
    std::set_union(into.begin(), into.end(), from.begin(), from.end(),
                   std::back_inserter(merged));
    into.swap(merged);
}

std::vector<RegId>
sortedUnique(std::vector<RegId> regs)
{
    std::sort(regs.begin(), regs.end());
    regs.erase(std::unique(regs.begin(), regs.end()), regs.end());
    return regs;
}

/** Dense local register numbering for one function's liveness pass. */
struct RegIndex
{
    std::unordered_map<RegId, uint32_t> toBit;
    std::vector<RegId> toReg;

    uint32_t
    bitFor(RegId reg)
    {
        auto [it, fresh] = toBit.emplace(reg, toReg.size());
        if (fresh)
            toReg.push_back(reg);
        return it->second;
    }
};

struct BitRow
{
    static size_t
    words(size_t bits)
    {
        return (bits + 63) / 64;
    }
};

/**
 * Backward liveness over one function's CFG. Returns the registers live
 * at the virtual entry (the function's liveIn summary). Sets `widened`
 * when a callee's summary is widened (the local universe would be every
 * register).
 */
std::vector<RegId>
funcLiveIn(const StaticModel &model, const Summaries &summaries, FuncId func,
           bool &widened, int &iterations)
{
    const FuncModel &fm = model.funcModel(func);
    const Cfg &cfg = *fm.cfg;
    const size_t n = cfg.nodeCount();

    // Local universe: every register mentioned by an instruction plus
    // every callee's current liveIn.
    RegIndex regs;
    for (size_t node = 0; node < n; ++node) {
        const StaticInstr &instr = fm.instrs[node];
        for (const RegId r : instr.uses)
            regs.bitFor(r);
        for (const RegId r : instr.defs)
            regs.bitFor(r);
        for (const FuncId callee : fm.callees[node]) {
            const RegSummary &cs = summaries.of(callee);
            if (cs.widened) {
                widened = true;
                return {};
            }
            for (const RegId r : cs.liveIn)
                regs.bitFor(r);
        }
    }
    const size_t bits = regs.toReg.size();
    if (bits == 0)
        return {};
    const size_t words = BitRow::words(bits);

    // gen/kill per node. Calls gen the callee's liveIn and kill nothing
    // (the callee may not write); only uniform single-register definers
    // kill (StaticInstr::strongDef).
    std::vector<std::vector<uint32_t>> gen(n);
    std::vector<int32_t> kill(n, -1);
    for (size_t node = 0; node < n; ++node) {
        const StaticInstr &instr = fm.instrs[node];
        for (const RegId r : instr.uses)
            gen[node].push_back(regs.bitFor(r));
        for (const FuncId callee : fm.callees[node])
            for (const RegId r : summaries.of(callee).liveIn)
                gen[node].push_back(regs.bitFor(r));
        // strongDef is a default-true accumulator, so never-executed
        // nodes (virtual entry/exit, pcs past the window) carry it with
        // an empty def list — only a real single definer kills.
        if (instr.strongDef && !instr.defs.empty() &&
            fm.callees[node].empty())
            kill[node] = static_cast<int32_t>(regs.bitFor(instr.defs[0]));
    }

    std::vector<uint64_t> live_in(n * words, 0);
    std::vector<uint64_t> scratch(words);

    std::deque<NodeId> worklist;
    std::vector<uint8_t> queued(n, 1);
    for (size_t node = n; node-- > 0;)
        worklist.push_back(static_cast<NodeId>(node));

    while (!worklist.empty()) {
        const NodeId node = worklist.front();
        worklist.pop_front();
        queued[node] = 0;
        ++iterations;

        // OUT = union of successors' IN.
        std::fill(scratch.begin(), scratch.end(), 0);
        for (const NodeId succ : cfg.succs[node]) {
            const uint64_t *row = &live_in[size_t(succ) * words];
            for (size_t w = 0; w < words; ++w)
                scratch[w] |= row[w];
        }
        // IN = (OUT \ kill) | gen.
        if (kill[node] >= 0)
            scratch[size_t(kill[node]) / 64] &=
                ~(uint64_t{1} << (kill[node] % 64));
        for (const uint32_t bit : gen[node])
            scratch[bit / 64] |= uint64_t{1} << (bit % 64);

        uint64_t *row = &live_in[size_t(node) * words];
        bool changed = false;
        for (size_t w = 0; w < words; ++w) {
            if (row[w] != scratch[w]) {
                row[w] = scratch[w];
                changed = true;
            }
        }
        if (changed) {
            for (const NodeId pred : cfg.preds[node]) {
                if (!queued[pred]) {
                    queued[pred] = 1;
                    worklist.push_back(pred);
                }
            }
        }
    }

    std::vector<RegId> out;
    const uint64_t *entry = &live_in[size_t(Cfg::kEntry) * words];
    for (size_t bit = 0; bit < bits; ++bit) {
        if ((entry[bit / 64] >> (bit % 64)) & 1)
            out.push_back(regs.toReg[bit]);
    }
    return sortedUnique(std::move(out));
}

} // namespace

Summaries
computeSummaries(const StaticModel &model)
{
    Summaries out;
    for (const FuncId func : model.order)
        out.byFunc.emplace(func, RegSummary{});

    // Layer 1: mayDef, iterated over the (possibly cyclic) call graph.
    for (const FuncId func : model.order) {
        const FuncModel &fm = model.funcModel(func);
        std::vector<RegId> defs;
        for (const StaticInstr &instr : fm.instrs)
            for (const RegId r : instr.defs)
                defs.push_back(r);
        out.byFunc[func].mayDef = sortedUnique(std::move(defs));
    }
    for (;; ++out.mayDefIterations) {
        if (out.mayDefIterations >= kSummaryIterationCap) {
            warn("staticdep: mayDef fixpoint hit the iteration cap; "
                 "widening all summaries");
            for (auto &[func, summary] : out.byFunc)
                summary.widened = true;
            out.widened = true;
            break;
        }
        bool changed = false;
        for (const FuncId func : model.order) {
            const FuncModel &fm = model.funcModel(func);
            RegSummary &summary = out.byFunc[func];
            const size_t before = summary.mayDef.size();
            for (const auto &callees : fm.callees)
                for (const FuncId callee : callees)
                    mergeSorted(summary.mayDef, out.of(callee).mayDef);
            changed |= summary.mayDef.size() != before;
        }
        if (!changed)
            break;
    }

    // Layer 2: liveIn, an outer fixpoint whose inner step is a full
    // backward liveness pass per function (callee liveIn feeds call-node
    // gen sets, so growth propagates up the call graph).
    if (!out.widened) {
        for (;; ++out.livenessIterations) {
            if (out.livenessIterations >= kSummaryIterationCap) {
                warn("staticdep: liveness fixpoint hit the iteration cap; "
                     "widening all summaries");
                for (auto &[func, summary] : out.byFunc)
                    summary.widened = true;
                out.widened = true;
                break;
            }
            bool changed = false;
            int inner = 0;
            for (const FuncId func : model.order) {
                bool widened = false;
                std::vector<RegId> live =
                    funcLiveIn(model, out, func, widened, inner);
                RegSummary &summary = out.byFunc[func];
                if (widened) {
                    if (!summary.widened) {
                        summary.widened = true;
                        out.widened = true;
                        changed = true;
                    }
                    continue;
                }
                if (live != summary.liveIn) {
                    // Liveness gen sets only grow, so this is monotone.
                    summary.liveIn = std::move(live);
                    changed = true;
                }
            }
            if (!changed)
                break;
        }
    }

    MetricRegistry::global()
        .counter("staticdep.summary_iterations")
        .add(static_cast<uint64_t>(out.mayDefIterations) +
             static_cast<uint64_t>(out.livenessIterations));
    if (out.widened)
        MetricRegistry::global().counter("staticdep.summary_widenings").add();
    return out;
}

FuncDataflow
computeReachingDefs(const StaticModel &model, const Summaries &summaries,
                    FuncId func, size_t bit_budget)
{
    FuncDataflow df;
    df.func = func;
    const FuncModel &fm = model.funcModel(func);
    const Cfg &cfg = *fm.cfg;
    const size_t n = cfg.nodeCount();

    // --- Definition universe -------------------------------------------
    auto addDef = [&](NodeId node, RegId reg, FuncDataflow::DefSrc src) {
        const uint32_t idx = static_cast<uint32_t>(df.defs.size());
        df.defs.push_back({node, reg, src});
        if (src == FuncDataflow::DefSrc::Wildcard)
            df.wildcardDefs.push_back(idx);
        else if (src == FuncDataflow::DefSrc::Entry)
            df.entryDefOf.emplace(reg, idx);
        else
            df.defsOfReg[reg].push_back(idx);
        return idx;
    };

    // Per-node gen lists (def indices born at that node).
    std::vector<std::vector<uint32_t>> gen(n);

    for (size_t node = 0; node < n; ++node) {
        const StaticInstr &instr = fm.instrs[node];
        for (const RegId r : instr.defs)
            gen[node].push_back(addDef(static_cast<NodeId>(node), r,
                                       FuncDataflow::DefSrc::Instr));
        if (fm.callees[node].empty())
            continue;
        bool wild = false;
        std::vector<RegId> proxy;
        for (const FuncId callee : fm.callees[node]) {
            const RegSummary &cs = summaries.of(callee);
            if (cs.widened) {
                wild = true;
                break;
            }
            for (const RegId r : cs.mayDef)
                proxy.push_back(r);
        }
        if (wild) {
            gen[node].push_back(addDef(static_cast<NodeId>(node),
                                       trace::kNoReg,
                                       FuncDataflow::DefSrc::Wildcard));
        } else {
            for (const RegId r : sortedUnique(std::move(proxy)))
                gen[node].push_back(
                    addDef(static_cast<NodeId>(node), r,
                           FuncDataflow::DefSrc::CallSummary));
        }
    }

    // One Entry def per register that has any definition site (registers
    // without any site short-circuit to Entry inside forEachDefReaching).
    {
        std::vector<RegId> defined;
        defined.reserve(df.defsOfReg.size());
        for (const auto &[reg, idxs] : df.defsOfReg)
            defined.push_back(reg);
        for (const RegId r : sortedUnique(std::move(defined)))
            gen[Cfg::kEntry].push_back(
                addDef(graph::kNoNode, r, FuncDataflow::DefSrc::Entry));
    }

    const size_t bits = df.defs.size();
    if (bits == 0)
        return df;
    df.words = (bits + 63) / 64;

    if (n * bits > bit_budget) {
        // Too big for node-major bitsets: fall back to "every definition
        // reaches every node". Strictly more edges, still sound.
        df.flowInsensitive = true;
        MetricRegistry::global().counter("staticdep.rd_fallbacks").add();
        return df;
    }

    // Kill lists: a uniform single-register definer kills every other
    // definition of that register, including its Entry def. Call-summary
    // proxies and wildcards are may-defs and never kill (nor are they
    // ever killed — a later strong def may precede an earlier proxy on
    // some other path; dropping kills only adds facts).
    std::vector<std::vector<uint32_t>> kill(n);
    for (size_t node = 0; node < n; ++node) {
        const StaticInstr &instr = fm.instrs[node];
        if (!instr.strongDef || instr.defs.empty() ||
            !fm.callees[node].empty())
            continue;
        const RegId r = instr.defs[0];
        for (const uint32_t d : df.defsOfReg[r]) {
            if (df.defs[d].node != static_cast<NodeId>(node))
                kill[node].push_back(d);
        }
        kill[node].push_back(df.entryDefOf.at(r));
    }

    df.in.assign(n * df.words, 0);
    std::vector<uint64_t> out(n * df.words, 0);
    std::vector<uint64_t> scratch(df.words);

    std::deque<NodeId> worklist;
    std::vector<uint8_t> queued(n, 1);
    for (size_t node = 0; node < n; ++node)
        worklist.push_back(static_cast<NodeId>(node));

    while (!worklist.empty()) {
        const NodeId node = worklist.front();
        worklist.pop_front();
        queued[node] = 0;
        ++df.iterations;

        // IN = union of predecessors' OUT.
        std::fill(scratch.begin(), scratch.end(), 0);
        for (const NodeId pred : cfg.preds[node]) {
            const uint64_t *row = &out[size_t(pred) * df.words];
            for (size_t w = 0; w < df.words; ++w)
                scratch[w] |= row[w];
        }
        uint64_t *in_row = &df.in[size_t(node) * df.words];
        std::copy(scratch.begin(), scratch.end(), in_row);

        // OUT = (IN \ kill) | gen.
        for (const uint32_t d : kill[node])
            scratch[d / 64] &= ~(uint64_t{1} << (d % 64));
        for (const uint32_t d : gen[node])
            scratch[d / 64] |= uint64_t{1} << (d % 64);

        uint64_t *out_row = &out[size_t(node) * df.words];
        bool changed = false;
        for (size_t w = 0; w < df.words; ++w) {
            if (out_row[w] != scratch[w]) {
                out_row[w] = scratch[w];
                changed = true;
            }
        }
        if (changed) {
            for (const NodeId succ : cfg.succs[node]) {
                if (!queued[succ]) {
                    queued[succ] = 1;
                    worklist.push_back(succ);
                }
            }
        }
    }

    MetricRegistry::global()
        .counter("staticdep.rd_iterations")
        .add(static_cast<uint64_t>(df.iterations));
    return df;
}

} // namespace staticdep
} // namespace webslice
