/**
 * @file
 * Static program model over dynamically reconstructed CFGs.
 *
 * The dynamic slicer answers "which executed instances were necessary";
 * to say which of the rest a compiler could have removed *without running
 * the page*, we need a static over-approximation of dependence to compare
 * against. This module builds the instruction-level facts that the static
 * fixpoints (staticdep/dataflow.hh) and the static backward slicer
 * (staticdep/slice.hh) consume:
 *
 *  - per (function, CFG node) merged instruction info: record kind bits,
 *    the registers the dynamic slicer would gen (use) and kill (define)
 *    at that pc, and conservative page-granular memory footprints with a
 *    per-site widening cap;
 *  - the dynamically observed call graph (call site -> callee set, and
 *    its inverse), return nodes per function;
 *  - seed site lists (Marker / Syscall nodes) and a pc -> sites index.
 *
 * Everything is derived from the same trace the dynamic slice analyzed,
 * so every dynamic memory access is inside some site's static footprint
 * and every dynamic call edge is a static call edge — the base facts the
 * containment invariant (dynamic slice ⊆ static slice) rests on.
 */

#ifndef WEBSLICE_STATICDEP_MODEL_HH
#define WEBSLICE_STATICDEP_MODEL_HH

#include <algorithm>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "graph/cfg.hh"
#include "trace/record.hh"

namespace webslice {
namespace staticdep {

/** Memory is summarized at page granularity; finer tracking buys little
 *  for a may-analysis and costs a lot on scatter-heavy sites. */
constexpr unsigned kPageShift = 12;

inline uint64_t
pageOf(uint64_t addr)
{
    return addr >> kPageShift;
}

/**
 * Conservative footprint of one site's memory behaviour: a sorted set of
 * 4 KiB pages, widened to "all of memory" once a site touches more
 * distinct pages than the cap (a site iterating a large heap would
 * otherwise make the page sets — and the static slice walk — scale with
 * the data, not the program).
 */
struct PageSummary
{
    std::vector<uint64_t> pages; ///< Sorted, unique; empty when widened.
    bool widened = false;

    void add(uint64_t addr, uint64_t size, size_t cap);

    bool empty() const { return pages.empty() && !widened; }

    /** May this footprint touch the given page? */
    bool
    covers(uint64_t page) const
    {
        if (widened)
            return true;
        return std::binary_search(pages.begin(), pages.end(), page);
    }
};

/** Kind bits per site; a pc observed under several kinds merges them. */
enum SiteKindBits : uint16_t
{
    kSiteAlu = 1 << 0, ///< Alu or LoadImm.
    kSiteLoad = 1 << 1,
    kSiteStore = 1 << 2,
    kSiteBranch = 1 << 3,
    kSiteJump = 1 << 4,
    kSiteCall = 1 << 5,
    kSiteRet = 1 << 6,
    kSiteSyscall = 1 << 7,
    kSiteMarker = 1 << 8,
};

/**
 * One static instruction site: a (function, pc) pair with the union of
 * register and memory behaviour across every dynamic instance. `uses`
 * mirror exactly the registers the dynamic slicer gens when an instance
 * joins the slice; `defs` mirror what it kills.
 */
struct StaticInstr
{
    trace::Pc pc = trace::kNoPc;
    uint16_t kinds = 0;    ///< SiteKindBits.
    uint64_t executed = 0; ///< Dynamic instances inside the window.

    std::vector<trace::RegId> uses; ///< Unique, unordered (tiny).
    std::vector<trace::RegId> defs; ///< Unique; >1 only on merged kinds.

    /**
     * True when every dynamic instance of this site defined the same
     * single register — the only case where a reaching-definitions or
     * liveness kill is sound (a site that sometimes defines nothing, or
     * different registers, must be treated as a may-def).
     */
    bool strongDef = true;

    PageSummary memReads;  ///< Load footprints + syscall read effects.
    PageSummary memWrites; ///< Store footprints + syscall write effects.

    bool seen() const { return executed != 0; }
};

/** A call site (or any site) addressed as (function, node). */
struct SiteRef
{
    trace::FuncId func = trace::kNoFunc;
    graph::NodeId node = graph::kNoNode;

    bool operator==(const SiteRef &) const = default;
};

/** One function's static model, parallel to its CFG's node array. */
struct FuncModel
{
    trace::FuncId func = trace::kNoFunc;
    const graph::Cfg *cfg = nullptr;

    std::vector<StaticInstr> instrs; ///< Indexed by NodeId.

    /** Per-node callee function sets; empty unless the node is a call. */
    std::vector<std::vector<trace::FuncId>> callees;

    /** Nodes that executed a Ret record (edge to the virtual exit). */
    std::vector<graph::NodeId> retNodes;
};

/** Build-time knobs. */
struct ModelOptions
{
    /** Model the records in [0, endIndex) — must match the dynamic
     *  slice's analyzed window for the containment check to be fair. */
    size_t endIndex = SIZE_MAX;

    /** Distinct pages a single site may track before widening to top. */
    size_t pageCapPerSite = 64;
};

/** The whole-program static model. */
struct StaticModel
{
    const graph::CfgSet *cfgs = nullptr;
    ModelOptions options;

    /** Deterministic function order (CfgSet::functionsByEntryPc). */
    std::vector<trace::FuncId> order;

    std::unordered_map<trace::FuncId, FuncModel> funcs;

    /** Inverse call graph: callee -> call sites observed to enter it. */
    std::unordered_map<trace::FuncId, std::vector<SiteRef>> callersOf;

    /** pc -> every (function, node) site carrying that pc. Branch pcs
     *  can appear in several functions (pending sets are pc-keyed and
     *  per-thread, so a dynamic match may cross functions); the static
     *  walk must mirror that by fanning control edges out to all of
     *  them. */
    std::unordered_map<trace::Pc, std::vector<SiteRef>> sitesOfPc;

    /** Seed sites: every Marker node / every Syscall node. */
    std::vector<SiteRef> markerSites;
    std::vector<SiteRef> syscallSites;

    /** End (exclusive) of the modeled record window. */
    size_t windowEnd = 0;

    /** Distinct executed (function, pc) sites — the static universe the
     *  slice is measured against. */
    uint64_t siteCount = 0;

    /** Sites whose read or write footprint hit the widening cap. */
    uint64_t widenedSites = 0;

    const FuncModel &funcModel(trace::FuncId f) const { return funcs.at(f); }

    const StaticInstr *
    instrAt(trace::FuncId f, graph::NodeId node) const
    {
        auto it = funcs.find(f);
        if (it == funcs.end())
            return nullptr;
        if (node < 0 ||
            static_cast<size_t>(node) >= it->second.instrs.size())
            return nullptr;
        return &it->second.instrs[node];
    }
};

/**
 * Build the static model from a trace window and its forward-pass CFGs.
 * Single pass over the records; every record must map onto a CFG node
 * (guaranteed when `cfgs` was built from the same records).
 */
StaticModel buildStaticModel(std::span<const trace::Record> records,
                             const graph::CfgSet &cfgs,
                             const ModelOptions &options = {});

} // namespace staticdep
} // namespace webslice

#endif // WEBSLICE_STATICDEP_MODEL_HH
