/**
 * @file
 * Static dataflow fixpoints over the model: interprocedural register
 * summaries and per-function reaching definitions.
 *
 * Two layers, both classic iterative may-analyses:
 *
 *  1. Function summaries, computed bottom-up over the dynamically
 *     observed call graph to a fixpoint (the graph is cyclic under
 *     recursion, so "bottom-up" really means "iterate until stable"):
 *       - mayDef: registers a call to the function may leave modified
 *         (its own defs plus, transitively, its callees');
 *       - liveIn: registers the function may read before writing them
 *         (backward liveness over its CFG, with call nodes importing
 *         the callee's liveIn and killing nothing).
 *     A per-layer iteration cap guards termination structurally; hitting
 *     it widens the remaining summaries to "all registers" (sound).
 *
 *  2. Per-function reaching definitions over a numbered definition
 *     universe: one Entry definition per referenced register (the value
 *     the caller passed in), one Instr definition per (node, defined
 *     register), and one CallSummary proxy per (call node, register in a
 *     callee's mayDef) — the proxy stands for "some instruction inside
 *     the call wrote this". Call nodes whose callee summary widened get
 *     a single wildcard definition standing for every register. Bitsets
 *     are node-major; a per-function size budget falls back to a
 *     flow-insensitive answer (every definition reaches every node),
 *     which only adds edges — still sound.
 *
 * The static slicer (staticdep/slice.hh) drives queries through
 * forEachDefReaching(); everything here is deliberately exposed so the
 * fixpoint tests can assert termination, monotonicity, and exact
 * reaching sets on hand-built CFGs.
 */

#ifndef WEBSLICE_STATICDEP_DATAFLOW_HH
#define WEBSLICE_STATICDEP_DATAFLOW_HH

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "staticdep/model.hh"

namespace webslice {
namespace staticdep {

/** Interprocedural register summary of one function. */
struct RegSummary
{
    /** Registers a call may leave modified (sorted, unique). */
    std::vector<trace::RegId> mayDef;

    /** Registers the function may read before writing (sorted, unique). */
    std::vector<trace::RegId> liveIn;

    /** Iteration cap hit: treat both sets as "all registers". */
    bool widened = false;

    bool
    mayDefine(trace::RegId reg) const
    {
        if (widened)
            return true;
        return std::binary_search(mayDef.begin(), mayDef.end(), reg);
    }

    bool
    mayReadOnEntry(trace::RegId reg) const
    {
        if (widened)
            return true;
        return std::binary_search(liveIn.begin(), liveIn.end(), reg);
    }
};

/** All function summaries plus fixpoint diagnostics. */
struct Summaries
{
    std::unordered_map<trace::FuncId, RegSummary> byFunc;

    int mayDefIterations = 0;
    int livenessIterations = 0;
    bool widened = false; ///< Any summary hit the iteration cap.

    const RegSummary &of(trace::FuncId f) const { return byFunc.at(f); }
};

/** Outer fixpoint iteration cap (each layer); far above any real need —
 *  monotone frameworks converge in O(height) passes. */
constexpr int kSummaryIterationCap = 64;

Summaries computeSummaries(const StaticModel &model);

/** Reaching definitions for one function. */
struct FuncDataflow
{
    enum class DefSrc : uint8_t
    {
        Entry,       ///< The caller's value at function entry.
        Instr,       ///< A concrete defining instruction node.
        CallSummary, ///< Some instruction inside a call at `node`.
        Wildcard,    ///< CallSummary for a widened callee: every register.
    };

    struct Def
    {
        graph::NodeId node = graph::kNoNode; ///< kNoNode for Entry defs.
        trace::RegId reg = trace::kNoReg;    ///< kNoReg for Wildcard defs.
        DefSrc src = DefSrc::Entry;
    };

    trace::FuncId func = trace::kNoFunc;
    std::vector<Def> defs;

    /** reg -> indices into defs (excluding wildcards), ascending. */
    std::unordered_map<trace::RegId, std::vector<uint32_t>> defsOfReg;

    /** reg -> index of its Entry def (every reg in defsOfReg has one). */
    std::unordered_map<trace::RegId, uint32_t> entryDefOf;

    /** Indices of Wildcard defs. */
    std::vector<uint32_t> wildcardDefs;

    /** Node-major IN bitsets: in[node * words .. ), bit = def index. */
    size_t words = 0;
    std::vector<uint64_t> in;

    /** Budget fallback: every def reaches every node. */
    bool flowInsensitive = false;

    int iterations = 0;

    bool
    reaches(graph::NodeId node, uint32_t def) const
    {
        if (flowInsensitive)
            return true;
        return (in[static_cast<size_t>(node) * words + def / 64] >>
                (def % 64)) &
               1;
    }

    /** Does any definition site of `reg` exist in this function? */
    bool
    hasReg(trace::RegId reg) const
    {
        return defsOfReg.find(reg) != defsOfReg.end();
    }

    /**
     * Visit every definition of `reg` that may reach the IN of `node`.
     * When `reg` has no definition sites here, the caller must treat the
     * Entry value as reaching (wildcard defs are still visited — a
     * widened callee may have written any register).
     */
    template <typename Fn>
    void
    forEachDefReaching(graph::NodeId node, trace::RegId reg, Fn &&fn) const
    {
        auto it = defsOfReg.find(reg);
        if (it != defsOfReg.end()) {
            for (const uint32_t d : it->second) {
                if (reaches(node, d))
                    fn(defs[d]);
            }
            const uint32_t entry = entryDefOf.at(reg);
            if (reaches(node, entry))
                fn(defs[entry]);
        } else {
            // No kills of this reg anywhere: entry always reaches.
            fn(Def{graph::kNoNode, reg, DefSrc::Entry});
        }
        for (const uint32_t w : wildcardDefs) {
            if (reaches(node, w))
                fn(defs[w]);
        }
    }
};

/** Per-function bitset budget (bits = nodes * defs) before the
 *  flow-insensitive fallback; 2^26 bits = 8 MiB per function. */
constexpr size_t kDefaultBitBudget = size_t{1} << 26;

FuncDataflow computeReachingDefs(const StaticModel &model,
                                 const Summaries &summaries,
                                 trace::FuncId func,
                                 size_t bit_budget = kDefaultBitBudget);

} // namespace staticdep
} // namespace webslice

#endif // WEBSLICE_STATICDEP_DATAFLOW_HH
