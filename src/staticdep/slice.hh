/**
 * @file
 * Static backward slicing over the static PDG.
 *
 * The static program dependence graph is never materialized; its edges
 * are enumerated on demand while a worklist walks backward from the
 * criteria sites:
 *
 *  - DATA edges come from the reaching-definitions answers (register
 *    uses -> defining sites, with Entry definitions recursing into every
 *    observed caller and call-summary proxies recursing into the
 *    callee's exit), and from the memory may-overlap relation (a needed
 *    page wakes every site whose write footprint covers it);
 *  - CONTROL edges reuse the sealed ControlDepMap (the same
 *    Ferrante/Ottenstein/Warren map the dynamic slicer consults), plus
 *    the call-structure edges the dynamic slicer realizes through frame
 *    contribution tracking: an included instruction pulls in its
 *    function's observed call sites and return sites.
 *
 * Every included site records *how* it was reached (seed / data /
 * control bits), which is what the report's data-vs-control sub-split
 * reads. The result is a sound over-approximation of the dynamic slice
 * computed from the same trace window — the containment invariant
 * dynamic ⊆ static is asserted by webslice-check and the webslice-static
 * CLI, and exercised by the fuzz tests.
 */

#ifndef WEBSLICE_STATICDEP_SLICE_HH
#define WEBSLICE_STATICDEP_SLICE_HH

#include <iosfwd>
#include <span>
#include <unordered_map>

#include "graph/control_deps.hh"
#include "slicer/slicer.hh"
#include "staticdep/dataflow.hh"
#include "staticdep/model.hh"
#include "trace/criteria.hh"

namespace webslice {
namespace staticdep {

/** Model + fixpoints + control dependences: everything the walk needs. */
struct StaticAnalysis
{
    StaticModel model;
    Summaries summaries;
    std::unordered_map<trace::FuncId, FuncDataflow> rd;
    const graph::ControlDepMap *deps = nullptr;

    /** Reaching-definition passes that fell back to flow-insensitive. */
    uint64_t rdFallbacks = 0;
};

/**
 * Build the full static analysis for a trace window. `deps` must outlive
 * the returned object; it is sealed here so later walks are read-only.
 */
StaticAnalysis buildStaticAnalysis(std::span<const trace::Record> records,
                                   const graph::CfgSet &cfgs,
                                   const graph::ControlDepMap &deps,
                                   const ModelOptions &options = {});

/** How an included site was reached (bits accumulate across paths). */
enum ReachBits : uint8_t
{
    kReachSeed = 1 << 0,    ///< A criteria site (marker / syscall).
    kReachData = 1 << 1,    ///< Via a register or memory DATA edge.
    kReachControl = 1 << 2, ///< Via a CONTROL (branch or call) edge.
};

struct StaticSliceOptions
{
    slicer::CriteriaMode mode = slicer::CriteriaMode::PixelBuffer;

    /** Ablation knobs; must match the dynamic slice being compared. */
    bool includeControlDeps = true;
    bool includeRegisterDeps = true;

    /** Distinct demanded pages before the needed-set widens to "all". */
    size_t neededPageCap = size_t{1} << 16;
};

/** Output of one static backward walk. */
struct StaticSliceResult
{
    /** (func << 32 | pc) -> ReachBits for every included site. */
    std::unordered_map<uint64_t, uint8_t> byFuncPc;

    static uint64_t
    key(trace::FuncId func, trace::Pc pc)
    {
        return (static_cast<uint64_t>(func) << 32) | pc;
    }

    /** 0 when the site is outside the static slice. */
    uint8_t
    reasonOf(trace::FuncId func, trace::Pc pc) const
    {
        auto it = byFuncPc.find(key(func, pc));
        return it == byFuncPc.end() ? 0 : it->second;
    }

    bool
    contains(trace::FuncId func, trace::Pc pc) const
    {
        return reasonOf(func, pc) != 0;
    }

    /** Sites in the slice / in the whole model. */
    uint64_t includedSites = 0;
    uint64_t siteUniverse = 0;

    /** Edge totals by tag (each edge counted once). */
    uint64_t dataEdges = 0;
    uint64_t controlEdges = 0;
    uint64_t callEdges = 0; ///< Call-structure subset of CONTROL.

    /** Memory demand diagnostics. */
    uint64_t neededPages = 0;
    bool neededWidened = false;

    /** Walk diagnostics. */
    uint64_t rdQueries = 0;
    uint64_t entryPropagations = 0;
    uint64_t exitQueries = 0;

    double
    slicePercent() const
    {
        if (siteUniverse == 0)
            return 0.0;
        return 100.0 * static_cast<double>(includedSites) /
               static_cast<double>(siteUniverse);
    }
};

/** Walk the static PDG backward from the mode's criteria sites. */
StaticSliceResult computeStaticSlice(const StaticAnalysis &analysis,
                                     const trace::CriteriaSet &criteria,
                                     const StaticSliceOptions &options = {});

/**
 * Dump the static PDG node table: every site in deterministic order with
 * its kinds, uses/defs, footprints, callees, and — when a result is
 * given — its slice membership and reach bits.
 */
void dumpPdg(std::ostream &os, const StaticAnalysis &analysis,
             const trace::SymbolTable &symtab,
             const StaticSliceResult *result = nullptr);

/** Publish one walk's totals to the global metric registry. */
void publishStaticSliceMetrics(const StaticSliceResult &result);

} // namespace staticdep
} // namespace webslice

#endif // WEBSLICE_STATICDEP_SLICE_HH
