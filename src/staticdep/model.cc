#include "staticdep/model.hh"

#include <algorithm>

#include "support/logging.hh"
#include "support/metrics.hh"

namespace webslice {
namespace staticdep {

using graph::NodeId;
using trace::FuncId;
using trace::Record;
using trace::RecordKind;
using trace::RegId;

void
PageSummary::add(uint64_t addr, uint64_t size, size_t cap)
{
    if (widened || size == 0)
        return;
    const uint64_t first = pageOf(addr);
    const uint64_t last = pageOf(addr + size - 1);
    for (uint64_t page = first;; ++page) {
        auto it = std::lower_bound(pages.begin(), pages.end(), page);
        if (it == pages.end() || *it != page) {
            if (pages.size() >= cap) {
                widened = true;
                pages.clear();
                pages.shrink_to_fit();
                return;
            }
            pages.insert(it, page);
        }
        if (page == last)
            break;
    }
}

namespace {

void
addReg(std::vector<RegId> &regs, RegId reg)
{
    if (reg == trace::kNoReg)
        return;
    if (std::find(regs.begin(), regs.end(), reg) != regs.end())
        return;
    regs.push_back(reg);
}

void
addSite(std::vector<SiteRef> &sites, SiteRef site)
{
    if (std::find(sites.begin(), sites.end(), site) != sites.end())
        return;
    sites.push_back(site);
}

} // namespace

StaticModel
buildStaticModel(std::span<const Record> records, const graph::CfgSet &cfgs,
                 const ModelOptions &options)
{
    StaticModel model;
    model.cfgs = &cfgs;
    model.options = options;
    model.windowEnd = std::min(options.endIndex, records.size());
    model.order = cfgs.functionsByEntryPc();

    for (const FuncId func : model.order) {
        FuncModel fm;
        fm.func = func;
        fm.cfg = &cfgs.byFunc.at(func);
        fm.instrs.resize(fm.cfg->nodeCount());
        fm.callees.resize(fm.cfg->nodeCount());
        model.funcs.emplace(func, std::move(fm));
    }

    // Per-thread carry state: the call site waiting for its callee (the
    // function of the next same-thread record), and the syscall site the
    // next pseudo-records attribute their memory effects to.
    std::unordered_map<trace::ThreadId, SiteRef> pendingCall;
    std::unordered_map<trace::ThreadId, SiteRef> lastSyscall;

    const size_t cap = options.pageCapPerSite;

    for (size_t i = 0; i < model.windowEnd; ++i) {
        const Record &rec = records[i];

        if (rec.isPseudo()) {
            auto it = lastSyscall.find(rec.tid);
            if (it == lastSyscall.end())
                continue; // orphan pseudo; the graph linter flags these
            FuncModel &fm = model.funcs.at(it->second.func);
            StaticInstr &site = fm.instrs[it->second.node];
            const bool was_widened =
                site.memReads.widened || site.memWrites.widened;
            if (rec.kind == RecordKind::SyscallRead)
                site.memReads.add(rec.addr, rec.aux, cap);
            else
                site.memWrites.add(rec.addr, rec.aux, cap);
            if (!was_widened &&
                (site.memReads.widened || site.memWrites.widened))
                ++model.widenedSites;
            continue;
        }

        const FuncId func = cfgs.funcOf[i];
        FuncModel &fm = model.funcs.at(func);
        const NodeId node = fm.cfg->findNode(rec.pc);
        if (node == graph::kNoNode) {
            // Impossible when the CFGs came from this trace; be loud
            // rather than silently under-approximating.
            fatal("staticdep: record ", i, " pc ", rec.pc,
                  " has no CFG node in function ", func);
        }

        // Resolve the callee of the previous record's Call: the CFG
        // builder pushes the callee frame before attributing the next
        // record, so funcOf of this record names it (even when the
        // callee immediately returns).
        if (auto pc_it = pendingCall.find(rec.tid);
            pc_it != pendingCall.end()) {
            const SiteRef call_site = pc_it->second;
            pendingCall.erase(pc_it);
            FuncModel &caller = model.funcs.at(call_site.func);
            auto &callees = caller.callees[call_site.node];
            if (std::find(callees.begin(), callees.end(), func) ==
                callees.end()) {
                callees.push_back(func);
                addSite(model.callersOf[func], call_site);
            }
        }

        StaticInstr &site = fm.instrs[node];
        const SiteRef ref{func, node};
        if (!site.seen()) {
            site.pc = rec.pc;
            ++model.siteCount;
            model.sitesOfPc[rec.pc].push_back(ref);
        }
        ++site.executed;

        const bool mem_was_widened =
            site.memReads.widened || site.memWrites.widened;

        // Mirror exactly what the dynamic slicer gens (uses) and kills
        // (defs) when an instance of this kind joins the slice.
        RegId def_this = trace::kNoReg;
        switch (rec.kind) {
        case RecordKind::Alu:
        case RecordKind::LoadImm:
            site.kinds |= kSiteAlu;
            addReg(site.uses, rec.rr0);
            addReg(site.uses, rec.rr1);
            addReg(site.uses, rec.rr2);
            addReg(site.defs, rec.rw);
            def_this = rec.rw;
            break;
        case RecordKind::Load:
            site.kinds |= kSiteLoad;
            addReg(site.uses, rec.rr0);
            addReg(site.defs, rec.rw);
            def_this = rec.rw;
            site.memReads.add(rec.addr, rec.aux, cap);
            break;
        case RecordKind::Store:
            site.kinds |= kSiteStore;
            addReg(site.uses, rec.rr0);
            addReg(site.uses, rec.rr1);
            site.memWrites.add(rec.addr, rec.aux, cap);
            break;
        case RecordKind::Branch:
            site.kinds |= kSiteBranch;
            addReg(site.uses, rec.rr0);
            break;
        case RecordKind::Jump:
            site.kinds |= kSiteJump;
            break;
        case RecordKind::Call:
            site.kinds |= kSiteCall;
            addReg(site.uses, rec.rr0);
            pendingCall[rec.tid] = ref;
            break;
        case RecordKind::Ret:
            site.kinds |= kSiteRet;
            if (std::find(fm.retNodes.begin(), fm.retNodes.end(), node) ==
                fm.retNodes.end())
                fm.retNodes.push_back(node);
            break;
        case RecordKind::Syscall:
            site.kinds |= kSiteSyscall;
            addReg(site.defs, rec.rw);
            def_this = rec.rw;
            lastSyscall[rec.tid] = ref;
            if (std::find(model.syscallSites.begin(),
                          model.syscallSites.end(),
                          ref) == model.syscallSites.end())
                model.syscallSites.push_back(ref);
            break;
        case RecordKind::Marker:
            site.kinds |= kSiteMarker;
            if (std::find(model.markerSites.begin(), model.markerSites.end(),
                          ref) == model.markerSites.end())
                model.markerSites.push_back(ref);
            break;
        case RecordKind::SyscallRead:
        case RecordKind::SyscallWrite:
            break; // handled above
        }

        if (def_this == trace::kNoReg ||
            !(site.defs.size() == 1 && site.defs[0] == def_this))
            site.strongDef = false;

        if (!mem_was_widened &&
            (site.memReads.widened || site.memWrites.widened))
            ++model.widenedSites;
    }

    MetricRegistry::global().counter("staticdep.sites").add(model.siteCount);
    MetricRegistry::global()
        .counter("staticdep.widened_sites")
        .add(model.widenedSites);
    return model;
}

} // namespace staticdep
} // namespace webslice
