#include "staticdep/slice.hh"

#include <algorithm>
#include <ostream>
#include <unordered_set>

#include "support/logging.hh"
#include "support/metrics.hh"
#include "support/stopwatch.hh"

namespace webslice {
namespace staticdep {

using graph::Cfg;
using graph::NodeId;
using slicer::CriteriaMode;
using trace::FuncId;
using trace::Pc;
using trace::RegId;

StaticAnalysis
buildStaticAnalysis(std::span<const trace::Record> records,
                    const graph::CfgSet &cfgs,
                    const graph::ControlDepMap &deps,
                    const ModelOptions &options)
{
    StaticAnalysis analysis;
    {
        ScopedPhase phase("static-model");
        analysis.model = buildStaticModel(records, cfgs, options);
    }
    {
        ScopedPhase phase("static-fixpoints");
        analysis.summaries = computeSummaries(analysis.model);
        for (const FuncId func : analysis.model.order) {
            FuncDataflow df =
                computeReachingDefs(analysis.model, analysis.summaries, func);
            if (df.flowInsensitive)
                ++analysis.rdFallbacks;
            analysis.rd.emplace(func, std::move(df));
        }
    }
    deps.ensureSealed();
    analysis.deps = &deps;
    return analysis;
}

namespace {

/** The backward walk over the implicit static PDG. */
class Walk
{
  public:
    Walk(const StaticAnalysis &analysis, const trace::CriteriaSet &criteria,
         const StaticSliceOptions &options)
        : analysis_(analysis), model_(analysis.model), criteria_(criteria),
          options_(options)
    {
        for (const FuncId func : model_.order) {
            FuncWalk &fw = walk_[func];
            const size_t n = model_.funcModel(func).cfg->nodeCount();
            fw.reasons.assign(n, 0);
            fw.processed.assign(n, 0);
        }
        buildMemIndexes();
    }

    StaticSliceResult
    run()
    {
        seed();
        while (!items_.empty()) {
            const Item item = items_.back();
            items_.pop_back();
            switch (item.op) {
            case Op::Include:
                processInclude(item);
                break;
            case Op::DefsAt:
                processDefsAt(item);
                break;
            case Op::EntryDefs:
                processEntryDefs(item);
                break;
            case Op::ExitDefs:
                processExitDefs(item);
                break;
            }
        }
        return finalize();
    }

  private:
    enum class Op : uint8_t
    {
        Include,
        DefsAt,
        EntryDefs,
        ExitDefs,
    };

    struct Item
    {
        Op op;
        uint8_t reason = 0; ///< Include only.
        FuncId func = trace::kNoFunc;
        NodeId node = graph::kNoNode; ///< Include / DefsAt.
        RegId reg = trace::kNoReg;    ///< DefsAt / EntryDefs / ExitDefs.
    };

    struct FuncWalk
    {
        std::vector<uint8_t> reasons;
        std::vector<uint8_t> processed;
        bool tainted = false;
        std::unordered_set<uint64_t> regQueries; ///< node << 16 | reg.
        std::unordered_set<uint32_t> entryQueried;
        std::unordered_set<uint32_t> exitQueried;
    };

    void
    buildMemIndexes()
    {
        for (const FuncId func : model_.order) {
            const FuncModel &fm = model_.funcModel(func);
            for (size_t node = 0; node < fm.instrs.size(); ++node) {
                const StaticInstr &instr = fm.instrs[node];
                if (!instr.seen())
                    continue;
                const SiteRef ref{func, static_cast<NodeId>(node)};
                if (!instr.memWrites.empty()) {
                    const uint32_t idx =
                        static_cast<uint32_t>(writers_.size());
                    writers_.push_back(ref);
                    writerWoken_.push_back(0);
                    if (instr.memWrites.widened)
                        widenedWriters_.push_back(idx);
                    else
                        for (const uint64_t page : instr.memWrites.pages)
                            pageToWriters_[page].push_back(idx);
                }
                // In memory-only mode a Load whose loaded bytes are
                // demanded joins the dynamic slice directly; mirror that
                // by waking loads from the demanded-page set too.
                if (!options_.includeRegisterDeps &&
                    (instr.kinds & kSiteLoad) && !instr.memReads.empty()) {
                    const uint32_t idx =
                        static_cast<uint32_t>(readers_.size());
                    readers_.push_back(ref);
                    readerWoken_.push_back(0);
                    if (instr.memReads.widened)
                        widenedReaders_.push_back(idx);
                    else
                        for (const uint64_t page : instr.memReads.pages)
                            pageToReaders_[page].push_back(idx);
                }
            }
        }
    }

    void
    seed()
    {
        if (options_.mode == CriteriaMode::PixelBuffer) {
            for (const SiteRef site : model_.markerSites)
                push({Op::Include, kReachSeed, site.func, site.node});
            // Criteria bytes are demanded at every marker; the static
            // walk cannot tell ordinals apart, so demand the union.
            if (!model_.markerSites.empty())
                for (const trace::MemRange &range : criteria_.allRanges())
                    needRange(range.addr, range.size);
        } else {
            for (const SiteRef site : model_.syscallSites)
                push({Op::Include, kReachSeed, site.func, site.node});
        }
    }

    void push(Item item) { items_.push_back(item); }

    void
    processInclude(const Item &item)
    {
        FuncWalk &fw = walk_.at(item.func);
        fw.reasons[item.node] |= item.reason;
        if (fw.processed[item.node])
            return;
        fw.processed[item.node] = 1;
        ++result_.includedSites;

        const FuncModel &fm = model_.funcModel(item.func);
        const StaticInstr &instr = fm.instrs[item.node];

        // A pure Ret is structural: the dynamic slicer marks the Ret
        // record straight from its contributing Call without running the
        // include machinery, so it carries no dependences of its own.
        if (instr.kinds == kSiteRet)
            return;

        taint(item.func);

        if (options_.includeControlDeps) {
            for (const Pc branch_pc :
                 analysis_.deps->depsOf(item.func, instr.pc)) {
                // Pending-branch sets are per-thread and pc-keyed, so a
                // dynamic match may land in any function carrying this
                // branch pc; fan out to all of them.
                auto it = model_.sitesOfPc.find(branch_pc);
                if (it == model_.sitesOfPc.end())
                    continue;
                for (const SiteRef site : it->second) {
                    const StaticInstr *branch =
                        model_.instrAt(site.func, site.node);
                    if (!branch || !(branch->kinds & kSiteBranch))
                        continue;
                    ++result_.controlEdges;
                    push({Op::Include, kReachControl, site.func, site.node});
                }
            }
        }

        if (options_.includeRegisterDeps) {
            for (const RegId reg : instr.uses)
                push({Op::DefsAt, 0, item.func, item.node, reg});
        }

        // A joining Load makes its whole loaded footprint live; a
        // joining Syscall makes its read ranges live.
        if (instr.kinds & (kSiteLoad | kSiteSyscall))
            needSummary(instr.memReads);
    }

    void
    taint(FuncId func)
    {
        FuncWalk &fw = walk_.at(func);
        if (fw.tainted)
            return;
        fw.tainted = true;
        // A contributing function pulls in every observed call site of
        // itself (the dynamic Call joins when its frame contributed) and
        // every of its return sites (the joining Call marks the matching
        // Ret).
        auto callers = model_.callersOf.find(func);
        if (callers != model_.callersOf.end()) {
            for (const SiteRef site : callers->second) {
                ++result_.callEdges;
                push({Op::Include, kReachControl, site.func, site.node});
            }
        }
        for (const NodeId ret : model_.funcModel(func).retNodes) {
            ++result_.callEdges;
            push({Op::Include, kReachControl, func, ret});
        }
    }

    void
    processDefsAt(const Item &item)
    {
        FuncWalk &fw = walk_.at(item.func);
        const uint64_t key =
            (static_cast<uint64_t>(item.node) << 16) | item.reg;
        if (!fw.regQueries.insert(key).second)
            return;
        ++result_.rdQueries;

        const FuncDataflow &df = analysis_.rd.at(item.func);
        const FuncModel &fm = model_.funcModel(item.func);
        df.forEachDefReaching(
            item.node, item.reg, [&](const FuncDataflow::Def &def) {
                switch (def.src) {
                case FuncDataflow::DefSrc::Entry:
                    push({Op::EntryDefs, 0, item.func, graph::kNoNode,
                          item.reg});
                    break;
                case FuncDataflow::DefSrc::Instr:
                    ++result_.dataEdges;
                    push({Op::Include, kReachData, item.func, def.node});
                    break;
                case FuncDataflow::DefSrc::CallSummary:
                case FuncDataflow::DefSrc::Wildcard:
                    for (const FuncId callee : fm.callees[def.node]) {
                        if (!analysis_.summaries.of(callee).mayDefine(
                                item.reg))
                            continue;
                        push({Op::ExitDefs, 0, callee, graph::kNoNode,
                              item.reg});
                    }
                    break;
                }
            });
    }

    void
    processEntryDefs(const Item &item)
    {
        FuncWalk &fw = walk_.at(item.func);
        if (!fw.entryQueried.insert(item.reg).second)
            return;
        ++result_.entryPropagations;
        // The value came in from a caller: the defining site is whatever
        // reached each observed call site in each caller.
        auto callers = model_.callersOf.find(item.func);
        if (callers == model_.callersOf.end())
            return; // toplevel: the initial (zero) machine state
        for (const SiteRef site : callers->second)
            push({Op::DefsAt, 0, site.func, site.node, item.reg});
    }

    void
    processExitDefs(const Item &item)
    {
        FuncWalk &fw = walk_.at(item.func);
        if (!fw.exitQueried.insert(item.reg).second)
            return;
        ++result_.exitQueries;
        push({Op::DefsAt, 0, item.func, Cfg::kExit, item.reg});
    }

    // --- Memory demand --------------------------------------------------

    void
    needRange(uint64_t addr, uint64_t size)
    {
        if (size == 0)
            return;
        const uint64_t first = pageOf(addr);
        const uint64_t last = pageOf(addr + size - 1);
        for (uint64_t page = first;; ++page) {
            needPage(page);
            if (neededWidened_ || page == last)
                break;
        }
    }

    void
    needSummary(const PageSummary &summary)
    {
        if (summary.empty())
            return;
        if (summary.widened) {
            widenNeeded();
            return;
        }
        for (const uint64_t page : summary.pages) {
            needPage(page);
            if (neededWidened_)
                break;
        }
    }

    void
    needPage(uint64_t page)
    {
        if (neededWidened_)
            return;
        if (!neededPages_.insert(page).second)
            return;
        touchMem();
        if (neededPages_.size() > options_.neededPageCap) {
            widenNeeded();
            return;
        }
        if (auto it = pageToWriters_.find(page); it != pageToWriters_.end())
            for (const uint32_t idx : it->second)
                wakeWriter(idx);
        if (auto it = pageToReaders_.find(page); it != pageToReaders_.end())
            for (const uint32_t idx : it->second)
                wakeReader(idx);
    }

    /** Widened footprints overlap any demand; wake them on the first. */
    void
    touchMem()
    {
        if (anyMemNeeded_)
            return;
        anyMemNeeded_ = true;
        for (const uint32_t idx : widenedWriters_)
            wakeWriter(idx);
        for (const uint32_t idx : widenedReaders_)
            wakeReader(idx);
    }

    void
    widenNeeded()
    {
        if (neededWidened_)
            return;
        neededWidened_ = true;
        touchMem();
        for (uint32_t idx = 0; idx < writers_.size(); ++idx)
            wakeWriter(idx);
        for (uint32_t idx = 0; idx < readers_.size(); ++idx)
            wakeReader(idx);
        neededPages_.clear();
    }

    void
    wakeWriter(uint32_t idx)
    {
        if (writerWoken_[idx])
            return;
        writerWoken_[idx] = 1;
        ++result_.dataEdges;
        push({Op::Include, kReachData, writers_[idx].func,
              writers_[idx].node});
    }

    void
    wakeReader(uint32_t idx)
    {
        if (readerWoken_[idx])
            return;
        readerWoken_[idx] = 1;
        ++result_.dataEdges;
        push({Op::Include, kReachData, readers_[idx].func,
              readers_[idx].node});
    }

    StaticSliceResult
    finalize()
    {
        result_.siteUniverse = model_.siteCount;
        result_.neededPages = neededPages_.size();
        result_.neededWidened = neededWidened_;
        for (const FuncId func : model_.order) {
            const FuncWalk &fw = walk_.at(func);
            const FuncModel &fm = model_.funcModel(func);
            for (size_t node = 0; node < fw.reasons.size(); ++node) {
                if (fw.reasons[node] == 0)
                    continue;
                result_.byFuncPc[StaticSliceResult::key(
                    func, fm.instrs[node].pc)] |= fw.reasons[node];
            }
        }
        return std::move(result_);
    }

    const StaticAnalysis &analysis_;
    const StaticModel &model_;
    const trace::CriteriaSet &criteria_;
    const StaticSliceOptions &options_;

    std::unordered_map<FuncId, FuncWalk> walk_;
    std::vector<Item> items_;

    std::vector<SiteRef> writers_;
    std::vector<uint8_t> writerWoken_;
    std::vector<uint32_t> widenedWriters_;
    std::unordered_map<uint64_t, std::vector<uint32_t>> pageToWriters_;

    std::vector<SiteRef> readers_;
    std::vector<uint8_t> readerWoken_;
    std::vector<uint32_t> widenedReaders_;
    std::unordered_map<uint64_t, std::vector<uint32_t>> pageToReaders_;

    std::unordered_set<uint64_t> neededPages_;
    bool neededWidened_ = false;
    bool anyMemNeeded_ = false;

    StaticSliceResult result_;
};

const char *
kindName(uint16_t bit)
{
    switch (bit) {
    case kSiteAlu:
        return "alu";
    case kSiteLoad:
        return "load";
    case kSiteStore:
        return "store";
    case kSiteBranch:
        return "branch";
    case kSiteJump:
        return "jump";
    case kSiteCall:
        return "call";
    case kSiteRet:
        return "ret";
    case kSiteSyscall:
        return "syscall";
    case kSiteMarker:
        return "marker";
    default:
        return "?";
    }
}

} // namespace

StaticSliceResult
computeStaticSlice(const StaticAnalysis &analysis,
                   const trace::CriteriaSet &criteria,
                   const StaticSliceOptions &options)
{
    ScopedPhase phase("static-backward");
    Walk walk(analysis, criteria, options);
    return walk.run();
}

void
dumpPdg(std::ostream &os, const StaticAnalysis &analysis,
        const trace::SymbolTable &symtab, const StaticSliceResult *result)
{
    const StaticModel &model = analysis.model;
    for (const FuncId func : model.order) {
        const FuncModel &fm = model.funcModel(func);
        const RegSummary &summary = analysis.summaries.of(func);
        os << "func " << model.cfgs->functionName(func, symtab) << " id="
           << func << " nodes=" << fm.cfg->nodeCount()
           << " mayDef=" << summary.mayDef.size()
           << " liveIn=" << summary.liveIn.size()
           << (summary.widened ? " widened" : "") << "\n";
        for (size_t node = 0; node < fm.instrs.size(); ++node) {
            const StaticInstr &instr = fm.instrs[node];
            if (!instr.seen())
                continue;
            os << "  n" << node << " pc=" << instr.pc << " [";
            bool first = true;
            for (uint16_t bit = 1; bit <= kSiteMarker; bit <<= 1) {
                if (!(instr.kinds & bit))
                    continue;
                os << (first ? "" : ",") << kindName(bit);
                first = false;
            }
            os << "]";
            if (!instr.uses.empty()) {
                std::vector<RegId> uses = instr.uses;
                std::sort(uses.begin(), uses.end());
                os << " use=";
                for (size_t i = 0; i < uses.size(); ++i)
                    os << (i ? "," : "") << uses[i];
            }
            if (!instr.defs.empty()) {
                std::vector<RegId> defs = instr.defs;
                std::sort(defs.begin(), defs.end());
                os << " def=";
                for (size_t i = 0; i < defs.size(); ++i)
                    os << (i ? "," : "") << defs[i];
                if (instr.strongDef)
                    os << "!";
            }
            if (!instr.memReads.empty())
                os << " rd_pages="
                   << (instr.memReads.widened
                           ? std::string("*")
                           : std::to_string(instr.memReads.pages.size()));
            if (!instr.memWrites.empty())
                os << " wr_pages="
                   << (instr.memWrites.widened
                           ? std::string("*")
                           : std::to_string(instr.memWrites.pages.size()));
            if (!fm.callees[node].empty()) {
                std::vector<FuncId> callees = fm.callees[node];
                std::sort(callees.begin(), callees.end());
                os << " calls=";
                for (size_t i = 0; i < callees.size(); ++i)
                    os << (i ? "," : "")
                       << model.cfgs->functionName(callees[i], symtab);
            }
            if (result) {
                const uint8_t reason = result->reasonOf(func, instr.pc);
                if (reason) {
                    os << " slice=";
                    if (reason & kReachSeed)
                        os << "S";
                    if (reason & kReachData)
                        os << "D";
                    if (reason & kReachControl)
                        os << "C";
                }
            }
            os << "\n";
        }
    }
}

void
publishStaticSliceMetrics(const StaticSliceResult &result)
{
    MetricRegistry &reg = MetricRegistry::global();
    reg.counter("staticdep.static_included").add(result.includedSites);
    reg.counter("staticdep.data_edges").add(result.dataEdges);
    reg.counter("staticdep.control_edges").add(result.controlEdges);
    reg.counter("staticdep.call_edges").add(result.callEdges);
    reg.counter("staticdep.rd_queries").add(result.rdQueries);
    reg.counter("staticdep.entry_propagations")
        .add(result.entryPropagations);
    reg.counter("staticdep.exit_queries").add(result.exitQueries);
    reg.gauge("staticdep.needed_pages").setMax(result.neededPages);
    if (result.neededWidened)
        reg.counter("staticdep.needed_widenings").add();
}

} // namespace staticdep
} // namespace webslice
