/**
 * @file
 * Dynamic backward program slicing (the profiler's backward pass).
 *
 * The slicer walks the trace from its end towards its beginning carrying:
 *  - one live-register set per thread (the CPU context is per thread),
 *  - a single shared live-memory set (threads share the address space, so
 *    cross-thread data dependences fall out of liveness for free — the
 *    paper's rationale for serializing thread execution),
 *  - a pending-branch list per thread for control dependences.
 *
 * Rules, exactly as Section III-B describes:
 *  - Reaching a slicing-criterion program point puts the criterion's
 *    variables into the live set.
 *  - An instruction writing a live variable joins the slice, kills what it
 *    writes, and gens what it reads.
 *  - When an instruction joins the slice, every branch it is
 *    control-dependent on is added to the pending list; the nearest
 *    preceding dynamic instance of a pending branch joins the slice, is
 *    removed from the list, and its condition variable becomes live.
 *
 * Two criteria modes, per Section IV-C: the pixel/tile-buffer markers, or
 * the values read by every system call.
 */

#ifndef WEBSLICE_SLICER_SLICER_HH
#define WEBSLICE_SLICER_SLICER_HH

#include <cstdint>
#include <limits>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "graph/cfg.hh"
#include "graph/control_deps.hh"
#include "trace/criteria.hh"
#include "trace/record.hh"

namespace webslice {
namespace slicer {

class EpochPlan;

/** Which slicing criteria seed the live set. */
enum class CriteriaMode
{
    /** Tile/pixel buffer contents at each Marker record (the paper's
     *  primary criteria). */
    PixelBuffer,
    /** The values read by every system call (the paper's broader,
     *  I/O-inclusive criteria). */
    Syscalls,
};

/** Backward-pass configuration. */
struct SlicerOptions
{
    CriteriaMode mode = CriteriaMode::PixelBuffer;

    /**
     * Slice as if the trace ended at this record index (exclusive). Used
     * for the paper's Bing experiment that slices from the
     * page-load-complete point instead of the end of the browsing session.
     */
    size_t endIndex = std::numeric_limits<size_t>::max();

    /** Ablation knob: ignore control dependences entirely. */
    bool includeControlDeps = true;

    /** Ablation knob: ignore register liveness (memory-only slicing). */
    bool includeRegisterDeps = true;

    /**
     * Worker threads for the forward pass (CFG construction and control
     * dependences). 1 (the default) is the serial path; <= 0 means "all
     * hardware threads". Results are identical for every value.
     */
    int jobs = 1;

    /**
     * Worker threads for the backward pass. 1 (the default) runs the
     * sequential reverse walk; values > 1 (or <= 0 for "all hardware
     * threads") engage the epoch-parallel driver: the trace is split
     * into epochs that are transcoded in parallel, stitched newest to
     * oldest into exact boundary states, and resolved in parallel (see
     * slicer/epoch.hh). The slice is bit-identical to the sequential
     * walk for every value; legacyLiveSets forces the sequential path
     * because it is the measured oracle baseline.
     */
    int backwardJobs = 1;

    /**
     * Benchmark/ablation knob: run the backward pass on the original
     * std::unordered_map-based live sets instead of the flat-hash ones.
     * Results are identical; only speed and memory differ. This is the
     * measured baseline in bench/pipeline_scaling.
     */
    bool legacyLiveSets = false;

    /**
     * When > 0, computeSliceFromFile prints a heartbeat to stderr at
     * roughly this interval during the reverse walk: records done,
     * records/sec, and the ETA to the start of the trace. 0 (the
     * default) disables progress output.
     */
    double progressIntervalSeconds = 0.0;

    /**
     * Optional prepared epoch plan (slicer/epoch.hh) from a previous
     * query over the same trace window. When set and compatible (same
     * record count, window, and dependence knobs — the plan itself is
     * criterion-independent), computeSlice skips the transcode pass
     * entirely and replays the cached ops; per-epoch gen/kill summaries
     * additionally let it skip epochs the query's live set provably
     * passes through unchanged, and a repeat of an identical semantic
     * criterion (same mode and criteria content — job counts are
     * execution knobs) is answered from a per-plan result memo without
     * walking at all. Incompatible or null plans fall back to
     * the regular paths. Non-owning: the plan (and the control-dependence
     * map it points into) must outlive the call.
     */
    const EpochPlan *reusePlan = nullptr;
};

/** Output of one backward pass. */
struct SliceResult
{
    /** Per-record verdict (1 = in slice); pseudo-records are always 0. */
    std::vector<uint8_t> inSlice;

    /** Executed instructions inside the analyzed window. */
    uint64_t instructionsAnalyzed = 0;

    /** Executed instructions that joined the slice. */
    uint64_t sliceInstructions = 0;

    /** Criteria bytes inserted into the live set. */
    uint64_t criteriaBytesSeeded = 0;

    /** Records fed into the pass (including records outside the window). */
    uint64_t recordsFed = 0;

    /**
     * End (exclusive record index) of the analyzed window:
     * min(options.endIndex, record count). The soundness checker replays
     * exactly this prefix, so the slice and its verification agree on
     * what "the trace" was.
     */
    uint64_t analyzedWindowEnd = 0;

    /** Diagnostics: high-water marks of the analysis state. */
    uint64_t peakLiveMemBytes = 0;
    uint64_t peakLiveMemChunks = 0;
    uint64_t peakPendingBranches = 0;

    /** Live-set hash-table totals (0 under the legacy containers). */
    uint64_t flatProbes = 0;
    uint64_t flatResizes = 0;

    /** Slice share of analyzed instructions, in percent. */
    double
    slicePercent() const
    {
        if (instructionsAnalyzed == 0)
            return 0.0;
        return 100.0 * static_cast<double>(sliceInstructions) /
               static_cast<double>(instructionsAnalyzed);
    }
};

/**
 * The backward pass as an incremental consumer: feed records from the
 * last analyzed index down to 0, then take the result. Both the
 * in-memory front end (computeSlice) and the file-streaming front end
 * (computeSliceFromFile) drive this, so huge traces can be sliced in
 * O(live set) memory plus one verdict byte per record.
 */
class BackwardPass
{
  public:
    /**
     * @param record_count total records in the trace (sizes verdicts)
     */
    BackwardPass(const graph::CfgSet &cfgs,
                 const graph::ControlDepMap &deps,
                 const trace::CriteriaSet &criteria,
                 const SlicerOptions &options, size_t record_count);
    ~BackwardPass();

    BackwardPass(const BackwardPass &) = delete;
    BackwardPass &operator=(const BackwardPass &) = delete;

    /**
     * Consume record `index` (indices must arrive strictly descending,
     * starting below the options window).
     */
    void feed(size_t index, const trace::Record &record);

    /**
     * Consume an entire in-memory trace in one call — equivalent to
     * feeding every record in descending order, but the per-record
     * dispatch is devirtualized so the hot loop inlines. The pass must
     * be fresh (no feed() calls yet).
     */
    void run(std::span<const trace::Record> records);

    /** Return the result; the pass is spent. */
    SliceResult finish();

    /** Opaque state; public only so the .cc's policy impls can derive. */
    struct Impl;

  private:
    std::unique_ptr<Impl> impl_;
};

/**
 * Run the backward pass over an in-memory trace.
 *
 * @param records   the dynamic trace
 * @param cfgs      forward-pass result (for per-record function ids)
 * @param deps      control dependence map from the forward pass
 * @param criteria  marker-ordinal -> memory-range criteria (pixel mode)
 * @param options   mode and window configuration
 */
SliceResult computeSlice(std::span<const trace::Record> records,
                         const graph::CfgSet &cfgs,
                         const graph::ControlDepMap &deps,
                         const trace::CriteriaSet &criteria,
                         const SlicerOptions &options = {});

/**
 * Run the backward pass over a trace file, streamed back-to-front: peak
 * memory is the live sets plus one verdict byte per record, never the
 * records themselves.
 */
SliceResult computeSliceFromFile(const std::string &path,
                                 const graph::CfgSet &cfgs,
                                 const graph::ControlDepMap &deps,
                                 const trace::CriteriaSet &criteria,
                                 const SlicerOptions &options = {});

/** Publish one pass's totals to the global metric registry. */
void publishSliceMetrics(const SliceResult &result);

} // namespace slicer
} // namespace webslice

#endif // WEBSLICE_SLICER_SLICER_HH
