/**
 * @file
 * Epoch-parallel backward slicing: transcode → stitch → resolve.
 *
 * The sequential backward pass is a chain dependence: every record's
 * include decision reads live state produced by all newer records. The
 * epoch driver breaks the chain into three phases over N trace epochs:
 *
 *  1. Transcode (parallel): each epoch's records are walked backward and
 *     compiled into compact 24-byte stitch ops. Provable state-no-ops
 *     (unconditional jumps, dead-destination ALU ops, branches that no
 *     dependence list ever names) are elided, control-dependence lists
 *     are pre-resolved into per-epoch span tables, and thread ids are
 *     compressed through per-epoch tables. This moves the hash-probe and
 *     record-decode work off the serial critical path.
 *  2. Stitch (sequential, newest epoch to oldest): the ops are replayed
 *     with the full transition rules but no output bookkeeping, yielding
 *     the *exact* analysis state at every epoch boundary — the state the
 *     sequential pass would hold at that record index.
 *  3. Resolve (parallel, overlapped with the stitch): each epoch replays
 *     its ops once more, seeded with its exact boundary state, this time
 *     emitting verdict bits, counters, and peaks. Per-record verdicts are
 *     disjoint across epochs, and the one cross-epoch write (a Call
 *     marking its matching Ret) is performed only by the epoch that pops
 *     the frame, so the epochs write the shared bitmap without conflicts.
 *
 * Because phases 2 and 3 run the same transition rules as the sequential
 * kernel over the same state types (slicer/kernel.hh), the output is
 * bit-identical to the sequential slicer by construction; the tests and
 * the scaling bench assert it.
 */

#ifndef WEBSLICE_SLICER_EPOCH_HH
#define WEBSLICE_SLICER_EPOCH_HH

#include <cstddef>
#include <vector>

#include "slicer/slicer.hh"

namespace webslice {
namespace slicer {

/**
 * True when `options` ask for the epoch-parallel backward pass and the
 * trace shape supports it: backwardJobs resolves to more than one
 * thread, the live sets are the flat defaults (legacyLiveSets pins the
 * sequential oracle), and record indices fit the 32-bit op encoding.
 */
bool epochParallelEligible(const SlicerOptions &options,
                           size_t record_count);

/** Epoch-parallel equivalent of computeSlice(); bit-identical output. */
SliceResult computeSliceEpochParallel(std::span<const trace::Record> records,
                                      const graph::CfgSet &cfgs,
                                      const graph::ControlDepMap &deps,
                                      const trace::CriteriaSet &criteria,
                                      const SlicerOptions &options);

/**
 * Epoch-parallel equivalent of computeSliceFromFile(). Each epoch streams
 * its segment through a ranged ReverseTraceReader, and the planner uses
 * the trace's block-index footer (when present) to split the trace into
 * equal-*instruction* epochs instead of equal-record ones. Unlike the
 * sequential streaming path, the transcoded ops of all epochs are held in
 * memory at once (~24 bytes per surviving record).
 */
SliceResult computeSliceEpochParallelFromFile(
    const std::string &path, const graph::CfgSet &cfgs,
    const graph::ControlDepMap &deps, const trace::CriteriaSet &criteria,
    const SlicerOptions &options);

/** Epoch boundary planning knobs (test hooks). */
struct EpochPlanner
{
    /**
     * When non-null, the interior epoch boundaries to use instead of the
     * planner's equal split — lets tests force boundaries through syscall
     * groups, pending branches, or live registers. Values are clamped to
     * the analysis window and still pass through
     * CriteriaSet::splitBoundary. Not thread-safe; tests only.
     */
    static const std::vector<size_t> *boundariesOverrideForTesting;
};

} // namespace slicer
} // namespace webslice

#endif // WEBSLICE_SLICER_EPOCH_HH
