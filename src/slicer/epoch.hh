/**
 * @file
 * Epoch-parallel backward slicing: transcode → stitch → resolve.
 *
 * The sequential backward pass is a chain dependence: every record's
 * include decision reads live state produced by all newer records. The
 * epoch driver breaks the chain into three phases over N trace epochs:
 *
 *  1. Transcode (parallel): each epoch's records are walked backward and
 *     compiled into compact 24-byte stitch ops. Provable state-no-ops
 *     (unconditional jumps, dead-destination ALU ops, branches that no
 *     dependence list ever names) are elided, control-dependence lists
 *     are pre-resolved into per-epoch span tables, and thread ids are
 *     compressed through per-epoch tables. This moves the hash-probe and
 *     record-decode work off the serial critical path.
 *  2. Stitch (sequential, newest epoch to oldest): the ops are replayed
 *     with the full transition rules but no output bookkeeping, yielding
 *     the *exact* analysis state at every epoch boundary — the state the
 *     sequential pass would hold at that record index.
 *  3. Resolve (parallel, overlapped with the stitch): each epoch replays
 *     its ops once more, seeded with its exact boundary state, this time
 *     emitting verdict bits, counters, and peaks. Per-record verdicts are
 *     disjoint across epochs, and the one cross-epoch write (a Call
 *     marking its matching Ret) is performed only by the epoch that pops
 *     the frame, so the epochs write the shared bitmap without conflicts.
 *
 * Because phases 2 and 3 run the same transition rules as the sequential
 * kernel over the same state types (slicer/kernel.hh), the output is
 * bit-identical to the sequential slicer by construction; the tests and
 * the scaling bench assert it.
 */

#ifndef WEBSLICE_SLICER_EPOCH_HH
#define WEBSLICE_SLICER_EPOCH_HH

#include <cstddef>
#include <memory>
#include <vector>

#include "slicer/slicer.hh"

namespace webslice {
namespace slicer {

/**
 * True when `options` ask for the epoch-parallel backward pass and the
 * trace shape supports it: backwardJobs resolves to more than one
 * thread, the live sets are the flat defaults (legacyLiveSets pins the
 * sequential oracle), and record indices fit the 32-bit op encoding.
 */
bool epochParallelEligible(const SlicerOptions &options,
                           size_t record_count);

/** Epoch-parallel equivalent of computeSlice(); bit-identical output. */
SliceResult computeSliceEpochParallel(std::span<const trace::Record> records,
                                      const graph::CfgSet &cfgs,
                                      const graph::ControlDepMap &deps,
                                      const trace::CriteriaSet &criteria,
                                      const SlicerOptions &options);

/**
 * Epoch-parallel equivalent of computeSliceFromFile(). Each epoch streams
 * its segment through a ranged ReverseTraceReader, and the planner uses
 * the trace's block-index footer (when present) to split the trace into
 * equal-*instruction* epochs instead of equal-record ones. Unlike the
 * sequential streaming path, the transcoded ops of all epochs are held in
 * memory at once (~24 bytes per surviving record).
 */
SliceResult computeSliceEpochParallelFromFile(
    const std::string &path, const graph::CfgSet &cfgs,
    const graph::ControlDepMap &deps, const trace::CriteriaSet &criteria,
    const SlicerOptions &options);

/**
 * An immutable, criterion-independent epoch transcode: the per-epoch
 * StitchOps, pre-resolved dependence spans, and memoized gen/kill
 * summaries for one (trace, window, dependence-knobs) triple.
 *
 * Build once with buildEpochPlan(), then serve any number of queries —
 * any criteria mode, any backwardJobs — through
 * SlicerOptions::reusePlan. Each query replays the cached ops (no
 * transcode pass) and consults the per-epoch summaries to skip epochs
 * its live state provably passes through unchanged. Thread-safe for
 * concurrent queries: all plan state is read-only after construction.
 *
 * Lifetime: the plan's dependence spans point into the sealed
 * ControlDepMap it was built from, so the plan must not outlive that
 * map (the service pins the owning session alongside each cached plan).
 */
class EpochPlan
{
  public:
    EpochPlan();
    ~EpochPlan();
    EpochPlan(const EpochPlan &) = delete;
    EpochPlan &operator=(const EpochPlan &) = delete;

    /** Records in the trace the plan was built from. */
    size_t recordCount() const;

    /** End (exclusive) of the analyzed window the plan covers. */
    size_t windowEnd() const;

    /** Number of epochs in the partition. */
    size_t epochCount() const;

    /** Approximate resident size, for cache accounting. */
    uint64_t approxBytes() const;

    /**
     * True when this plan can serve a slice under `options`: same trace
     * length, same analyzed window, same dependence knobs, flat live
     * sets. The criteria mode is deliberately not part of the key — the
     * transcode is criterion-independent.
     */
    bool compatibleWith(const SlicerOptions &options,
                        size_t record_count) const;

    struct Data;
    std::unique_ptr<Data> data;
};

/**
 * Transcode `records` into a reusable EpochPlan for the window
 * [0, min(options.endIndex, records.size())). Only the dependence knobs
 * and the window of `options` matter; mode and job counts do not.
 * Returns null when the shape is unsupported (legacy live sets, empty
 * window, record indices beyond 32 bits, or an epoch with more than 256
 * distinct threads) — callers fall back to the plan-less paths.
 */
std::shared_ptr<const EpochPlan>
buildEpochPlan(std::span<const trace::Record> records,
               const graph::CfgSet &cfgs,
               const graph::ControlDepMap &deps,
               const SlicerOptions &options);

/**
 * Run one query over a prepared plan: no transcode, summary-gated epoch
 * skipping, sequential or epoch-parallel resolve per
 * options.backwardJobs. The plan must be compatibleWith() the options.
 * Output is bit-identical to the sequential oracle (the usual
 * flatProbes/flatResizes diagnostics excepted).
 */
SliceResult computeSliceWithPlan(const EpochPlan &plan,
                                 const trace::CriteriaSet &criteria,
                                 const SlicerOptions &options);

/** Epoch boundary planning knobs (test hooks). */
struct EpochPlanner
{
    /**
     * When non-null, the interior epoch boundaries to use instead of the
     * planner's equal split — lets tests force boundaries through syscall
     * groups, pending branches, or live registers. Values are clamped to
     * the analysis window and still pass through
     * CriteriaSet::splitBoundary. Not thread-safe; tests only.
     */
    static const std::vector<size_t> *boundariesOverrideForTesting;

    /**
     * When true, every epoch summary built by buildEpochPlan or the
     * inline transcode reports itself widened, so no epoch is ever
     * skippable and every query pays the full walk — the conservative
     * fallback, forced. Results must not change; tests assert exactly
     * that. Not thread-safe; tests only.
     */
    static bool forceWidenedSummariesForTesting;
};

} // namespace slicer
} // namespace webslice

#endif // WEBSLICE_SLICER_EPOCH_HH
