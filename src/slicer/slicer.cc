#include "slicer/slicer.hh"

#include <cstdio>
#include <memory>
#include <unordered_map>
#include <vector>

#include "slicer/epoch.hh"
#include "slicer/kernel.hh"
#include "support/logging.hh"
#include "support/metrics.hh"
#include "support/stopwatch.hh"
#include "trace/trace_file.hh"

namespace webslice {
namespace slicer {

using trace::FuncId;
using trace::kNoReg;
using trace::Pc;
using trace::Record;
using trace::RecordKind;
using trace::RegId;
using trace::ThreadId;

/**
 * The state shared by every backward-pass implementation; the live-set
 * data structures live in the templated subclass so the flat-hash default
 * and the legacy baseline can coexist behind one virtual feed().
 */
struct BackwardPass::Impl
{
    const graph::CfgSet &cfgs;
    const graph::ControlDepMap &deps;
    const trace::CriteriaSet &criteria;
    SlicerOptions options;
    size_t recordCount;

    SliceResult result;
    size_t lastIndex;
    bool finished = false;

    Impl(const graph::CfgSet &cfgs_in, const graph::ControlDepMap &deps_in,
         const trace::CriteriaSet &criteria_in,
         const SlicerOptions &options_in, size_t record_count)
        : cfgs(cfgs_in), deps(deps_in), criteria(criteria_in),
          options(options_in), recordCount(record_count),
          lastIndex(record_count)
    {
        result.inSlice.assign(record_count, 0);
        result.analyzedWindowEnd =
            std::min(options.endIndex, record_count);
    }

    virtual ~Impl() = default;

    virtual void feed(size_t idx, const Record &rec) = 0;
    virtual void run(std::span<const Record> records) = 0;

    /** Fold live-set diagnostics into `result` (called once, at finish). */
    virtual void collectStats() = 0;
};

namespace {

template <typename Policy>
struct ImplT final : BackwardPass::Impl
{
    using State = ThreadState<Policy>;

    typename Policy::ByteSet liveMem;

    /** Thread states: dense per-tid array (flat) or hash map (legacy). */
    std::vector<std::unique_ptr<State>> threadsDense;
    std::unordered_map<ThreadId, State> threadsMap;

    /** One-entry thread-state cache: traces run long same-tid stretches,
     *  and the unique_ptr array keeps State addresses stable. */
    ThreadId lastTid = 0;
    State *lastState = nullptr;

    using BackwardPass::Impl::Impl;

    State &
    threadState(ThreadId tid)
    {
        if constexpr (Policy::kDenseThreads) {
            if (lastState && lastTid == tid)
                return *lastState;
            if (tid >= threadsDense.size())
                threadsDense.resize(tid + 1);
            auto &slot = threadsDense[tid];
            if (!slot)
                slot = std::make_unique<State>();
            lastTid = tid;
            lastState = slot.get();
            return *slot;
        } else {
            return threadsMap[tid];
        }
    }

    /** Track the live-memory high-water marks; the peaks can only move
     *  on an insert, so sampling at the insert sites is exact. */
    void
    samplePeakLiveMem()
    {
        result.peakLiveMemBytes =
            std::max<uint64_t>(result.peakLiveMemBytes, liveMem.size());
        result.peakLiveMemChunks = std::max<uint64_t>(
            result.peakLiveMemChunks, liveMem.chunkCount());
    }

    void
    addControlDeps(State &ts, FuncId func, Pc pc)
    {
        if (!options.includeControlDeps)
            return;
        const auto branches = Policy::kIndexedDeps
                                  ? deps.depsOf(func, pc)
                                  : deps.depsOfUnindexed(func, pc);
        for (const Pc branch : branches)
            ts.pending.insert(branch);
        result.peakPendingBranches = std::max<uint64_t>(
            result.peakPendingBranches, ts.pending.size());
    }

    // Joins record `index` to the slice and propagates the structural
    // consequences shared by every record kind: control dependences and
    // the enclosing-instance flag.
    void
    include(size_t index, const Record &rec, State &ts)
    {
        result.inSlice[index] = 1;
        ++result.sliceInstructions;
        addControlDeps(ts, cfgs.funcOf[index], rec.pc);
        if (!ts.frames.empty())
            ts.frames.back().any = true;
    }

    void
    feed(size_t idx, const Record &rec) override
    {
        panic_if(finished, "feed after finish");
        panic_if(idx >= lastIndex,
                 "records must be fed in strictly descending order");
        lastIndex = idx;
        ++result.recordsFed;

        if (idx >= std::min(options.endIndex, recordCount))
            return; // outside the analysis window

        step(idx, rec);
    }

    void
    run(std::span<const Record> records) override
    {
        panic_if(finished, "run after finish");
        panic_if(lastIndex != recordCount,
                 "run requires a fresh pass (no records fed yet)");
        panic_if(records.size() != recordCount,
                 "record span does not match the trace length");
        const size_t end = std::min(options.endIndex, recordCount);
        result.recordsFed += end;
        for (size_t idx = end; idx-- > 0;) {
            // Descending streams defeat most hardware prefetchers;
            // request the line a few hundred bytes behind explicitly.
            if (idx >= 16)
                __builtin_prefetch(&records[idx - 16]);
            step(idx, records[idx]);
        }
        lastIndex = 0;
    }

    void
    collectStats() override
    {
        result.flatProbes = liveMem.probeCount();
        result.flatResizes = liveMem.resizeCount();
        const auto fold = [this](const State &ts) {
            result.flatProbes += ts.pending.probeCount();
            result.flatResizes += ts.pending.resizeCount();
        };
        if constexpr (Policy::kDenseThreads) {
            for (const auto &slot : threadsDense) {
                if (slot)
                    fold(*slot);
            }
        } else {
            for (const auto &kv : threadsMap)
                fold(kv.second);
        }
    }

    void
    step(size_t idx, const Record &rec)
    {
        State &ts = threadState(rec.tid);

        if (!rec.isPseudo())
            ++result.instructionsAnalyzed;

        switch (rec.kind) {
          case RecordKind::Marker: {
            if (options.mode == CriteriaMode::PixelBuffer) {
                for (const auto &range : criteria.forMarker(rec.aux)) {
                    liveMem.insert(range.addr, range.size);
                    result.criteriaBytesSeeded += range.size;
                }
                samplePeakLiveMem();
                include(idx, rec, ts);
            }
            break;
          }

          case RecordKind::SyscallWrite: {
            if (liveMem.testAndErase(rec.addr, rec.aux))
                ts.syscallWriteWasLive = true;
            break;
          }

          case RecordKind::SyscallRead: {
            ts.syscallReads.push_back(trace::MemRange{rec.addr, rec.aux});
            break;
          }

          case RecordKind::Syscall: {
            const bool reg_hit = options.includeRegisterDeps &&
                                 ts.killReg(rec.rw);
            bool in_slice = ts.syscallWriteWasLive || reg_hit;
            if (options.mode == CriteriaMode::Syscalls) {
                // The values communicated to the outside world are the
                // criteria themselves: every syscall joins the slice and
                // its read-set becomes live.
                in_slice = true;
            }
            if (in_slice) {
                for (const auto &range : ts.syscallReads) {
                    liveMem.insert(range.addr, range.size);
                    if (options.mode == CriteriaMode::Syscalls)
                        result.criteriaBytesSeeded += range.size;
                }
                samplePeakLiveMem();
                include(idx, rec, ts);
            }
            ts.syscallReads.clear();
            ts.syscallWriteWasLive = false;
            break;
          }

          case RecordKind::Store: {
            if (liveMem.testAndErase(rec.addr, rec.aux)) {
                include(idx, rec, ts);
                if (options.includeRegisterDeps) {
                    ts.genReg(rec.rr0);
                    ts.genReg(rec.rr1);
                }
            }
            break;
          }

          case RecordKind::Load: {
            const bool live = options.includeRegisterDeps
                                  ? ts.killReg(rec.rw)
                                  : liveMem.intersects(rec.addr, rec.aux);
            if (live) {
                include(idx, rec, ts);
                liveMem.insert(rec.addr, rec.aux);
                samplePeakLiveMem();
                if (options.includeRegisterDeps)
                    ts.genReg(rec.rr0);
            }
            break;
          }

          case RecordKind::Alu:
          case RecordKind::LoadImm: {
            if (!options.includeRegisterDeps)
                break;
            if (ts.killReg(rec.rw)) {
                include(idx, rec, ts);
                ts.genReg(rec.rr0);
                ts.genReg(rec.rr1);
                ts.genReg(rec.rr2);
            }
            break;
          }

          case RecordKind::Branch: {
            if (ts.pending.erase(rec.pc)) {
                include(idx, rec, ts);
                if (options.includeRegisterDeps)
                    ts.genReg(rec.rr0);
            }
            break;
          }

          case RecordKind::Jump: {
            // Unconditional; no condition variable, never a controller.
            break;
          }

          case RecordKind::Ret: {
            ts.frames.push_back(typename State::Frame{idx, false});
            break;
          }

          case RecordKind::Call: {
            bool instance_contributed = false;
            size_t ret_index = recordCount;
            if (!ts.frames.empty()) {
                instance_contributed = ts.frames.back().any;
                ret_index = ts.frames.back().retIndex;
                ts.frames.pop_back();
            }
            if (instance_contributed) {
                include(idx, rec, ts);
                if (options.includeRegisterDeps)
                    ts.genReg(rec.rr0); // indirect-call target register
                // The matching Ret is part of the contributing instance.
                if (ret_index < recordCount &&
                    !result.inSlice[ret_index]) {
                    result.inSlice[ret_index] = 1;
                    ++result.sliceInstructions;
                }
            }
            break;
          }
        }
    }
};

} // namespace

BackwardPass::BackwardPass(const graph::CfgSet &cfgs,
                           const graph::ControlDepMap &deps,
                           const trace::CriteriaSet &criteria,
                           const SlicerOptions &options,
                           size_t record_count)
{
    panic_if(cfgs.funcOf.size() != record_count,
             "forward-pass attribution does not match the trace length");
    if (options.legacyLiveSets) {
        impl_ = std::make_unique<ImplT<LegacyPolicy>>(
            cfgs, deps, criteria, options, record_count);
    } else {
        impl_ = std::make_unique<ImplT<FlatPolicy>>(
            cfgs, deps, criteria, options, record_count);
    }
}

BackwardPass::~BackwardPass() = default;

void
BackwardPass::feed(size_t index, const Record &record)
{
    impl_->feed(index, record);
}

void
BackwardPass::run(std::span<const Record> records)
{
    impl_->run(records);
}

void
publishSliceMetrics(const SliceResult &r)
{
    auto &registry = MetricRegistry::global();
    registry.counter("slicer.records_fed").add(r.recordsFed);
    registry.counter("slicer.instructions_analyzed")
        .add(r.instructionsAnalyzed);
    registry.counter("slicer.slice_instructions").add(r.sliceInstructions);
    registry.counter("slicer.criteria_bytes_seeded")
        .add(r.criteriaBytesSeeded);
    registry.counter("slicer.flat_probes").add(r.flatProbes);
    registry.counter("slicer.flat_resizes").add(r.flatResizes);
    registry.gauge("slicer.peak_live_mem_bytes").setMax(r.peakLiveMemBytes);
    registry.gauge("slicer.peak_live_mem_chunks")
        .setMax(r.peakLiveMemChunks);
    registry.gauge("slicer.peak_pending_branches")
        .setMax(r.peakPendingBranches);
}

SliceResult
BackwardPass::finish()
{
    panic_if(impl_->finished, "finish called twice");
    impl_->finished = true;
    impl_->collectStats();
    publishSliceMetrics(impl_->result);
    return std::move(impl_->result);
}

SliceResult
computeSlice(std::span<const Record> records, const graph::CfgSet &cfgs,
             const graph::ControlDepMap &deps,
             const trace::CriteriaSet &criteria,
             const SlicerOptions &options)
{
    if (options.reusePlan) {
        auto &registry = MetricRegistry::global();
        if (options.reusePlan->compatibleWith(options, records.size())) {
            registry.counter("slicer.plan_hits").add(1);
            return computeSliceWithPlan(*options.reusePlan, criteria,
                                        options);
        }
        // Stale or mismatched plan: fall through to the regular paths.
        registry.counter("slicer.plan_misses").add(1);
    }
    if (epochParallelEligible(options, records.size()))
        return computeSliceEpochParallel(records, cfgs, deps, criteria,
                                         options);
    BackwardPass pass(cfgs, deps, criteria, options, records.size());
    if (options.legacyLiveSets) {
        // The baseline policy also keeps the seed's per-record dispatch,
        // so benchmarks against it measure the loop the seed shipped.
        for (size_t idx = records.size(); idx-- > 0;)
            pass.feed(idx, records[idx]);
    } else {
        pass.run(records);
    }
    return pass.finish();
}

SliceResult
computeSliceFromFile(const std::string &path, const graph::CfgSet &cfgs,
                     const graph::ControlDepMap &deps,
                     const trace::CriteriaSet &criteria,
                     const SlicerOptions &options)
{
    if (options.reusePlan) {
        auto &registry = MetricRegistry::global();
        if (options.reusePlan->compatibleWith(options,
                                              cfgs.funcOf.size())) {
            registry.counter("slicer.plan_hits").add(1);
            return computeSliceWithPlan(*options.reusePlan, criteria,
                                        options);
        }
        registry.counter("slicer.plan_misses").add(1);
    }
    if (epochParallelEligible(options, cfgs.funcOf.size()))
        return computeSliceEpochParallelFromFile(path, cfgs, deps,
                                                 criteria, options);
    trace::ReverseTraceReader reader(path);
    BackwardPass pass(cfgs, deps, criteria, options,
                      static_cast<size_t>(reader.count()));
    Record rec;
    const uint64_t total = reader.count();
    size_t idx = static_cast<size_t>(total);

    // Heartbeat state for --progress: check the clock only every 64k
    // records so the hot loop stays unmeasurable, print when the
    // configured interval has elapsed.
    const bool progress = options.progressIntervalSeconds > 0.0;
    Stopwatch watch;
    double last_beat = 0.0;
    uint64_t done = 0;

    while (reader.next(rec)) {
        pass.feed(--idx, rec);
        if (progress && (++done & 0xFFFF) == 0) {
            const double t = watch.seconds();
            if (t - last_beat >= options.progressIntervalSeconds) {
                last_beat = t;
                const double rate = static_cast<double>(done) / t;
                const double eta =
                    rate > 0.0
                        ? static_cast<double>(total - done) / rate
                        : 0.0;
                std::fprintf(stderr,
                             "progress: backward pass %llu/%llu records "
                             "(%.0f%%), %.2f Mrec/s, ETA %.1fs\n",
                             static_cast<unsigned long long>(done),
                             static_cast<unsigned long long>(total),
                             100.0 * static_cast<double>(done) /
                                 static_cast<double>(total),
                             rate / 1e6, eta);
            }
        }
    }
    return pass.finish();
}

} // namespace slicer
} // namespace webslice
