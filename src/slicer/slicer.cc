#include "slicer/slicer.hh"

#include <unordered_map>
#include <unordered_set>

#include "support/logging.hh"
#include "support/sparse_byte_set.hh"
#include "trace/trace_file.hh"

namespace webslice {
namespace slicer {

using trace::FuncId;
using trace::kNoReg;
using trace::Pc;
using trace::Record;
using trace::RecordKind;
using trace::RegId;
using trace::ThreadId;

namespace {

/** Per-thread analysis state for the backward pass. */
struct ThreadState
{
    /** Live virtual registers (dense bitmap, grown on demand). */
    std::vector<bool> liveRegs;
    size_t liveRegCount = 0;

    /** Branch pcs waiting for their nearest preceding dynamic instance. */
    std::unordered_set<Pc> pending;

    /**
     * Backward-reconstructed call stack. A frame is opened at a Ret record
     * and closed at the matching Call; `any` records whether any
     * instruction of the function instance joined the slice, which decides
     * whether the Call/Ret pair joins it too.
     */
    struct Frame
    {
        size_t retIndex;
        bool any = false;
    };
    std::vector<Frame> frames;

    /** Memory effects buffered between a syscall's pseudo-records and the
     *  Syscall record itself (they follow it in forward order, so the
     *  backward pass sees them first). */
    std::vector<trace::MemRange> syscallReads;
    bool syscallWriteWasLive = false;

    bool
    regLive(RegId reg) const
    {
        return reg < liveRegs.size() && liveRegs[reg];
    }

    void
    genReg(RegId reg)
    {
        if (reg == kNoReg)
            return;
        if (reg >= liveRegs.size())
            liveRegs.resize(reg + 1, false);
        if (!liveRegs[reg]) {
            liveRegs[reg] = true;
            ++liveRegCount;
        }
    }

    /** Kill a register; returns whether it was live. */
    bool
    killReg(RegId reg)
    {
        if (reg == kNoReg || !regLive(reg))
            return false;
        liveRegs[reg] = false;
        --liveRegCount;
        return true;
    }
};

} // namespace

struct BackwardPass::Impl
{
    const graph::CfgSet &cfgs;
    const graph::ControlDepMap &deps;
    const trace::CriteriaSet &criteria;
    SlicerOptions options;
    size_t recordCount;

    SliceResult result;
    SparseByteSet liveMem;
    std::unordered_map<ThreadId, ThreadState> threads;
    size_t lastIndex;
    bool finished = false;

    Impl(const graph::CfgSet &cfgs_in, const graph::ControlDepMap &deps_in,
         const trace::CriteriaSet &criteria_in,
         const SlicerOptions &options_in, size_t record_count)
        : cfgs(cfgs_in), deps(deps_in), criteria(criteria_in),
          options(options_in), recordCount(record_count),
          lastIndex(record_count)
    {
        result.inSlice.assign(record_count, 0);
    }

    void
    addControlDeps(ThreadState &ts, FuncId func, Pc pc)
    {
        if (!options.includeControlDeps)
            return;
        for (const Pc branch : deps.depsOf(func, pc))
            ts.pending.insert(branch);
        result.peakPendingBranches = std::max<uint64_t>(
            result.peakPendingBranches, ts.pending.size());
    }

    // Joins record `index` to the slice and propagates the structural
    // consequences shared by every record kind: control dependences and
    // the enclosing-instance flag.
    void
    include(size_t index, const Record &rec, ThreadState &ts)
    {
        result.inSlice[index] = 1;
        ++result.sliceInstructions;
        addControlDeps(ts, cfgs.funcOf[index], rec.pc);
        if (!ts.frames.empty())
            ts.frames.back().any = true;
    }

    void
    feed(size_t idx, const Record &rec)
    {
        panic_if(finished, "feed after finish");
        panic_if(idx >= lastIndex,
                 "records must be fed in strictly descending order");
        lastIndex = idx;

        if (idx >= std::min(options.endIndex, recordCount))
            return; // outside the analysis window

        ThreadState &ts = threads[rec.tid];

        if (!rec.isPseudo())
            ++result.instructionsAnalyzed;

        switch (rec.kind) {
          case RecordKind::Marker: {
            if (options.mode == CriteriaMode::PixelBuffer) {
                for (const auto &range : criteria.forMarker(rec.aux)) {
                    liveMem.insert(range.addr, range.size);
                    result.criteriaBytesSeeded += range.size;
                }
                include(idx, rec, ts);
            }
            break;
          }

          case RecordKind::SyscallWrite: {
            if (liveMem.testAndErase(rec.addr, rec.aux))
                ts.syscallWriteWasLive = true;
            break;
          }

          case RecordKind::SyscallRead: {
            ts.syscallReads.push_back(trace::MemRange{rec.addr, rec.aux});
            break;
          }

          case RecordKind::Syscall: {
            const bool reg_hit = options.includeRegisterDeps &&
                                 ts.killReg(rec.rw);
            bool in_slice = ts.syscallWriteWasLive || reg_hit;
            if (options.mode == CriteriaMode::Syscalls) {
                // The values communicated to the outside world are the
                // criteria themselves: every syscall joins the slice and
                // its read-set becomes live.
                in_slice = true;
            }
            if (in_slice) {
                for (const auto &range : ts.syscallReads) {
                    liveMem.insert(range.addr, range.size);
                    if (options.mode == CriteriaMode::Syscalls)
                        result.criteriaBytesSeeded += range.size;
                }
                include(idx, rec, ts);
            }
            ts.syscallReads.clear();
            ts.syscallWriteWasLive = false;
            break;
          }

          case RecordKind::Store: {
            if (liveMem.testAndErase(rec.addr, rec.aux)) {
                include(idx, rec, ts);
                if (options.includeRegisterDeps) {
                    ts.genReg(rec.rr0);
                    ts.genReg(rec.rr1);
                }
            }
            break;
          }

          case RecordKind::Load: {
            const bool live = options.includeRegisterDeps
                                  ? ts.killReg(rec.rw)
                                  : liveMem.intersects(rec.addr, rec.aux);
            if (live) {
                include(idx, rec, ts);
                liveMem.insert(rec.addr, rec.aux);
                if (options.includeRegisterDeps)
                    ts.genReg(rec.rr0);
            }
            break;
          }

          case RecordKind::Alu:
          case RecordKind::LoadImm: {
            if (!options.includeRegisterDeps)
                break;
            if (ts.killReg(rec.rw)) {
                include(idx, rec, ts);
                ts.genReg(rec.rr0);
                ts.genReg(rec.rr1);
                ts.genReg(rec.rr2);
            }
            break;
          }

          case RecordKind::Branch: {
            auto it = ts.pending.find(rec.pc);
            if (it != ts.pending.end()) {
                ts.pending.erase(it);
                include(idx, rec, ts);
                if (options.includeRegisterDeps)
                    ts.genReg(rec.rr0);
            }
            break;
          }

          case RecordKind::Jump: {
            // Unconditional; no condition variable, never a controller.
            break;
          }

          case RecordKind::Ret: {
            ts.frames.push_back(ThreadState::Frame{idx, false});
            break;
          }

          case RecordKind::Call: {
            bool instance_contributed = false;
            size_t ret_index = recordCount;
            if (!ts.frames.empty()) {
                instance_contributed = ts.frames.back().any;
                ret_index = ts.frames.back().retIndex;
                ts.frames.pop_back();
            }
            if (instance_contributed) {
                include(idx, rec, ts);
                if (options.includeRegisterDeps)
                    ts.genReg(rec.rr0); // indirect-call target register
                // The matching Ret is part of the contributing instance.
                if (ret_index < recordCount &&
                    !result.inSlice[ret_index]) {
                    result.inSlice[ret_index] = 1;
                    ++result.sliceInstructions;
                }
            }
            break;
          }
        }

        result.peakLiveMemBytes =
            std::max<uint64_t>(result.peakLiveMemBytes, liveMem.size());
    }
};

BackwardPass::BackwardPass(const graph::CfgSet &cfgs,
                           const graph::ControlDepMap &deps,
                           const trace::CriteriaSet &criteria,
                           const SlicerOptions &options,
                           size_t record_count)
    : impl_(std::make_unique<Impl>(cfgs, deps, criteria, options,
                                   record_count))
{
    panic_if(cfgs.funcOf.size() != record_count,
             "forward-pass attribution does not match the trace length");
}

BackwardPass::~BackwardPass() = default;

void
BackwardPass::feed(size_t index, const Record &record)
{
    impl_->feed(index, record);
}

SliceResult
BackwardPass::finish()
{
    panic_if(impl_->finished, "finish called twice");
    impl_->finished = true;
    return std::move(impl_->result);
}

SliceResult
computeSlice(std::span<const Record> records, const graph::CfgSet &cfgs,
             const graph::ControlDepMap &deps,
             const trace::CriteriaSet &criteria,
             const SlicerOptions &options)
{
    BackwardPass pass(cfgs, deps, criteria, options, records.size());
    for (size_t idx = records.size(); idx-- > 0;)
        pass.feed(idx, records[idx]);
    return pass.finish();
}

SliceResult
computeSliceFromFile(const std::string &path, const graph::CfgSet &cfgs,
                     const graph::ControlDepMap &deps,
                     const trace::CriteriaSet &criteria,
                     const SlicerOptions &options)
{
    trace::ReverseTraceReader reader(path);
    BackwardPass pass(cfgs, deps, criteria, options,
                      static_cast<size_t>(reader.count()));
    Record rec;
    size_t idx = static_cast<size_t>(reader.count());
    while (reader.next(rec))
        pass.feed(--idx, rec);
    return pass.finish();
}

} // namespace slicer
} // namespace webslice
