/**
 * @file
 * The backward slicer's shared kernel state: live-set policies and the
 * per-thread analysis state.
 *
 * Both backward-pass drivers build on these types:
 *  - the sequential pass (slicer.cc), which is the oracle every other
 *    configuration must match bit for bit, and
 *  - the epoch-parallel driver (epoch.cc), whose stitch and resolve
 *    phases re-run the same transition rules over per-epoch segments.
 *
 * Keeping the state types in one header is what makes "bit-identical"
 * a structural guarantee instead of a testing aspiration: there is one
 * definition of gen/kill, one pending-branch container, one frame
 * stack — the drivers differ only in traversal order and bookkeeping.
 */

#ifndef WEBSLICE_SLICER_KERNEL_HH
#define WEBSLICE_SLICER_KERNEL_HH

#include <cstddef>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "support/flat_map.hh"
#include "support/sparse_byte_set.hh"
#include "trace/record.hh"

namespace webslice {
namespace slicer {

/** std::unordered_set with the pending-set interface (legacy baseline). */
struct StdPendingSet
{
    std::unordered_set<trace::Pc> set;

    void insert(trace::Pc pc) { set.insert(pc); }
    bool erase(trace::Pc pc) { return set.erase(pc) != 0; }
    size_t size() const { return set.size(); }
    uint64_t probeCount() const { return 0; }
    uint64_t resizeCount() const { return 0; }
};

/**
 * The default live-set implementations: flat-hash live memory, flat-hash
 * pending branches, byte-per-register liveness flags, a dense per-tid
 * thread-state array, and the flat-indexed control-dependence lookup.
 */
struct FlatPolicy
{
    using ByteSet = SparseByteSet;
    using PendingSet = FlatSet64;
    using RegFlags = std::vector<uint8_t>;
    static constexpr bool kDenseThreads = true;
    static constexpr bool kIndexedDeps = true;
    static constexpr bool kPreallocRegs = true;
};

/**
 * The seed implementations, kept as the measured perf baseline: every
 * container and lookup path matches what the profiler shipped with, so
 * benchmarks comparing against this policy report the real gain.
 */
struct LegacyPolicy
{
    using ByteSet = LegacySparseByteSet;
    using PendingSet = StdPendingSet;
    using RegFlags = std::vector<bool>;
    static constexpr bool kDenseThreads = false;
    static constexpr bool kIndexedDeps = false;
    static constexpr bool kPreallocRegs = false;
};

/**
 * Per-thread analysis state for the backward pass.
 *
 * Copyable by design: the epoch driver snapshots the full analysis state
 * at each epoch boundary and seeds the epoch's resolve from the copy.
 */
template <typename Policy>
struct ThreadState
{
    /**
     * Live virtual registers. The flat policy sizes the array for the
     * whole RegId space upfront (64 KiB per thread) so the hot
     * gen/kill paths carry no bounds or sentinel branches: kNoReg
     * indexes a slot that is never set. The legacy policy keeps the
     * seed's grown-on-demand vector<bool>.
     */
    typename Policy::RegFlags liveRegs;
    size_t liveRegCount = 0;

    ThreadState()
    {
        if constexpr (Policy::kPreallocRegs)
            liveRegs.assign(size_t{trace::kNoReg} + 1, 0);
    }

    /** Branch pcs waiting for their nearest preceding dynamic instance. */
    typename Policy::PendingSet pending;

    /**
     * Backward-reconstructed call stack. A frame is opened at a Ret record
     * and closed at the matching Call; `any` records whether any
     * instruction of the function instance joined the slice, which decides
     * whether the Call/Ret pair joins it too.
     */
    struct Frame
    {
        size_t retIndex;
        bool any = false;
    };
    std::vector<Frame> frames;

    /** Memory effects buffered between a syscall's pseudo-records and the
     *  Syscall record itself (they follow it in forward order, so the
     *  backward pass sees them first). */
    std::vector<trace::MemRange> syscallReads;
    bool syscallWriteWasLive = false;

    bool
    regLive(trace::RegId reg) const
    {
        if constexpr (Policy::kPreallocRegs)
            return liveRegs[reg] != 0;
        else
            return reg < liveRegs.size() && liveRegs[reg];
    }

    void
    genReg(trace::RegId reg)
    {
        if (reg == trace::kNoReg)
            return;
        if constexpr (!Policy::kPreallocRegs) {
            if (reg >= liveRegs.size())
                liveRegs.resize(reg + 1, false);
        }
        if (!liveRegs[reg]) {
            liveRegs[reg] = true;
            ++liveRegCount;
        }
    }

    /** Kill a register; returns whether it was live. */
    bool
    killReg(trace::RegId reg)
    {
        if constexpr (Policy::kPreallocRegs) {
            // kNoReg's slot exists and is never set; no sentinel branch.
            if (!liveRegs[reg])
                return false;
        } else {
            if (reg == trace::kNoReg || !regLive(reg))
                return false;
        }
        liveRegs[reg] = false;
        --liveRegCount;
        return true;
    }
};

} // namespace slicer
} // namespace webslice

#endif // WEBSLICE_SLICER_KERNEL_HH
