/**
 * @file
 * The epoch-parallel backward slicer (see epoch.hh for the scheme).
 *
 * Exactness argument, in brief: the stitch phase replays the full
 * transition rules of the sequential kernel over every epoch's ops, so
 * the state it holds when it reaches an epoch boundary *is* the state
 * the sequential pass holds at that record index — not an approximation
 * of it. Each epoch's resolve then replays its segment from that exact
 * state, so every include decision matches the sequential pass record
 * for record. Elided records are provable state-no-ops under the
 * options in force (they could never change liveness, pending branches,
 * frames, or the slice), so eliding them changes neither phase.
 *
 * The only outputs that may differ from the sequential pass are the
 * flatProbes/flatResizes diagnostics: per-epoch hash tables grow from
 * scratch, so their probe and rehash history is not the sequential
 * walk's. Every other field, including the verdict bitmap, the
 * counters, and the peaks, is bit-identical.
 */

#include "slicer/epoch.hh"

#include <algorithm>
#include <array>
#include <atomic>
#include <condition_variable>
#include <cstring>
#include <limits>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "slicer/kernel.hh"
#include "support/flat_map.hh"
#include "support/logging.hh"
#include "support/metrics.hh"
#include "support/thread_pool.hh"
#include "trace/trace_file.hh"

namespace webslice {
namespace slicer {

using trace::kNoReg;
using trace::Pc;
using trace::Record;
using trace::RecordKind;
using trace::RegId;
using trace::ThreadId;

const std::vector<size_t> *EpochPlanner::boundariesOverrideForTesting =
    nullptr;
bool EpochPlanner::forceWidenedSummariesForTesting = false;

namespace {

/** aux16 sentinel: the access size lives in EpochData::wideSizes. */
constexpr uint16_t kWideSize = 0xFFFF;

/**
 * One transcoded record, 24 bytes. Field use is per kind:
 *  - Store:        a=addr, aux16=size, r0=rr0, rw=rr1 (never kills)
 *  - Load:         a=addr, aux16=size, r0=rr0, rw=rw
 *  - Alu/LoadImm:  a=rr1|(rr2<<16), r0=rr0, rw=rw
 *  - Branch:       a=pc, r0=rr0
 *  - Call:         r0=rr0
 *  - Ret:          idx only
 *  - Marker:       a=ordinal
 *  - Syscall:      rw=rw
 *  - SyscallR/W:   a=addr, deps=byte count (pseudos never join the slice)
 * `deps` is 0 (no control deps) or 1 + an index into the epoch's
 * depsTable of pre-resolved dependence spans; `tid8` indexes the
 * epoch's tid table.
 */
struct StitchOp
{
    uint64_t a = 0;
    uint32_t idx = 0;
    uint32_t deps = 0;
    RegId r0 = kNoReg;
    RegId rw = kNoReg;
    uint16_t aux16 = 0;
    uint8_t kind = 0;
    uint8_t tid8 = 0;
};

static_assert(sizeof(StitchOp) == 24, "ops are the stitch phase's working "
                                      "set; keep them packed");

/**
 * Memoized gen/kill summary of one epoch, computed during transcode.
 *
 * The summary answers one question for a later query: can the incoming
 * analysis state pass through this epoch provably unchanged? Every
 * state transition in the walk is gated on a join test, and every join
 * test consults exactly one of the domains below, so if none of them
 * can fire against the incoming state the whole epoch is a state no-op
 * for that query and the walk may skip it (see summaryAllowsSkip()).
 *
 * Registers and branch pcs are tracked exactly; memory is tracked at
 * 4 KiB page granularity. When a domain outgrows its cap the summary
 * widens to "may touch anything" (`widened`), which conservatively
 * disables skipping but never affects correctness — widened epochs are
 * simply walked.
 */
struct EpochSummary
{
    /** A cap overflowed (or the test hook fired): never skippable. */
    bool widened = false;

    /** Epoch contains Marker ops: pixel-mode queries seed criteria (and
     *  write verdicts) here unconditionally. */
    bool hasMarkers = false;

    /** Epoch contains Syscall ops: syscalls-mode queries join at every
     *  one of them unconditionally. */
    bool hasSyscalls = false;

    /** Every Ret frame pushed in the epoch is popped by a Call in the
     *  same epoch, per thread, and no Call pops a frame the epoch did
     *  not push — so the incoming frame stacks pass through untouched. */
    bool framesBalanced = true;

    /** A SyscallRead pseudo was not followed (in walk order) by its
     *  Syscall within the epoch; the buffered reads would leak into the
     *  outgoing state, so the epoch cannot be skipped. */
    bool danglingSyscallReads = false;

    /** Registers whose liveness would trigger a kill or join (exact). */
    std::vector<RegId> testedRegs;

    /** Branch pcs the epoch could erase from a pending set (exact). */
    std::vector<Pc> branchPcs;

    /** 4 KiB pages the epoch's stores, syscall writes, and (in
     *  memory-only mode) loads probe the live-memory set with. */
    std::vector<uint64_t> touchPages;
};

/** One epoch's transcode output. */
struct EpochData
{
    size_t first = 0; ///< Record range [first, last) of this epoch.
    size_t last = 0;

    /** Ops in backward walk order (descending record index). */
    std::vector<StitchOp> ops;

    /** Pre-resolved control-dependence spans (into the sealed map). */
    std::vector<std::pair<const Pc *, uint32_t>> depsTable;

    /** tid8 -> real thread id. */
    std::vector<ThreadId> tids;

    /** Record index -> access size, for sizes aux16 cannot hold. */
    std::unordered_map<uint32_t, uint64_t> wideSizes;

    /** Non-pseudo records in the epoch (the instructionsAnalyzed share,
     *  elided ones included). */
    uint64_t nonPseudoRecords = 0;

    /** Records dropped as provable state-no-ops. */
    uint64_t elidedRecords = 0;

    /** Gen/kill summary for query-time epoch skipping. */
    EpochSummary summary;

    /** False when the epoch cannot be encoded (> 256 distinct tids);
     *  the driver falls back to the sequential pass. */
    bool ok = true;
};

/**
 * Compiles one epoch's records (fed newest first) into StitchOps,
 * applying the elision rules and pre-resolving dependence lists so the
 * serial stitch phase never probes the control-dependence map.
 */
class EpochTranscoder
{
  public:
    EpochTranscoder(const graph::CfgSet &cfgs,
                    const graph::ControlDepMap &deps,
                    const SlicerOptions &options,
                    const FlatSet64 *branch_universe, size_t first,
                    size_t last)
        : cfgs_(cfgs), deps_(deps), options_(options),
          universe_(branch_universe)
    {
        data_.first = first;
        data_.last = last;
        data_.ops.reserve(last - first);
    }

    /** Feed record `idx` (indices strictly descending within the epoch). */
    void
    consume(size_t idx, const Record &rec)
    {
        if (!data_.ok)
            return;
        if (!rec.isPseudo())
            ++data_.nonPseudoRecords;

        switch (rec.kind) {
          case RecordKind::Jump:
            // Unconditional; the kernel's case is empty.
            ++data_.elidedRecords;
            return;

          case RecordKind::Marker: {
            // Always emitted, whatever the criteria mode: the walk
            // checks the mode instead, which keeps the transcode (and
            // any EpochPlan built from it) criterion-independent.
            StitchOp op = base(idx, rec, RecordKind::Marker);
            op.a = rec.aux;
            op.deps = depsRef(idx, rec.pc);
            data_.ops.push_back(op);
            data_.summary.hasMarkers = true;
            return;
          }

          case RecordKind::Alu:
          case RecordKind::LoadImm: {
            // Without register deps these are no-ops; with them, a dead
            // destination (kNoReg) can never be killed and so can never
            // include or gen.
            if (!options_.includeRegisterDeps || rec.rw == kNoReg) {
                ++data_.elidedRecords;
                return;
            }
            StitchOp op = base(idx, rec, RecordKind::Alu);
            op.a = static_cast<uint64_t>(rec.rr1) |
                   (static_cast<uint64_t>(rec.rr2) << 16);
            op.r0 = rec.rr0;
            op.rw = rec.rw;
            op.deps = depsRef(idx, rec.pc);
            data_.ops.push_back(op);
            noteTestedReg(rec.rw);
            return;
          }

          case RecordKind::Load: {
            // In register mode a dead destination decides aliveness, so
            // kNoReg is a no-op; in memory-only mode the verdict comes
            // from the live set and the record must survive.
            if (options_.includeRegisterDeps && rec.rw == kNoReg) {
                ++data_.elidedRecords;
                return;
            }
            StitchOp op = base(idx, rec, RecordKind::Load);
            op.a = rec.addr;
            op.aux16 = packSize(idx, rec.aux);
            op.r0 = rec.rr0;
            op.rw = rec.rw;
            op.deps = depsRef(idx, rec.pc);
            data_.ops.push_back(op);
            if (options_.includeRegisterDeps)
                noteTestedReg(rec.rw); // join gated on the destination
            else
                noteTouchedPages(rec.addr, rec.aux); // gated on liveMem
            return;
          }

          case RecordKind::Store: {
            if (rec.aux == 0) {
                ++data_.elidedRecords;
                return;
            }
            StitchOp op = base(idx, rec, RecordKind::Store);
            op.a = rec.addr;
            op.aux16 = packSize(idx, rec.aux);
            op.r0 = rec.rr0;
            op.rw = rec.rr1; // second source rides in the rw slot
            op.deps = depsRef(idx, rec.pc);
            data_.ops.push_back(op);
            noteTouchedPages(rec.addr, rec.aux);
            return;
          }

          case RecordKind::Branch: {
            // Pending sets only ever receive pcs from dependence lists,
            // so a branch outside the universe can never be erased from
            // one — it is a state no-op. With control deps disabled the
            // universe is empty and every branch elides.
            if (!universe_ || !universe_->contains(rec.pc)) {
                ++data_.elidedRecords;
                return;
            }
            StitchOp op = base(idx, rec, RecordKind::Branch);
            op.a = rec.pc;
            op.r0 = rec.rr0;
            op.deps = depsRef(idx, rec.pc);
            data_.ops.push_back(op);
            noteBranchPc(rec.pc);
            return;
          }

          case RecordKind::Call: {
            StitchOp op = base(idx, rec, RecordKind::Call);
            op.r0 = rec.rr0;
            op.deps = depsRef(idx, rec.pc);
            data_.ops.push_back(op);
            // A Call with no in-epoch Ret frame to pop would pop (and
            // possibly join through) a frame from a newer epoch.
            if (frameDepth_[op.tid8] == 0)
                data_.summary.framesBalanced = false;
            else
                --frameDepth_[op.tid8];
            return;
          }

          case RecordKind::Ret: {
            const StitchOp op = base(idx, rec, RecordKind::Ret);
            data_.ops.push_back(op);
            ++frameDepth_[op.tid8];
            return;
          }

          case RecordKind::Syscall: {
            StitchOp op = base(idx, rec, RecordKind::Syscall);
            op.rw = rec.rw;
            op.deps = depsRef(idx, rec.pc);
            data_.ops.push_back(op);
            data_.summary.hasSyscalls = true;
            if (options_.includeRegisterDeps)
                noteTestedReg(rec.rw);
            pendingReads_[op.tid8] = 0; // the Syscall drains the buffer
            return;
          }

          case RecordKind::SyscallRead:
          case RecordKind::SyscallWrite: {
            StitchOp op = base(idx, rec, rec.kind);
            op.a = rec.addr;
            op.deps = rec.aux; // byte count; pseudos never need a dep ref
            data_.ops.push_back(op);
            if (rec.kind == RecordKind::SyscallRead)
                pendingReads_[op.tid8] = 1;
            else
                noteTouchedPages(rec.addr, rec.aux);
            return;
          }
        }
    }

    EpochData
    take()
    {
        EpochSummary &s = data_.summary;
        for (size_t t = 0; t < data_.tids.size(); ++t) {
            if (frameDepth_[t] != 0)
                s.framesBalanced = false; // unmatched Ret frames leak out
            if (pendingReads_[t])
                s.danglingSyscallReads = true;
        }
        if (EpochPlanner::forceWidenedSummariesForTesting)
            s.widened = true;
        if (s.widened) {
            // A widened summary is never consulted beyond the flag.
            s.testedRegs.clear();
            s.branchPcs.clear();
            s.touchPages.clear();
        } else {
            const auto sorted = [](auto &dst, const auto &src) {
                dst.assign(src.begin(), src.end());
                std::sort(dst.begin(), dst.end());
            };
            sorted(s.testedRegs, sumRegs_);
            sorted(s.branchPcs, sumBranches_);
            sorted(s.touchPages, sumPages_);
        }
        return std::move(data_);
    }

  private:
    /** Summary caps; an overflowing domain widens the whole summary. */
    static constexpr size_t kMaxSummaryRegs = 256;
    static constexpr size_t kMaxSummaryBranches = 1024;
    static constexpr size_t kMaxSummaryPages = 256;

    void
    noteTestedReg(RegId reg)
    {
        if (reg == kNoReg || data_.summary.widened)
            return;
        sumRegs_.insert(reg);
        if (sumRegs_.size() > kMaxSummaryRegs)
            data_.summary.widened = true;
    }

    void
    noteBranchPc(Pc pc)
    {
        if (data_.summary.widened)
            return;
        sumBranches_.insert(pc);
        if (sumBranches_.size() > kMaxSummaryBranches)
            data_.summary.widened = true;
    }

    void
    noteTouchedPages(uint64_t addr, uint64_t size)
    {
        if (size == 0 || data_.summary.widened)
            return;
        const uint64_t last = addr + (size - 1);
        if (last < addr || (last >> 12) - (addr >> 12) >= kMaxSummaryPages) {
            data_.summary.widened = true;
            return;
        }
        for (uint64_t page = addr >> 12; page <= (last >> 12); ++page)
            sumPages_.insert(page);
        if (sumPages_.size() > kMaxSummaryPages)
            data_.summary.widened = true;
    }

    StitchOp
    base(size_t idx, const Record &rec, RecordKind kind)
    {
        StitchOp op;
        op.idx = static_cast<uint32_t>(idx);
        op.kind = static_cast<uint8_t>(kind);
        op.tid8 = tid8(rec.tid);
        return op;
    }

    uint8_t
    tid8(ThreadId tid)
    {
        auto it = tidMap_.find(tid);
        if (it != tidMap_.end())
            return it->second;
        if (data_.tids.size() >= 256) {
            data_.ok = false;
            return 0;
        }
        data_.tids.push_back(tid);
        const auto t8 = static_cast<uint8_t>(data_.tids.size() - 1);
        tidMap_.emplace(tid, t8);
        return t8;
    }

    uint16_t
    packSize(size_t idx, uint32_t size)
    {
        if (size < kWideSize)
            return static_cast<uint16_t>(size);
        data_.wideSizes.emplace(static_cast<uint32_t>(idx), size);
        return kWideSize;
    }

    /** 0 for no deps, else 1 + depsTable index; memoized per (func, pc). */
    uint32_t
    depsRef(size_t idx, Pc pc)
    {
        if (!options_.includeControlDeps)
            return 0;
        const auto func = cfgs_.funcOf[idx];
        const uint64_t key = (static_cast<uint64_t>(func) << 32) | pc;
        auto it = depsCache_.find(key);
        if (it != depsCache_.end())
            return it->second;
        uint32_t ref = 0;
        const auto span = deps_.depsOf(func, pc);
        if (!span.empty()) {
            data_.depsTable.emplace_back(span.data(),
                                         static_cast<uint32_t>(span.size()));
            ref = static_cast<uint32_t>(data_.depsTable.size());
        }
        depsCache_.emplace(key, ref);
        return ref;
    }

    const graph::CfgSet &cfgs_;
    const graph::ControlDepMap &deps_;
    const SlicerOptions &options_;
    const FlatSet64 *universe_;
    EpochData data_;
    std::unordered_map<ThreadId, uint8_t> tidMap_;
    std::unordered_map<uint64_t, uint32_t> depsCache_;

    /** Summary accumulators (finalized into sorted vectors by take()). */
    std::unordered_set<uint64_t> sumRegs_;
    std::unordered_set<uint64_t> sumBranches_;
    std::unordered_set<uint64_t> sumPages_;
    std::array<int64_t, 256> frameDepth_{};
    std::array<uint8_t, 256> pendingReads_{};
};

using TS = ThreadState<FlatPolicy>;

/**
 * The full analysis state carried across epochs. Copyable: a boundary
 * snapshot is a plain copy of this struct.
 */
struct WalkState
{
    SparseByteSet liveMem;
    std::unordered_map<ThreadId, TS> threads;
};

/**
 * Replay one epoch's ops over `st`, applying exactly the sequential
 * kernel's transition rules. kEmit=false is the stitch phase (state
 * only); kEmit=true is the resolve phase, which additionally writes the
 * shared verdict bitmap and accumulates counters and peaks into `out`.
 */
template <bool kEmit>
void
walkEpoch(const EpochData &ep, WalkState &st, const SlicerOptions &opt,
          const trace::CriteriaSet &criteria, size_t record_count,
          SliceResult *out, uint8_t *in_slice)
{
    // Per-epoch tid8 -> thread-state pointer cache; unordered_map node
    // references are stable across inserts, so the pointers stay valid.
    std::array<TS *, 256> cache{};

    uint64_t probe_base = 0;
    uint64_t resize_base = 0;
    if constexpr (kEmit) {
        probe_base = st.liveMem.probeCount();
        resize_base = st.liveMem.resizeCount();
        for (const auto &kv : st.threads) {
            probe_base += kv.second.pending.probeCount();
            resize_base += kv.second.pending.resizeCount();
        }
    }

    auto thread_state = [&](uint8_t t8) -> TS & {
        TS *&slot = cache[t8];
        if (!slot)
            slot = &st.threads[ep.tids[t8]];
        return *slot;
    };

    auto sample_peak_mem = [&] {
        if constexpr (kEmit) {
            out->peakLiveMemBytes = std::max<uint64_t>(
                out->peakLiveMemBytes, st.liveMem.size());
            out->peakLiveMemChunks = std::max<uint64_t>(
                out->peakLiveMemChunks, st.liveMem.chunkCount());
        }
    };

    auto include = [&](const StitchOp &op, TS &ts) {
        if constexpr (kEmit) {
            in_slice[op.idx] = 1;
            ++out->sliceInstructions;
        }
        if (op.deps != 0) {
            const auto &span = ep.depsTable[op.deps - 1];
            for (uint32_t i = 0; i < span.second; ++i)
                ts.pending.insert(span.first[i]);
            if constexpr (kEmit) {
                out->peakPendingBranches = std::max<uint64_t>(
                    out->peakPendingBranches, ts.pending.size());
            }
        }
        if (!ts.frames.empty())
            ts.frames.back().any = true;
    };

    auto mem_size = [&](const StitchOp &op) -> uint64_t {
        if (op.aux16 != kWideSize)
            return op.aux16;
        return ep.wideSizes.at(op.idx);
    };

    for (const StitchOp &op : ep.ops) {
        TS &ts = thread_state(op.tid8);
        switch (static_cast<RecordKind>(op.kind)) {
          case RecordKind::Marker: {
            // Markers are transcoded in every mode (the op stream is
            // criterion-independent); only pixel-mode queries act on
            // them, exactly as the sequential kernel does.
            if (opt.mode != CriteriaMode::PixelBuffer)
                break;
            for (const auto &range :
                 criteria.forMarker(static_cast<uint32_t>(op.a))) {
                st.liveMem.insert(range.addr, range.size);
                if constexpr (kEmit)
                    out->criteriaBytesSeeded += range.size;
            }
            sample_peak_mem();
            include(op, ts);
            break;
          }

          case RecordKind::SyscallWrite: {
            if (st.liveMem.testAndErase(op.a, op.deps))
                ts.syscallWriteWasLive = true;
            break;
          }

          case RecordKind::SyscallRead: {
            ts.syscallReads.push_back(trace::MemRange{op.a, op.deps});
            break;
          }

          case RecordKind::Syscall: {
            const bool reg_hit =
                opt.includeRegisterDeps && ts.killReg(op.rw);
            bool joins = ts.syscallWriteWasLive || reg_hit;
            if (opt.mode == CriteriaMode::Syscalls)
                joins = true;
            if (joins) {
                for (const auto &range : ts.syscallReads) {
                    st.liveMem.insert(range.addr, range.size);
                    if constexpr (kEmit) {
                        if (opt.mode == CriteriaMode::Syscalls)
                            out->criteriaBytesSeeded += range.size;
                    }
                }
                sample_peak_mem();
                include(op, ts);
            }
            ts.syscallReads.clear();
            ts.syscallWriteWasLive = false;
            break;
          }

          case RecordKind::Store: {
            if (st.liveMem.testAndErase(op.a, mem_size(op))) {
                include(op, ts);
                if (opt.includeRegisterDeps) {
                    ts.genReg(op.r0);
                    ts.genReg(op.rw); // rr1 rides in the rw slot
                }
            }
            break;
          }

          case RecordKind::Load: {
            const bool live = opt.includeRegisterDeps
                                  ? ts.killReg(op.rw)
                                  : st.liveMem.intersects(op.a,
                                                          mem_size(op));
            if (live) {
                include(op, ts);
                st.liveMem.insert(op.a, mem_size(op));
                sample_peak_mem();
                if (opt.includeRegisterDeps)
                    ts.genReg(op.r0);
            }
            break;
          }

          case RecordKind::Alu: {
            // Only emitted with register deps on and a live-able rw.
            if (ts.killReg(op.rw)) {
                include(op, ts);
                ts.genReg(op.r0);
                ts.genReg(static_cast<RegId>(op.a & 0xFFFF));
                ts.genReg(static_cast<RegId>((op.a >> 16) & 0xFFFF));
            }
            break;
          }

          case RecordKind::Branch: {
            if (ts.pending.erase(static_cast<Pc>(op.a))) {
                include(op, ts);
                if (opt.includeRegisterDeps)
                    ts.genReg(op.r0);
            }
            break;
          }

          case RecordKind::Ret: {
            ts.frames.push_back(
                TS::Frame{static_cast<size_t>(op.idx), false});
            break;
          }

          case RecordKind::Call: {
            bool instance_contributed = false;
            size_t ret_index = record_count;
            if (!ts.frames.empty()) {
                instance_contributed = ts.frames.back().any;
                ret_index = ts.frames.back().retIndex;
                ts.frames.pop_back();
            }
            if (instance_contributed) {
                include(op, ts);
                if (opt.includeRegisterDeps)
                    ts.genReg(op.r0);
                // The matching Ret may live in a later epoch; only the
                // epoch that pops the frame writes its verdict, so the
                // cross-epoch write is conflict-free.
                if constexpr (kEmit) {
                    if (ret_index < record_count &&
                        !in_slice[ret_index]) {
                        in_slice[ret_index] = 1;
                        ++out->sliceInstructions;
                    }
                }
            }
            break;
          }

          default:
            panic_if(true, "unexpected op kind in epoch walk");
        }
    }

    if constexpr (kEmit) {
        uint64_t probes = st.liveMem.probeCount();
        uint64_t resizes = st.liveMem.resizeCount();
        for (const auto &kv : st.threads) {
            probes += kv.second.pending.probeCount();
            resizes += kv.second.pending.resizeCount();
        }
        out->flatProbes += probes - probe_base;
        out->flatResizes += resizes - resize_base;
    }
}

/**
 * The skippability proof: true when the incoming analysis state would
 * pass through the epoch provably unchanged, so the walk may omit it.
 *
 * Soundness argument: every state mutation in walkEpoch is gated on a
 * join test against the incoming state — a store/syscall-write hitting
 * live memory, a kill of a live register, a branch pc present in a
 * pending set, an unconditional criteria seed (markers in pixel mode,
 * syscalls in syscalls mode), or a Call popping a frame the epoch did
 * not push. If none of those can fire, no op mutates anything, so the
 * state stays constant through the epoch and checking each condition
 * against the *incoming* state is exact, not just a fixed point. The
 * transient syscall-read buffer is the one un-gated mutation; it is
 * provably drained when the epoch has no dangling pseudo groups.
 */
bool
summaryAllowsSkip(const EpochData &ep, const WalkState &st,
                  const SlicerOptions &opt)
{
    const EpochSummary &s = ep.summary;
    if (s.widened || !s.framesBalanced || s.danglingSyscallReads)
        return false;
    if (opt.mode == CriteriaMode::PixelBuffer && s.hasMarkers)
        return false;
    if (opt.mode == CriteriaMode::Syscalls && s.hasSyscalls)
        return false;
    for (const auto &kv : st.threads) {
        const TS &ts = kv.second;
        // Buffered pseudo state from a newer epoch would be consumed by
        // this epoch's Syscall ops; impossible when boundaries respect
        // syscall groups, but cheap to guard against.
        if (ts.syscallWriteWasLive || !ts.syscallReads.empty())
            return false;
        if (ts.liveRegCount != 0) {
            for (const RegId reg : s.testedRegs)
                if (ts.regLive(reg))
                    return false;
        }
        if (ts.pending.size() != 0) {
            for (const Pc pc : s.branchPcs)
                if (ts.pending.contains(pc))
                    return false;
        }
    }
    if (st.liveMem.size() != 0) {
        for (const uint64_t page : s.touchPages)
            if (st.liveMem.intersects(page << 12, 4096))
                return false;
    }
    return true;
}

/**
 * Turn interior boundary proposals into the final [0, b1, ..., end]
 * plan: clamp to the window, shift each off syscall pseudo-groups, and
 * keep the sequence monotonic (a shift may not cross the previous
 * boundary; if it would, the boundary collapses and the epoch is empty,
 * which the walk handles).
 */
std::vector<size_t>
finalizeBounds(const std::vector<size_t> &interior, size_t end,
               const std::function<size_t(size_t)> &shift)
{
    std::vector<size_t> bounds{0};
    for (size_t b : interior) {
        b = shift(std::min(b, end));
        bounds.push_back(std::max(b, bounds.back()));
    }
    bounds.push_back(end);
    return bounds;
}

/** Equal-record interior boundaries for `epochs` epochs over [0, end). */
std::vector<size_t>
proposeEqualRecords(size_t end, size_t epochs)
{
    std::vector<size_t> interior;
    for (size_t k = 1; k < epochs; ++k) {
        interior.push_back(static_cast<size_t>(
            static_cast<uint64_t>(end) * k / epochs));
    }
    return interior;
}

/**
 * Equal-work interior boundaries from the trace's block index: split so
 * each epoch holds about the same number of executed instructions, at
 * block granularity. Falls back to equal records when the index covers
 * no full block of the window.
 */
std::vector<size_t>
proposeEqualWork(const trace::TraceBlockIndex &index, size_t end,
                 size_t epochs)
{
    const auto block = static_cast<size_t>(index.blockRecords);
    const size_t usable = std::min(index.blockCount(), end / block);
    uint64_t total = 0;
    for (size_t b = 0; b < usable; ++b)
        total += index.instructions[b];
    if (total == 0)
        return proposeEqualRecords(end, epochs);

    std::vector<size_t> interior;
    uint64_t acc = 0;
    size_t next = 1;
    for (size_t b = 0; b < usable && next < epochs; ++b) {
        acc += index.instructions[b];
        while (next < epochs && acc * epochs >= total * next) {
            interior.push_back(std::min((b + 1) * block, end));
            ++next;
        }
    }
    while (interior.size() + 1 < epochs)
        interior.push_back(end);
    return interior;
}

/** Epochs to plan: enough to overlap the stitch with transcodes and to
 *  smooth load imbalance, capped so no epoch is empty by construction. */
size_t
epochTarget(size_t end, unsigned jobs)
{
    return std::max<size_t>(
        1, std::min<size_t>(static_cast<size_t>(jobs) * 4, end));
}

/**
 * The three-phase driver shared by the in-memory and streaming fronts.
 * `transcode(first, last, tc)` feeds the epoch's records (newest first)
 * into the transcoder; `sequential()` is the oracle fallback used when
 * an epoch cannot be encoded.
 */
template <typename TranscodeFn>
SliceResult
runEpochParallel(const graph::CfgSet &cfgs,
                 const graph::ControlDepMap &deps,
                 const trace::CriteriaSet &criteria,
                 const SlicerOptions &options, size_t record_count,
                 const std::vector<size_t> &bounds,
                 const TranscodeFn &transcode,
                 const std::function<SliceResult()> &sequential)
{
    const size_t epoch_count = bounds.size() - 1;
    const size_t end = bounds.back();
    auto &registry = MetricRegistry::global();

    // Sealing is lazy and not safe to race; force it before the
    // transcode tasks start probing from worker threads.
    deps.ensureSealed();
    FlatSet64 universe;
    if (options.includeControlDeps) {
        const auto pcs = deps.branchUniverse();
        universe.reserve(pcs.size());
        for (const Pc pc : pcs)
            universe.insert(pc);
    }
    const FlatSet64 *universe_ptr =
        options.includeControlDeps ? &universe : nullptr;

    std::vector<EpochData> epochs(epoch_count);
    std::vector<uint8_t> transcoded(epoch_count, 0);
    std::mutex mutex;
    std::condition_variable cv;
    std::atomic<bool> need_fallback{false};

    const unsigned jobs = ThreadPool::resolveJobs(options.backwardJobs);
    ThreadPool pool(jobs - 1);
    TaskGroup group;

    // Newest epochs first: the stitch consumes them in that order, so
    // the serial phase starts as soon as the first transcode lands.
    for (size_t k = epoch_count; k-- > 0;) {
        pool.post(group, [&, k] {
            std::exception_ptr error;
            try {
                EpochTranscoder tc(cfgs, deps, options, universe_ptr,
                                   bounds[k], bounds[k + 1]);
                transcode(bounds[k], bounds[k + 1], tc);
                epochs[k] = tc.take();
                if (!epochs[k].ok)
                    need_fallback.store(true);
            } catch (...) {
                error = std::current_exception();
                need_fallback.store(true);
            }
            {
                std::lock_guard<std::mutex> lock(mutex);
                transcoded[k] = 1;
            }
            cv.notify_all();
            if (error)
                std::rethrow_exception(error);
        });
    }

    SliceResult result;
    result.inSlice.assign(record_count, 0);
    result.analyzedWindowEnd = end;
    result.recordsFed = end;

    std::vector<SliceResult> partial(epoch_count);
    WalkState state;
    bool aborted = false;
    uint64_t skipped = 0;

    // Stitch on the calling thread, newest epoch to oldest. The state
    // *before* stitching epoch k is its exact live-out; snapshot it,
    // hand the snapshot to a resolve task, then advance the state
    // through the epoch. Epoch 0 needs no live-out for anyone, so the
    // state moves into its resolve instead of being stitched.
    for (size_t k = epoch_count; k-- > 0;) {
        {
            std::unique_lock<std::mutex> lock(mutex);
            cv.wait(lock, [&] { return transcoded[k] != 0; });
        }
        if (need_fallback.load()) {
            aborted = true;
            break;
        }
        // Neither stitch nor resolve: the summary proves the state
        // passes through unchanged and the epoch can emit nothing.
        if (summaryAllowsSkip(epochs[k], state, options)) {
            ++skipped;
            continue;
        }
        if (k > 0) {
            auto seed = std::make_shared<WalkState>(state);
            pool.post(group, [&, k, seed] {
                walkEpoch<true>(epochs[k], *seed, options, criteria,
                                record_count, &partial[k],
                                result.inSlice.data());
            });
            walkEpoch<false>(epochs[k], state, options, criteria,
                             record_count, nullptr, nullptr);
        } else {
            auto seed = std::make_shared<WalkState>(std::move(state));
            pool.post(group, [&, seed] {
                walkEpoch<true>(epochs[0], *seed, options, criteria,
                                record_count, &partial[0],
                                result.inSlice.data());
            });
        }
    }

    // The caller joins the resolve phase: drain runs queued tasks on
    // this thread until the group is idle (rethrowing task errors).
    pool.drain(group);

    if (aborted || need_fallback.load()) {
        registry.counter("slicer.epoch_fallbacks").add(1);
        return sequential();
    }

    uint64_t elided = 0;
    for (size_t k = 0; k < epoch_count; ++k) {
        result.sliceInstructions += partial[k].sliceInstructions;
        result.criteriaBytesSeeded += partial[k].criteriaBytesSeeded;
        result.flatProbes += partial[k].flatProbes;
        result.flatResizes += partial[k].flatResizes;
        result.peakLiveMemBytes = std::max(result.peakLiveMemBytes,
                                           partial[k].peakLiveMemBytes);
        result.peakLiveMemChunks = std::max(result.peakLiveMemChunks,
                                            partial[k].peakLiveMemChunks);
        result.peakPendingBranches =
            std::max(result.peakPendingBranches,
                     partial[k].peakPendingBranches);
        result.instructionsAnalyzed += epochs[k].nonPseudoRecords;
        elided += epochs[k].elidedRecords;
    }

    registry.counter("slicer.epochs_planned").add(epoch_count);
    registry.counter("slicer.epoch_elided_records").add(elided);
    registry.counter("slicer.epochs_skipped").add(skipped);
    publishSliceMetrics(result);
    return result;
}

std::vector<size_t>
interiorProposals(size_t end, size_t epochs)
{
    if (EpochPlanner::boundariesOverrideForTesting) {
        auto interior = *EpochPlanner::boundariesOverrideForTesting;
        std::sort(interior.begin(), interior.end());
        return interior;
    }
    return proposeEqualRecords(end, epochs);
}

/**
 * Epochs for a reusable plan. Unlike epochTarget(), this is independent
 * of the requesting query's job count (any job count replays any
 * partition bit-identically) and leans finer: more epochs mean finer
 * summary granularity, so warm queries whose live sets die early can
 * skip a larger fraction of the window.
 */
size_t
planEpochTarget(size_t end)
{
    return std::max<size_t>(
        1,
        std::min({end, std::max<size_t>(end / 2048, 8), size_t{128}}));
}

/** Rough resident size of one transcoded epoch, for cache budgets. */
uint64_t
epochApproxBytes(const EpochData &ep)
{
    uint64_t bytes = sizeof(EpochData);
    bytes += ep.ops.capacity() * sizeof(StitchOp);
    bytes += ep.depsTable.capacity() * sizeof(ep.depsTable[0]);
    bytes += ep.tids.capacity() * sizeof(ThreadId);
    bytes += ep.wideSizes.size() * 32;
    bytes += ep.summary.testedRegs.capacity() * sizeof(RegId);
    bytes += ep.summary.branchPcs.capacity() * sizeof(Pc);
    bytes += ep.summary.touchPages.capacity() * sizeof(uint64_t);
    return bytes;
}

} // namespace

/** The plan's private state: the transcoded epochs and their keying. */
struct EpochPlan::Data
{
    /** Epoch boundaries [0, b1, ..., windowEnd]. */
    std::vector<size_t> bounds;

    /** Transcoded epochs, oldest first (bounds[k] .. bounds[k+1]). */
    std::vector<EpochData> epochs;

    /** Trace length the plan was built against. */
    size_t recordCount = 0;

    /** Dependence knobs baked into the transcode (part of the key). */
    bool includeControlDeps = true;
    bool includeRegisterDeps = true;

    /** Cached approxBytes() value. */
    uint64_t bytes = 0;

    /**
     * Memoized slice results, one slot per criteria mode. Once a plan
     * is compatible, the only semantic inputs left are the mode and the
     * criteria content — job counts are execution knobs with
     * bit-identical results — so a repeat query would recompute the
     * identical verdict vector. Bounded by construction (one entry per
     * mode); the capacity is charged into approxBytes() up front.
     */
    struct Memo
    {
        uint64_t criteriaFingerprint = 0;
        std::shared_ptr<const SliceResult> result;
    };
    mutable std::mutex memoMutex;
    mutable std::array<Memo, 2> memo;
};

EpochPlan::EpochPlan() : data(std::make_unique<Data>()) {}
EpochPlan::~EpochPlan() = default;

size_t
EpochPlan::recordCount() const
{
    return data->recordCount;
}

size_t
EpochPlan::windowEnd() const
{
    return data->bounds.empty() ? 0 : data->bounds.back();
}

size_t
EpochPlan::epochCount() const
{
    return data->epochs.size();
}

uint64_t
EpochPlan::approxBytes() const
{
    return data->bytes;
}

bool
EpochPlan::compatibleWith(const SlicerOptions &options,
                          size_t record_count) const
{
    if (options.legacyLiveSets)
        return false; // the legacy oracle never runs on transcoded ops
    if (record_count != data->recordCount)
        return false;
    if (std::min(options.endIndex, record_count) != windowEnd())
        return false;
    return options.includeControlDeps == data->includeControlDeps &&
           options.includeRegisterDeps == data->includeRegisterDeps;
}

std::shared_ptr<const EpochPlan>
buildEpochPlan(std::span<const Record> records, const graph::CfgSet &cfgs,
               const graph::ControlDepMap &deps,
               const SlicerOptions &options)
{
    panic_if(cfgs.funcOf.size() != records.size(),
             "forward-pass attribution does not match the trace length");
    if (options.legacyLiveSets ||
        records.size() > std::numeric_limits<uint32_t>::max())
        return nullptr;
    const size_t end = std::min(options.endIndex, records.size());
    if (end == 0)
        return nullptr;

    deps.ensureSealed();
    FlatSet64 universe;
    if (options.includeControlDeps) {
        const auto pcs = deps.branchUniverse();
        universe.reserve(pcs.size());
        for (const Pc pc : pcs)
            universe.insert(pc);
    }
    const FlatSet64 *universe_ptr =
        options.includeControlDeps ? &universe : nullptr;

    const auto bounds = finalizeBounds(
        interiorProposals(end, planEpochTarget(end)), end, [&](size_t b) {
            return trace::CriteriaSet::splitBoundary(records, b);
        });
    const size_t epoch_count = bounds.size() - 1;

    auto plan = std::make_shared<EpochPlan>();
    EpochPlan::Data &d = *plan->data;
    d.bounds = bounds;
    d.recordCount = records.size();
    d.includeControlDeps = options.includeControlDeps;
    d.includeRegisterDeps = options.includeRegisterDeps;
    d.epochs.resize(epoch_count);

    std::atomic<bool> failed{false};
    ThreadPool pool(ThreadPool::resolveJobs(0) - 1);
    TaskGroup group;
    for (size_t k = 0; k < epoch_count; ++k) {
        pool.post(group, [&, k] {
            EpochTranscoder tc(cfgs, deps, options, universe_ptr,
                               bounds[k], bounds[k + 1]);
            for (size_t idx = bounds[k + 1]; idx-- > bounds[k];) {
                if (idx >= bounds[k] + 16)
                    __builtin_prefetch(&records[idx - 16]);
                tc.consume(idx, records[idx]);
            }
            d.epochs[k] = tc.take();
            if (!d.epochs[k].ok)
                failed.store(true);
        });
    }
    pool.drain(group);
    if (failed.load())
        return nullptr; // > 256 tids in an epoch; no plan for this trace

    uint64_t bytes = sizeof(EpochPlan) + sizeof(EpochPlan::Data) +
                     d.bounds.capacity() * sizeof(size_t);
    for (const EpochData &ep : d.epochs)
        bytes += epochApproxBytes(ep);
    // Result-memo capacity: one verdict vector per criteria mode.
    bytes += 2 * d.recordCount;
    d.bytes = bytes;

    auto &registry = MetricRegistry::global();
    registry.counter("slicer.plan_builds").add(1);
    registry.counter("slicer.epochs_planned").add(epoch_count);
    return plan;
}

SliceResult
computeSliceWithPlan(const EpochPlan &plan,
                     const trace::CriteriaSet &criteria,
                     const SlicerOptions &options)
{
    const EpochPlan::Data &d = *plan.data;
    panic_if(!plan.compatibleWith(options, d.recordCount),
             "epoch plan is not compatible with the requested options");
    const size_t epoch_count = d.epochs.size();
    const size_t record_count = d.recordCount;

    // Same mode + same criteria content over a compatible plan is the
    // same slice; answer repeats from the per-plan memo instead of
    // re-walking the window.
    const size_t mode_slot =
        options.mode == CriteriaMode::Syscalls ? 1 : 0;
    const uint64_t criteria_fp = criteria.fingerprint();
    {
        std::lock_guard<std::mutex> lock(d.memoMutex);
        const auto &slot = d.memo[mode_slot];
        if (slot.result && slot.criteriaFingerprint == criteria_fp) {
            MetricRegistry::global().counter("slicer.memo_hits").add(1);
            SliceResult copy = *slot.result;
            publishSliceMetrics(copy);
            return copy;
        }
    }

    SliceResult result;
    result.inSlice.assign(record_count, 0);
    result.analyzedWindowEnd = d.bounds.back();
    result.recordsFed = d.bounds.back();

    uint64_t skipped = 0;
    const unsigned jobs = ThreadPool::resolveJobs(options.backwardJobs);

    if (jobs <= 1) {
        // Sequential replay: one walk per epoch, the resolve itself
        // carries the state forward, so nothing is walked twice.
        WalkState state;
        for (size_t k = epoch_count; k-- > 0;) {
            const EpochData &ep = d.epochs[k];
            if (summaryAllowsSkip(ep, state, options)) {
                ++skipped;
                continue;
            }
            walkEpoch<true>(ep, state, options, criteria, record_count,
                            &result, result.inSlice.data());
        }
    } else {
        // The stitch/resolve halves of runEpochParallel, minus the
        // transcode: the plan is the transcode.
        ThreadPool pool(jobs - 1);
        TaskGroup group;
        std::vector<SliceResult> partial(epoch_count);
        WalkState state;
        for (size_t k = epoch_count; k-- > 0;) {
            if (summaryAllowsSkip(d.epochs[k], state, options)) {
                ++skipped;
                continue;
            }
            if (k > 0) {
                auto seed = std::make_shared<WalkState>(state);
                pool.post(group, [&, k, seed] {
                    walkEpoch<true>(d.epochs[k], *seed, options, criteria,
                                    record_count, &partial[k],
                                    result.inSlice.data());
                });
                walkEpoch<false>(d.epochs[k], state, options, criteria,
                                 record_count, nullptr, nullptr);
            } else {
                auto seed = std::make_shared<WalkState>(std::move(state));
                pool.post(group, [&, seed] {
                    walkEpoch<true>(d.epochs[0], *seed, options, criteria,
                                    record_count, &partial[0],
                                    result.inSlice.data());
                });
            }
        }
        pool.drain(group);
        for (size_t k = 0; k < epoch_count; ++k) {
            result.sliceInstructions += partial[k].sliceInstructions;
            result.criteriaBytesSeeded += partial[k].criteriaBytesSeeded;
            result.flatProbes += partial[k].flatProbes;
            result.flatResizes += partial[k].flatResizes;
            result.peakLiveMemBytes = std::max(
                result.peakLiveMemBytes, partial[k].peakLiveMemBytes);
            result.peakLiveMemChunks = std::max(
                result.peakLiveMemChunks, partial[k].peakLiveMemChunks);
            result.peakPendingBranches =
                std::max(result.peakPendingBranches,
                         partial[k].peakPendingBranches);
        }
    }

    // Skipped epochs still count their analyzed instructions: the tally
    // comes from the transcode, not the walk, and must match the oracle.
    for (const EpochData &ep : d.epochs)
        result.instructionsAnalyzed += ep.nonPseudoRecords;

    MetricRegistry::global().counter("slicer.epochs_skipped").add(skipped);
    publishSliceMetrics(result);
    {
        std::lock_guard<std::mutex> lock(d.memoMutex);
        auto &slot = d.memo[mode_slot];
        slot.criteriaFingerprint = criteria_fp;
        slot.result = std::make_shared<SliceResult>(result);
    }
    return result;
}

bool
epochParallelEligible(const SlicerOptions &options, size_t record_count)
{
    if (options.legacyLiveSets || record_count == 0)
        return false;
    if (record_count > std::numeric_limits<uint32_t>::max())
        return false; // op encoding carries 32-bit record indices
    if (options.backwardJobs == 1)
        return false;
    return ThreadPool::resolveJobs(options.backwardJobs) > 1;
}

SliceResult
computeSliceEpochParallel(std::span<const Record> records,
                          const graph::CfgSet &cfgs,
                          const graph::ControlDepMap &deps,
                          const trace::CriteriaSet &criteria,
                          const SlicerOptions &options)
{
    panic_if(cfgs.funcOf.size() != records.size(),
             "forward-pass attribution does not match the trace length");
    const auto sequential = [&]() -> SliceResult {
        BackwardPass pass(cfgs, deps, criteria, options, records.size());
        pass.run(records);
        return pass.finish();
    };

    const size_t end = std::min(options.endIndex, records.size());
    if (end == 0)
        return sequential();

    const unsigned jobs = ThreadPool::resolveJobs(options.backwardJobs);
    const size_t epochs = epochTarget(end, jobs);
    const auto bounds = finalizeBounds(
        interiorProposals(end, epochs), end, [&](size_t b) {
            return trace::CriteriaSet::splitBoundary(records, b);
        });

    return runEpochParallel(
        cfgs, deps, criteria, options, records.size(), bounds,
        [&](size_t first, size_t last, EpochTranscoder &tc) {
            for (size_t idx = last; idx-- > first;) {
                if (idx >= first + 16)
                    __builtin_prefetch(&records[idx - 16]);
                tc.consume(idx, records[idx]);
            }
        },
        sequential);
}

SliceResult
computeSliceEpochParallelFromFile(const std::string &path,
                                  const graph::CfgSet &cfgs,
                                  const graph::ControlDepMap &deps,
                                  const trace::CriteriaSet &criteria,
                                  const SlicerOptions &options)
{
    const size_t record_count = cfgs.funcOf.size();
    const auto sequential = [&]() -> SliceResult {
        trace::ReverseTraceReader reader(path);
        BackwardPass pass(cfgs, deps, criteria, options,
                          static_cast<size_t>(reader.count()));
        Record rec;
        size_t idx = static_cast<size_t>(reader.count());
        while (reader.next(rec))
            pass.feed(--idx, rec);
        return pass.finish();
    };

    const size_t end = std::min(options.endIndex, record_count);
    if (end == 0)
        return sequential();

    const unsigned jobs = ThreadPool::resolveJobs(options.backwardJobs);
    const size_t epochs = epochTarget(end, jobs);
    const trace::TraceBlockIndex index = trace::loadTraceBlockIndex(path);

    std::vector<size_t> interior;
    if (EpochPlanner::boundariesOverrideForTesting) {
        interior = interiorProposals(end, epochs);
    } else if (index.present()) {
        interior = proposeEqualWork(index, end, epochs);
    } else {
        interior = proposeEqualRecords(end, epochs);
    }

    // A boundary shift only needs the few records below the proposal;
    // load a small window instead of the trace.
    const auto bounds =
        finalizeBounds(interior, end, [&](size_t b) -> size_t {
            if (b == 0 || b >= record_count)
                return b;
            const size_t lo = b > 4096 ? b - 4096 : 0;
            const auto window =
                trace::loadTraceRange(path, lo, b - lo + 1);
            return lo + trace::CriteriaSet::splitBoundary(window, b - lo);
        });

    return runEpochParallel(
        cfgs, deps, criteria, options, record_count, bounds,
        [&](size_t first, size_t last, EpochTranscoder &tc) {
            trace::ReverseTraceReader reader(path, first, last);
            Record rec;
            size_t idx = last;
            while (reader.next(rec))
                tc.consume(--idx, rec);
        },
        sequential);
}

} // namespace slicer
} // namespace webslice
