/**
 * @file
 * Quickstart: the profiler on twenty lines of traced program.
 *
 * Builds a tiny program on the simulated machine — two computation
 * chains, one feeding a "pixel buffer" criteria marker and one feeding a
 * scratch buffer nobody looks at — then runs the forward pass (CFG +
 * control dependences) and the backward pass, and prints which
 * instructions were necessary.
 *
 *   $ ./examples/quickstart
 */

#include <cstdio>

#include "graph/cfg.hh"
#include "graph/control_deps.hh"
#include "sim/machine.hh"
#include "slicer/slicer.hh"

using namespace webslice;

int
main()
{
    // 1. A machine with one thread.
    sim::Machine machine;
    const auto tid = machine.addThread("main");
    const auto render = machine.registerFunction("demo::render");
    const auto telemetry = machine.registerFunction("demo::telemetry");

    const uint64_t pixels = machine.alloc(64, "pixels");
    const uint64_t scratch = machine.alloc(64, "scratch");

    // 2. A traced program: every operation below becomes one trace
    //    record with real register/memory dependences.
    machine.post(tid, [&](sim::Ctx &ctx) {
        {
            sim::TracedScope scope(ctx, render);
            sim::Value base = ctx.imm(0x00FF00);
            sim::Value shade = ctx.imm(0x101010);
            sim::Value color = ctx.add(base, shade); // useful chain
            ctx.store(pixels, 4, color);
        }
        {
            sim::TracedScope scope(ctx, telemetry);
            sim::Value stamp = ctx.imm(12345);
            sim::Value mixed = ctx.muli(stamp, 31); // wasted chain
            ctx.store(scratch, 4, mixed);
        }
        // 3. The slicing criterion: the paper's marker over the final
        //    pixel values (its "xchg %r13w,%r13w" + criteria file).
        const trace::MemRange ranges[] = {{pixels, 64}};
        ctx.marker(ranges);
    });
    machine.run();

    // 4. Forward pass: CFGs and control dependences from the trace.
    const auto cfgs = graph::buildCfgs(machine.records(),
                                       machine.symtab());
    const auto deps = graph::buildControlDeps(cfgs);

    // 5. Backward pass: liveness-driven slicing from the criteria.
    const auto slice = slicer::computeSlice(
        machine.records(), cfgs, deps, machine.pixelCriteria());

    std::printf("trace: %zu records, slice: %llu of %llu instructions "
                "(%.0f%%)\n\n",
                machine.records().size(),
                static_cast<unsigned long long>(slice.sliceInstructions),
                static_cast<unsigned long long>(
                    slice.instructionsAnalyzed),
                slice.slicePercent());

    static const char *const kKindNames[] = {
        "alu", "imm", "load", "store", "branch", "jump",
        "call", "ret", "syscall", "sys-read", "sys-write", "marker"};
    for (size_t i = 0; i < machine.records().size(); ++i) {
        const auto &rec = machine.records()[i];
        std::printf("  [%2zu] %-9s in %-16s %s\n", i,
                    kKindNames[static_cast<int>(rec.kind)],
                    cfgs.functionName(cfgs.funcOf[i],
                                      machine.symtab()).c_str(),
                    slice.inSlice[i] ? "<- necessary"
                                     : "   (unnecessary)");
    }

    std::printf("\nEverything demo::render did reaches the pixels; "
                "demo::telemetry is waste.\n");
    return 0;
}
