/**
 * @file
 * Domain example: slicing a non-browser workload with both criteria
 * modes, plus trace files on disk.
 *
 * The profiler is browser-independent (the paper stresses this): here it
 * analyzes a little "message broker" that receives packets, routes some
 * of them out over the network, keeps statistics nobody reads, and
 * journals everything to a log. Pixel-style criteria don't apply, so the
 * example uses the system-call criteria ("what affects the values handed
 * to the kernel") — and shows the trace/symtab/criteria sidecar files
 * round-tripping through disk, the way the paper's Pin tool hands traces
 * to the offline profiler.
 *
 *   $ ./examples/custom_criteria
 */

#include <cstdio>
#include <map>

#include "graph/cfg.hh"
#include "graph/control_deps.hh"
#include "sim/machine.hh"
#include "sim/syscalls.hh"
#include "slicer/slicer.hh"
#include "support/strings.hh"
#include "trace/trace_file.hh"

using namespace webslice;

int
main()
{
    sim::Machine machine;
    const auto tid = machine.addThread("broker");
    const auto receive = machine.registerFunction("broker::receive");
    const auto route = machine.registerFunction("broker::route");
    const auto audit = machine.registerFunction("broker::audit");

    const uint64_t inbox = machine.alloc(64, "inbox");
    const uint64_t outbox = machine.alloc(64, "outbox");
    const uint64_t stats = machine.alloc(64, "stats");
    const uint64_t journal = machine.alloc(256, "journal");

    machine.post(tid, [&](sim::Ctx &ctx) {
        for (int packet = 0; packet < 6; ++packet) {
            // A packet arrives: the kernel fills the inbox.
            machine.mem().write(inbox, 8, 0xC0FFEE00u + packet);
            {
                sim::TracedScope scope(ctx, receive);
                sim::Value r = sim::sysRecvfrom(ctx, inbox, 16);
                (void)r;
            }
            {
                sim::TracedScope scope(ctx, route);
                sim::Value header = ctx.load(inbox, 8);
                sim::Value key = ctx.andi(header, 1);
                // Odd packets are forwarded; even ones are dropped.
                if (ctx.branchIf(key)) {
                    sim::Value rewritten =
                        ctx.bxor(header, ctx.imm(0xA5A5));
                    ctx.store(outbox, 8, rewritten);
                    sim::Value s = sim::sysSendto(ctx, outbox, 16);
                    (void)s;
                }
            }
            {
                // Statistics and journaling: all of it is waste under
                // syscall criteria — nothing here reaches the kernel.
                sim::TracedScope scope(ctx, audit);
                sim::Value count = ctx.load(stats, 8);
                sim::Value bumped = ctx.addi(count, 1);
                ctx.store(stats, 8, bumped);
                sim::Value entry = ctx.load(inbox, 8);
                sim::Value digest = ctx.muli(entry, 0x9E3779B1ull);
                ctx.store(journal + (packet % 16) * 8, 8, digest);
            }
        }
    });
    machine.run();

    // ---- persist the trace the way the Pin tool would ------------------------
    const std::string dir = "/tmp/webslice-broker";
    std::remove((dir + ".trc").c_str());
    trace::saveTrace(dir + ".trc", machine.records());
    machine.symtab().save(dir + ".sym");
    machine.pixelCriteria().save(dir + ".crit");

    // ---- reload and profile offline ------------------------------------------
    const auto records = trace::loadTrace(dir + ".trc");
    trace::SymbolTable symtab;
    symtab.load(dir + ".sym");

    const auto cfgs = graph::buildCfgs(records, symtab);
    const auto deps = graph::buildControlDeps(cfgs);

    slicer::SlicerOptions options;
    options.mode = slicer::CriteriaMode::Syscalls;
    const trace::CriteriaSet no_markers;
    const auto slice =
        slicer::computeSlice(records, cfgs, deps, no_markers, options);

    std::printf("broker trace: %zu records (round-tripped via %s.trc)\n",
                records.size(), dir.c_str());
    std::printf("syscall-criteria slice: %llu of %llu instructions "
                "(%.0f%%)\n\n",
                static_cast<unsigned long long>(slice.sliceInstructions),
                static_cast<unsigned long long>(
                    slice.instructionsAnalyzed),
                slice.slicePercent());

    // Per-function attribution.
    struct Tally { uint64_t total = 0, live = 0; };
    std::map<std::string, Tally> tallies;
    for (size_t i = 0; i < records.size(); ++i) {
        if (records[i].isPseudo())
            continue;
        auto &tally = tallies[cfgs.functionName(cfgs.funcOf[i], symtab)];
        ++tally.total;
        tally.live += slice.inSlice[i] ? 1 : 0;
    }
    for (const auto &kv : tallies) {
        std::printf("  %-24s %4llu instr  %5.1f%% necessary\n",
                    kv.first.c_str(),
                    static_cast<unsigned long long>(kv.second.total),
                    100.0 * static_cast<double>(kv.second.live) /
                        static_cast<double>(kv.second.total));
    }
    std::printf("\nbroker::route joins the slice only for forwarded "
                "packets; broker::audit is\npure waste — statistics and "
                "journals nobody consumes, the server-side analog of\n"
                "the browser waste the paper characterizes.\n");
    return 0;
}
