/**
 * @file
 * Domain example: profile a full website session end to end.
 *
 * Builds a custom site (not one of the paper's benchmarks), loads it in
 * the browser substrate, lets a short browse session run, then slices the
 * trace with the pixel criteria and prints the per-thread statistics,
 * per-namespace categorization of the waste, and JS/CSS coverage — the
 * complete analysis the paper performs, on content you control.
 *
 *   $ ./examples/profile_website
 */

#include <cstdio>

#include "analysis/categorize.hh"
#include "analysis/thread_stats.hh"
#include "browser/tab.hh"
#include "graph/cfg.hh"
#include "graph/control_deps.hh"
#include "sim/machine.hh"
#include "slicer/slicer.hh"
#include "support/strings.hh"

using namespace webslice;

int
main()
{
    // ---- a small hand-written site -----------------------------------------
    browser::SiteContent site;
    site.url = "https://shop.example/";
    const std::string hero = std::to_string(browser::hashString("hero"));
    const std::string buy = std::to_string(browser::hashString("buy"));
    site.html =
        "<link href=shop.css><script src=shop.js>"
        "<header id=hdr class=top>storefront</header>"
        "<div id=hero class=banner>todays featured deal</div>"
        "<div id=menu class=flyout hidden>account orders settings</div>"
        "<section class=grid id=products>"
        "<div class=item id=p1><p>walnut desk organizer</p>"
        "<button id=buy class=cta>buy now</button></div>"
        "<div class=item id=p2><p>linen throw pillow</p></div>"
        "</section>"
        "<footer class=legal>terms privacy imprint careers</footer>";
    site.resources["shop.css"] = {
        browser::ResourceType::Css,
        "body{bg:13290186}\n"
        ".top{position:1;z:4;height:48;bg:3372503}\n"
        ".banner{height:140;bg:16766720}\n"
        ".flyout{position:2;z:8;width:240;height:320;bg:16777215}\n"
        ".grid{padding:8}\n"
        ".item{height:180;bg:15790320;margin:8}\n"
        ".cta{width:96;height:32;bg:14423100}\n"
        ".legal{height:90;bg:11184810}\n"
        /* unused rules: a theme that never matches */
        ".dark-item{bg:2236962;color:14540253}\n"
        ".dark-banner{bg:1118481}\n"
        "#checkout-modal{width:480;height:360}\n"};
    site.resources["shop.js"] = {
        browser::ResourceType::Js,
        // Used at load: style the banner from computed data.
        "function themeBanner(a){var t = a * 7 + 11;"
        " dom.set(" + hero + ", 2, t * 997); return t;}"
        // Used only when the user clicks.
        "function onBuy(){g_sales = g_sales + 1;"
        " dom.set(" + hero + ", 1, g_sales * 5003);}"
        // Dead weight: an A/B-test arm that never activates.
        "function variantB(a){var x = a; var i = 0;"
        " while(i < 40){i = i + 1; x = x + i * 3;} return x;}"
        "function variantC(a){return variantB(a) ^ 255;}"
        "g_sales = 0;"
        "themeBanner(4);"
        "dom.listen(" + buy + ", 0, onBuy);"};

    // ---- run a short session ------------------------------------------------
    sim::Machine machine;
    browser::BrowserConfig config;
    config.viewportWidth = 1024;
    config.viewportHeight = 600;
    browser::Tab tab(machine, config);
    tab.setSessionMs(2000);
    tab.navigate(site);
    tab.scheduleClick(900, "buy"); // the user buys the organizer
    machine.run();

    std::printf("loaded in %llu virtual ms; %s instructions traced\n\n",
                static_cast<unsigned long long>(tab.loadCompleteMs()),
                withCommas(machine.instructionCount()).c_str());

    // ---- the profiler ---------------------------------------------------------
    const auto cfgs = graph::buildCfgs(machine.records(),
                                       machine.symtab());
    const auto deps = graph::buildControlDeps(cfgs);
    const auto slice = slicer::computeSlice(
        machine.records(), cfgs, deps, machine.pixelCriteria());

    const auto stats = analysis::computeThreadStats(
        machine.records(), slice.inSlice, tab.threads().names);
    std::printf("pixel slice: %.1f%% of all instructions\n",
                stats.all.slicePercent());
    for (const auto &thread : stats.perThread) {
        if (thread.totalInstructions == 0)
            continue;
        std::printf("  %-24s %10s instr  %5.1f%% in slice\n",
                    thread.name.c_str(),
                    withCommas(thread.totalInstructions).c_str(),
                    thread.slicePercent());
    }

    const auto dist = analysis::categorizeUnnecessary(
        machine.records(), slice.inSlice, cfgs, machine.symtab(),
        analysis::Categorizer::chromiumDefault());
    std::printf("\nwhere the unnecessary %.0f%% lives "
                "(%.0f%% categorizable):\n",
                100.0 - stats.all.slicePercent(),
                dist.coveragePercent());
    for (const auto &category :
         analysis::Categorizer::reportOrder()) {
        const double share = dist.sharePercent(category);
        if (share > 0.05)
            std::printf("  %-16s %5.1f%%\n", category.c_str(), share);
    }

    std::printf("\ncoverage: JS %s/%s bytes used, CSS %s/%s bytes "
                "used\n",
                withCommas(tab.js().usedBytes()).c_str(),
                withCommas(tab.js().totalBytes()).c_str(),
                withCommas(tab.cssUsedBytes()).c_str(),
                withCommas(tab.cssTotalBytes()).c_str());
    std::printf("(variantB/variantC and the dark theme never ran — "
                "their processing is the waste\n the paper measures.)\n");
    return 0;
}
